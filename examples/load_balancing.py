#!/usr/bin/env python
"""Load balancing through a counting network (paper Section 1.1).

A cluster of 4 servers receives jobs from many *uncoordinated* clients.
Each client simply pushes its jobs into the nearest input wire of the
counting network; the step property guarantees the per-server job
counts never differ by more than one — even when one client submits
almost everything, where a random or hash-based balancer would be as
skewed as its clients.

Run:  python examples/load_balancing.py
"""

import random

from repro import AdaptiveCountingSystem
from repro.apps.load_balancer import LoadBalancer

NUM_SERVERS = 4


def run_scenario(title, submit):
    system = AdaptiveCountingSystem(width=16, seed=11, initial_nodes=12)
    system.converge()
    balancer = LoadBalancer(system, num_servers=NUM_SERVERS)
    submit(balancer)
    loads = balancer.settle()
    print("%-38s loads=%s imbalance=%d" % (title, loads, balancer.imbalance()))
    assert balancer.imbalance() <= 1
    return loads


def main():
    rng = random.Random(3)

    def uniform_clients(balancer):
        for i in range(101):
            balancer.submit("job-%d" % i, wire=rng.randrange(16))

    def one_hot_client(balancer):
        # A single client hammers one wire with every job.
        for i in range(101):
            balancer.submit("job-%d" % i, wire=0)

    def bursty_clients(balancer):
        # Two clients, bursts of very different sizes.
        for i in range(90):
            balancer.submit("big-%d" % i, wire=3)
        for i in range(11):
            balancer.submit("small-%d" % i, wire=12)

    print("101 jobs over %d servers, three client behaviours:" % NUM_SERVERS)
    run_scenario("uniform clients", uniform_clients)
    run_scenario("one client, one wire", one_hot_client)
    run_scenario("two bursty clients", bursty_clients)

    # Contrast: a hash-based balancer under the same one-hot client.
    hashed = [0] * NUM_SERVERS
    for i in range(101):
        hashed[hash(("job", i)) % NUM_SERVERS] += 1
    print(
        "hash-based balancer (same jobs):       loads=%s imbalance=%d"
        % (hashed, max(hashed) - min(hashed))
    )
    print("the counting network is balanced by construction, not by luck.")


if __name__ == "__main__":
    main()
