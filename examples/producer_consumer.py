#!/usr/bin/env python
"""Producer-consumer matching with two back-to-back counting networks.

Section 1.1 of the paper (after AHS94): producers announce units of a
resource with *supply tokens*, consumers ask with *request tokens*; the
pair of counting networks assigns both sides consecutive ranks, and
equal ranks rendezvous — every request is matched with exactly one
supply, no matter how the two sides interleave.

Here: a compute grid. Workers (producers) publish free CPU slots; jobs
(consumers) request one slot each.

Run:  python examples/producer_consumer.py
"""

import random

from repro import AdaptiveCountingSystem
from repro.apps.producer_consumer import ProducerConsumerMatcher


def main():
    rng = random.Random(5)
    supply_net = AdaptiveCountingSystem(width=16, seed=21, initial_nodes=8)
    supply_net.converge()
    request_net = AdaptiveCountingSystem(width=16, seed=22, initial_nodes=8)
    request_net.converge()
    grid = ProducerConsumerMatcher(supply_net, request_net)

    # Morning: 12 workers come online with 3 slots each; 30 jobs arrive,
    # interleaved arbitrarily with the slot announcements.
    operations = []
    for worker in range(12):
        for slot in range(3):
            operations.append(("offer", "worker%d/slot%d" % (worker, slot)))
    for job in range(30):
        operations.append(("request", "job%d" % job))
    rng.shuffle(operations)
    for kind, name in operations:
        if kind == "offer":
            grid.offer(name)
        else:
            grid.request(name)

    matches, spare_slots, waiting_jobs = grid.settle()
    print("36 slots offered, 30 jobs submitted (arbitrary interleaving)")
    print(
        "matched=%d, spare slots=%d, waiting jobs=%d"
        % (matches, spare_slots, waiting_jobs)
    )
    assert (matches, spare_slots, waiting_jobs) == (30, 6, 0)
    print("first five assignments:")
    for match in sorted(grid.matches, key=lambda m: m.rank)[:5]:
        print("  rank %2d: %s -> %s" % (match.rank, match.consumer, match.producer))

    # Afternoon: a burst of 10 more jobs exceeds the spare capacity;
    # the excess queues until workers free up.
    for job in range(30, 40):
        grid.request("job%d" % job)
    matches, spare_slots, waiting_jobs = grid.settle()
    print("\nafter 10 more jobs: matched=%d, spare=%d, waiting=%d"
          % (matches, spare_slots, waiting_jobs))
    assert waiting_jobs == 4

    for slot in range(4):
        grid.offer("late-worker/slot%d" % slot)
    matches, spare_slots, waiting_jobs = grid.settle()
    print("after 4 late slots:  matched=%d, spare=%d, waiting=%d"
          % (matches, spare_slots, waiting_jobs))
    assert (matches, spare_slots, waiting_jobs) == (40, 0, 0)
    print("every job got exactly one slot, in request order.")


if __name__ == "__main__":
    main()
