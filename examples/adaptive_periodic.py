#!/usr/bin/env python
"""The paper's generalisation claim, live (repro.ext).

"Though we discuss the bitonic network, our technique could be applied
to build an adaptive implementation of any distributed data structure
which can be decomposed in a recursive way."

This example instantiates the generic recursive-decomposition framework
for the *periodic* counting network — a structure with non-halving child
widths (a block's reflection layer spans all k wires) and leaves at
non-uniform depths — and shows the same machinery working end to end:
cuts, counter components, splits/merges with exact state transfer, and
the effective width/depth metrics.

Run:  python examples/adaptive_periodic.py
"""

import random

from repro.analysis.render import render_tree
from repro.core import metrics
from repro.core.cut import Cut, CutNetwork
from repro.core.verification import counting_values_ok
from repro.ext.periodic_adaptive import (
    PeriodicWiring,
    block_level_cut_paths,
    periodic_tree,
)


def main():
    width = 16
    tree = periodic_tree(width)
    wiring = PeriodicWiring(tree)
    print("PERIODIC[%d] decomposition (blocks -> reflection + halves):" % width)
    print(render_tree(tree, max_depth=2))
    print()

    # Three deployment granularities of the same network.
    for name, paths in (
        ("one component (centralised)", [()]),
        ("one component per block", block_level_cut_paths(tree)),
        ("fully split (classic periodic net)", sorted(Cut.leaves(tree).paths)),
    ):
        net = CutNetwork(Cut(tree, paths), wiring=wiring)
        measured = metrics.measure(net)
        print(
            "%-36s components=%-4d eff width=%-3d eff depth=%d"
            % (name, measured.num_components, measured.effective_width, measured.effective_depth)
        )
    print()

    # Correctness across an adaptive history, exactly as for the bitonic
    # network: split and merge while tokens stream.
    rng = random.Random(7)
    net = CutNetwork(Cut(tree, [()]), wiring=wiring)
    values = []
    for step in range(60):
        values.append(net.feed_token(rng.randrange(width))[1])
        if step % 10 == 5:
            splittable = [p for p, s in net.states.items() if not s.spec.is_leaf]
            if splittable:
                net.split_member(sorted(splittable)[rng.randrange(len(splittable))])
        if step % 10 == 9:
            paths = sorted(net.states)
            parent = paths[rng.randrange(len(paths))][:-1]
            try:
                net.merge_member(parent)
            except Exception:
                pass
        net.verify_step_property()
    assert counting_values_ok(values)
    print("60 tokens through %d reconfigurations: values gap-free, step property held"
          % 11)
    print("final deployment: %d components at paths %s"
          % (len(net.states), sorted(net.states)[:6]))
    print()
    print("the Theorem 2.1 analogue held at every quiescent point — the")
    print("framework generalises beyond the bitonic network, as the paper claims.")


if __name__ == "__main__":
    main()
