#!/usr/bin/env python
"""Quickstart: an adaptive counting network in ~40 lines.

Builds a system on a simulated peer-to-peer network, grows it, lets the
decentralised rules adapt the network, and uses it as a distributed
counter — the paper's primary application (Section 1.1).

Run:  python examples/quickstart.py
"""

from repro import AdaptiveCountingSystem
from repro.apps.counter import DistributedCounter


def main():
    # A width-64 network: width caps the maximum parallelism. Initially
    # one node hosts the whole network as a single component.
    system = AdaptiveCountingSystem(width=64, seed=7)
    print("start: %d node, %d component" % (system.num_nodes, len(system.directory)))

    counter = DistributedCounter(system)
    print("first values:", [counter.next() for _ in range(5)])

    # 29 more nodes join the overlay. Joins never change the counting
    # network directly (Section 3.4) ...
    for _ in range(29):
        system.add_node()
    print("after joins: %d nodes, %d components (unchanged)"
          % (system.num_nodes, len(system.directory)))

    # ... but each node's size estimate now says the network is too
    # coarse, so the splitting rule (Section 3.2) kicks in.
    system.converge()
    metrics = system.metrics()
    print(
        "after convergence: %d components, effective width %d, effective depth %d"
        % (metrics.num_components, metrics.effective_width, metrics.effective_depth)
    )
    print("splits performed:", system.stats.splits)

    # The counter keeps handing out gap-free values across the
    # reconfiguration — issue a concurrent batch and settle it.
    for _ in range(20):
        counter.request()
    values = counter.settle()  # all values so far, including the first 5
    print("batch of 20 concurrent requests:", values[5:])
    assert values == list(range(25))

    # Shrink back down: the merging rule coarsens the network again.
    while system.num_nodes > 3:
        system.remove_node()
    system.converge()
    print(
        "after shrinking to %d nodes: %d components, %d merges"
        % (system.num_nodes, len(system.directory), system.stats.merges)
    )
    print("counting still correct:", [counter.next() for _ in range(3)])
    system.verify()
    print("all invariants verified.")


if __name__ == "__main__":
    main()
