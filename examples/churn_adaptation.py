#!/usr/bin/env python
"""Watching the network adapt to churn (paper Sections 3.2-3.4).

Grows a system from 2 to 48 nodes and back down while a client stream
keeps counting, printing at each checkpoint the deployed cut, the
effective width/depth, the nodes' level estimates, and the cumulative
split/merge counts — the whole adaptive machinery in one trace.
Finishes with a node crash and self-stabilising recovery.

Run:  python examples/churn_adaptation.py
"""

from collections import Counter

from repro import AdaptiveCountingSystem


def checkpoint(system, phase):
    system.converge()
    for _ in range(8):
        system.inject_token()
    system.run_until_quiescent()
    metrics = system.metrics()
    level_histogram = dict(sorted(Counter(system.component_levels()).items()))
    print(
        "%-12s N=%3d  components=%3d  width=%2d  depth=%2d  "
        "levels=%s  splits=%d merges=%d"
        % (
            phase,
            system.num_nodes,
            metrics.num_components,
            metrics.effective_width,
            metrics.effective_depth,
            level_histogram,
            system.stats.splits,
            system.stats.merges,
        )
    )


def main():
    system = AdaptiveCountingSystem(width=256, seed=13, initial_nodes=2)
    print("phase          size  deployment        effective       component     actions")
    checkpoint(system, "start")

    for target in (6, 12, 24, 48):
        while system.num_nodes < target:
            system.add_node()
        checkpoint(system, "grow->%d" % target)

    for target in (24, 12, 6, 2):
        while system.num_nodes > target:
            system.remove_node()
        checkpoint(system, "shrink->%d" % target)

    system.verify()
    print("\nall %d tokens counted correctly across the whole trace"
          % system.token_stats.retired)

    # Crash a loaded node and recover.
    while system.num_nodes < 20:
        system.add_node()
    system.converge()
    victim = next(
        node_id
        for node_id, host in sorted(system.hosts.items())
        if host.component_count() > 0
    )
    report = system.crash_node(victim)
    system.run_until_quiescent()
    print(
        "\ncrash: node lost with %d components; recovery reconstructed %d "
        "from in-neighbour counters" % (len(report.lost_components), system.stats.recoveries)
    )
    values = [system.next_value() for _ in range(5)]
    print("post-recovery counting:", values)
    system.directory.check_consistent()
    print("directory consistent; network is back to a legal state.")


if __name__ == "__main__":
    main()
