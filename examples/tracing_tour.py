#!/usr/bin/env python
"""A tour of the observability layer (`repro.obs`).

Runs a seeded churn workload twice — once bare, once under a recorder
with tracing on — to show that instrumentation observes without
perturbing, then walks the collected metrics (counters, the owed
gauge, the latency histogram with its percentiles) and exports a
Chrome trace you can open in Perfetto (https://ui.perfetto.dev) or
chrome://tracing: token journeys appear as async spans correlated by
token id, stabilisation episodes as duration slices, tokens-in-flight
as a counter track.

Run:  python examples/tracing_tour.py
Then: open /tmp/repro-tour-trace.json in Perfetto ("Open trace file").
"""

from repro import AdaptiveCountingSystem
from repro.obs import Recorder, validate_chrome_trace, write_chrome_trace
from repro.obs.recorder import recording

TRACE_PATH = "/tmp/repro-tour-trace.json"


def run_workload(seed=7, tokens=150, churn_every=25):
    """A seeded stream with joins and crashes mid-flight: injections
    are paced over simulated time so membership events land while
    tokens are traversing the network."""
    system = AdaptiveCountingSystem(width=16, seed=seed, initial_nodes=8)
    system.converge()
    add_next = True
    for index in range(tokens):
        system.inject_token()
        system.sim.run_until(system.sim.now + 0.5)
        if index and index % churn_every == 0:
            if add_next:
                system.add_node()
            else:
                system.crash_node()
            add_next = not add_next
    system.run_until_quiescent()
    system.verify()
    return system


def main():
    # 1. Instrumentation never perturbs: same seed, with and without a
    #    recorder, is the identical simulation.
    bare = run_workload()
    recorder = Recorder(trace=True)
    with recording(recorder):
        recorder.begin_section("tour")
        traced = run_workload()
    assert traced.sim.events_run == bare.sim.events_run
    assert traced.output_counts == bare.output_counts
    print(
        "identical runs: %d simulator events, traced and bare"
        % traced.sim.events_run
    )

    # 2. Counters mirror the system's own accounting.
    metrics = recorder.metrics
    stats = traced.token_stats
    print(
        "\ntokens: injected=%d retired=%d hops=%d reroutes=%d"
        % (
            metrics.counter("tokens.injected").value,
            metrics.counter("tokens.retired").value,
            metrics.counter("tokens.hops").value,
            metrics.counter("tokens.reroutes").value,
        )
    )
    assert metrics.counter("tokens.retired").value == stats.retired
    print(
        "bus: %d token messages sent; owed ledger drained to %d"
        % (
            metrics.counter("bus.sent", ("token",)).value,
            metrics.gauge("tokens.owed").value,
        )
    )

    # 3. The latency histogram: log-scale buckets, nearest-rank
    #    percentiles clamped to the observed range (sim-time units).
    latency = recorder.latency_histogram()
    print(
        "\ninject-to-retire latency over %d tokens:\n"
        "  p50=%.3f  p90=%.3f  p99=%.3f  max=%.3f  mean=%.3f"
        % (latency.count, latency.p50, latency.p90, latency.p99,
           latency.max, latency.mean)
    )

    # 4. Export a validated Chrome trace. Same seed -> same bytes:
    #    everything inside is sim-time, sorted, and compact.
    payload = write_chrome_trace(recorder.trace, TRACE_PATH, metrics=metrics)
    assert validate_chrome_trace(payload) == []
    print(
        "\ntrace: %d events (%d dropped by the ring) -> %s"
        % (
            recorder.trace.recorded_events,
            recorder.trace.dropped_events,
            TRACE_PATH,
        )
    )
    spans = sum(1 for event in payload["traceEvents"] if event["ph"] == "b")
    slices = sum(
        1
        for event in payload["traceEvents"]
        if event["ph"] == "X" and event["name"] == "stabilize"
    )
    print(
        "open it in Perfetto: %d token journeys, %d stabilisation slices"
        % (spans, slices)
    )


if __name__ == "__main__":
    main()
