"""Exporters: metrics JSONL and Chrome ``trace_event`` JSON.

Both exporters are *byte-deterministic*: given the same recorder state
they produce the same bytes (sorted keys, fixed separators, no clocks,
no environment reads), which is what lets CI diff two same-seed runs'
exports and fail on any nondeterminism.

Metrics JSONL
-------------
One JSON object per line, one line per metric, sorted by name:

    {"kind": "histogram", "labels": [], "name": "tokens.latency",
     "count": 600, "mean": 3.1, "p50": 3.0, "p90": 4.0, "p99": 8.0, ...}

Chrome trace
------------
The JSON Object Format of the trace_event spec: a top-level object with
a ``traceEvents`` array (loadable in Perfetto and ``chrome://tracing``),
plus ``displayTimeUnit`` and a small ``otherData`` block recording the
ring-buffer accounting so a wrapped trace is visibly marked as such.

:func:`validate_chrome_trace` structurally checks a payload against the
spec's requirements for the phases this repo emits — the test suite and
the CLI run it on every export, so a malformed trace fails loudly
rather than silently failing to load in a viewer.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TraceBuffer

__all__ = [
    "metrics_jsonl",
    "write_metrics_jsonl",
    "chrome_trace_payload",
    "write_chrome_trace",
    "validate_chrome_trace",
]

#: Phases the validator accepts (the subset of the spec this repo and
#: its tools care about; a payload using others is still reported).
_KNOWN_PHASES = {"B", "E", "X", "I", "i", "C", "b", "n", "e", "s", "t", "f", "M"}

#: Metadata record names the spec defines for the ``M`` phase.
_METADATA_NAMES = {
    "process_name",
    "process_labels",
    "process_sort_index",
    "thread_name",
    "thread_sort_index",
}


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
def metrics_jsonl(registry: MetricsRegistry) -> str:
    """The registry as JSONL text (one sorted-key object per line)."""
    lines = [
        json.dumps(row, sort_keys=True, separators=(",", ":"))
        for row in registry.rows()
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def write_metrics_jsonl(registry: MetricsRegistry, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(metrics_jsonl(registry))


# ----------------------------------------------------------------------
# chrome trace
# ----------------------------------------------------------------------
def chrome_trace_payload(
    buffer: TraceBuffer, metrics: Optional[MetricsRegistry] = None
) -> Dict[str, object]:
    """The trace buffer as a Chrome trace_event JSON object."""
    other: Dict[str, object] = {
        "recorded_events": buffer.recorded_events,
        "dropped_events": buffer.dropped_events,
        "ring_capacity": buffer.capacity,
    }
    if metrics is not None:
        other["metrics"] = len(metrics)
    return {
        "traceEvents": [event.to_json() for event in buffer],
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(
    buffer: TraceBuffer,
    path: str,
    metrics: Optional[MetricsRegistry] = None,
) -> Dict[str, object]:
    """Write the trace to ``path``; returns the payload written.

    The payload is validated first — exporting a structurally invalid
    trace raises instead of producing a file no viewer will open.
    """
    payload = chrome_trace_payload(buffer, metrics)
    problems = validate_chrome_trace(payload)
    if problems:
        raise ValueError(
            "refusing to write invalid Chrome trace: %s" % "; ".join(problems[:5])
        )
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True, separators=(",", ":"))
        handle.write("\n")
    return payload


def validate_chrome_trace(payload: object) -> List[str]:
    """Structural problems of a trace payload (empty list = valid).

    Checks the JSON Object Format rules the viewers actually enforce:
    a ``traceEvents`` array of objects, each with a known phase, a
    numeric ``ts``, numeric ``pid``/``tid``; ``X`` events carry a
    numeric ``dur``; async events (``b``/``n``/``e``) carry an ``id``
    and a ``cat``; metadata events use the spec's metadata names.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["top level is not a JSON object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not an array"]
    for index, event in enumerate(events):
        where = "traceEvents[%d]" % index
        if not isinstance(event, dict):
            problems.append("%s is not an object" % where)
            continue
        phase = event.get("ph")
        if phase not in _KNOWN_PHASES:
            problems.append("%s has unknown phase %r" % (where, phase))
            continue
        if not isinstance(event.get("name"), str):
            problems.append("%s lacks a string name" % where)
        if not isinstance(event.get("ts"), (int, float)):
            problems.append("%s lacks a numeric ts" % where)
        for track_key in ("pid", "tid"):
            if not isinstance(event.get(track_key), int):
                problems.append("%s lacks an integer %s" % (where, track_key))
        if phase == "X" and not isinstance(event.get("dur"), (int, float)):
            problems.append("%s is a complete event without dur" % where)
        if phase in ("b", "n", "e"):
            if "id" not in event:
                problems.append("%s is an async event without id" % where)
            if not isinstance(event.get("cat"), str) or not event.get("cat"):
                problems.append("%s is an async event without cat" % where)
        if phase == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not args or not all(
                isinstance(value, (int, float)) for value in args.values()
            ):
                problems.append("%s is a counter event without numeric args" % where)
        if phase == "M":
            if event.get("name") not in _METADATA_NAMES:
                problems.append(
                    "%s is metadata with unknown name %r" % (where, event.get("name"))
                )
            if not isinstance(event.get("args"), dict):
                problems.append("%s is metadata without args" % where)
    return problems
