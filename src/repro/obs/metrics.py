"""Metric primitives and the registry (`repro.obs`).

Three instrument kinds, all deliberately minimal and allocation-light:

:class:`Counter`
    A monotonically increasing count (tokens retired, messages sent).
:class:`Gauge`
    A value that goes up and down (tokens currently owed/in flight).
:class:`Histogram`
    A fixed-bucket *log-scale* histogram for latency-shaped values:
    bucket upper bounds form a geometric ladder, so one configuration
    covers microsecond-to-kilosecond ranges with bounded relative
    error, and p50/p90/p99 queries are a single cumulative walk. The
    exact ``min``/``max`` are tracked alongside the buckets so tail
    percentiles never report a bound beyond an observed value.

Metrics are keyed by ``(name, labels)`` where ``labels`` is a plain
tuple of hashable values (``("token",)``, ``(kind, wire)``). The hot
path therefore builds at most one small tuple per record call — never
a formatted string; the RSC306 lint enforces that at hook sites.

Everything here is deterministic: no clocks, no randomness. Timestamps
are the caller's problem (they pass simulated time in), which is what
keeps exported snapshots byte-identical across same-seed runs.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_bounds",
]

LabelTuple = Tuple[object, ...]


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> Dict[str, object]:
        return {"value": self.value}


class Gauge:
    """A point-in-time value; supports absolute set and deltas."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def snapshot(self) -> Dict[str, object]:
        return {"value": self.value}


def default_bounds(
    start: float = 1e-3, factor: float = 2.0, count: int = 40
) -> Tuple[float, ...]:
    """The default geometric bucket ladder: ``start * factor**i``.

    With the defaults the ladder spans 1e-3 .. ~5.5e8 in 40 buckets —
    wide enough for any simulated-time latency this repo produces, at
    a worst-case relative error of ``factor - 1`` per bucket.
    """
    if start <= 0 or factor <= 1 or count < 1:
        raise ValueError("need start > 0, factor > 1, count >= 1")
    bounds = []
    bound = start
    for _ in range(count):
        bounds.append(bound)
        bound *= factor
    return tuple(bounds)


class Histogram:
    """Fixed-bucket log-scale histogram with percentile queries.

    ``bounds`` are the bucket *upper* bounds (inclusive), ascending;
    two implicit buckets catch values at or below zero and values above
    the last bound. Recording is O(log buckets) via bisect; percentile
    queries walk the cumulative counts once.
    """

    __slots__ = ("bounds", "buckets", "overflow", "count", "total", "min", "max")

    def __init__(self, bounds: Optional[Tuple[float, ...]] = None) -> None:
        self.bounds: Tuple[float, ...] = (
            tuple(bounds) if bounds is not None else default_bounds()
        )
        if list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError("histogram bounds must be strictly ascending")
        self.buckets: List[int] = [0] * len(self.bounds)
        self.overflow = 0
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        index = bisect_left(self.bounds, value)
        if index == len(self.bounds):
            self.overflow += 1
        else:
            self.buckets[index] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0 < q <= 100), nearest-rank over
        bucket upper bounds, clamped to the exact observed min/max so a
        sparse tail never reports a value outside the data."""
        if not 0 < q <= 100:
            raise ValueError("percentile must be in (0, 100], got %r" % q)
        if not self.count or self.min is None or self.max is None:
            return 0.0
        rank = q * self.count / 100.0
        cumulative = 0
        for index, bucket_count in enumerate(self.buckets):
            cumulative += bucket_count
            if cumulative >= rank:
                estimate = self.bounds[index]
                return min(max(estimate, self.min), self.max)
        return self.max  # rank falls in the overflow bucket

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p90(self) -> float:
        return self.percentile(90)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def snapshot(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
            "overflow": self.overflow,
        }


class MetricsRegistry:
    """All live metrics, keyed by ``(name, labels)``.

    ``counter``/``gauge``/``histogram`` are get-or-create and cheap
    enough to call per record (one dict lookup on a tuple key); hot
    hook sites additionally cache the returned instrument. A name must
    keep one kind: re-requesting ``name`` as a different instrument
    kind raises, which catches label/name typos early.
    """

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, str, LabelTuple], object] = {}

    def _get(
        self,
        kind: str,
        name: str,
        labels: LabelTuple,
        factory: Callable[[], object],
    ) -> object:
        key = (kind, name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            for other_kind, other_name, other_labels in self._metrics:
                if other_name == name and other_kind != kind:
                    raise ValueError(
                        "metric %r already registered as a %s" % (name, other_kind)
                    )
            metric = factory()
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, labels: LabelTuple = ()) -> Counter:
        return self._get("counter", name, labels, Counter)  # type: ignore[return-value]

    def gauge(self, name: str, labels: LabelTuple = ()) -> Gauge:
        return self._get("gauge", name, labels, Gauge)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        labels: LabelTuple = (),
        bounds: Optional[Tuple[float, ...]] = None,
    ) -> Histogram:
        return self._get(  # type: ignore[return-value]
            "histogram", name, labels, lambda: Histogram(bounds)
        )

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[Tuple[str, str, LabelTuple]]:
        return iter(self._metrics)

    def rows(self) -> List[Dict[str, object]]:
        """Deterministically ordered snapshot rows, one per metric.

        Rows sort by (name, kind, stringified labels) so the JSONL
        export is byte-stable across runs regardless of registration
        order.
        """
        rows = []
        for (kind, name, labels), metric in self._metrics.items():
            row: Dict[str, object] = {
                "kind": kind,
                "name": name,
                "labels": list(labels),
            }
            row.update(metric.snapshot())  # type: ignore[attr-defined]
            rows.append(row)
        rows.sort(key=lambda row: (row["name"], row["kind"], repr(row["labels"])))
        return rows
