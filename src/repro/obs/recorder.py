"""The recorder: every instrumentation hook in the system, one object.

Hook sites across the stack (`sim.events`, `sim.node`, `runtime.tokens`,
`runtime.system`, `chord.protocol`, `bench`) all call methods on the
*module-level* :data:`ACTIVE` recorder:

    from repro.obs import recorder as _obs
    ...
    obs = _obs.ACTIVE
    if obs.enabled:
        obs.token_hop(now, token, path, port, batch_size)

Two implementations share the interface:

:class:`NullRecorder`
    The default. ``enabled`` is False and every method is a no-op, so
    the cost of an uninstrumented run is one module-attribute load and
    one truthiness test per hook site — the *null-object fast path*.
    The bench CI gate holds this overhead under 3% on
    ``inject_to_retire``.

:class:`Recorder`
    The real thing: updates a :class:`~repro.obs.metrics.MetricsRegistry`
    and (optionally) a bounded :class:`~repro.obs.trace.TraceBuffer` of
    token-lifecycle spans. ``sample_every = N`` traces every N-th token
    (by ``token_id``, so sampling is deterministic and seed-independent)
    which keeps tracing affordable at ``large_churn`` scale; metrics
    always cover *all* tokens.

Install with :func:`install` / :func:`uninstall`, or the
:func:`recording` context manager which restores the previous recorder
on exit. All timestamps passed in are simulated time — the recorder
never reads a clock of its own.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Protocol, Tuple

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.trace import TraceBuffer, TraceEvent

__all__ = [
    "NullRecorder",
    "Recorder",
    "TokenLike",
    "ACTIVE",
    "NULL_RECORDER",
    "install",
    "uninstall",
    "recording",
]

Path = Tuple[int, ...]


class TokenLike(Protocol):
    """The token attributes the recorder reads.

    Structural on purpose: the hook signatures stay typed without this
    package importing the runtime layer (obs must sit below everything
    it instruments). Read-only properties, so any class carrying these
    attributes — ``repro.runtime.tokens.Token`` in practice — matches.
    """

    @property
    def token_id(self) -> int: ...

    @property
    def issued_at(self) -> float: ...

    @property
    def retired_at(self) -> Optional[float]: ...

    @property
    def latency(self) -> Optional[float]: ...

    @property
    def entry_wire(self) -> object: ...

    @property
    def exit_wire(self) -> object: ...

    @property
    def value(self) -> object: ...

    @property
    def hops(self) -> object: ...

    @property
    def reroutes(self) -> object: ...


class NullRecorder:
    """The no-op recorder: the interface, each method doing nothing.

    Also the base class of :class:`Recorder`, so the hook signatures
    are defined in exactly one place.
    """

    enabled = False

    # -- run structure --------------------------------------------------
    def begin_section(self, name: str) -> None:
        """Start a named section (one bench scenario, one workload)."""

    # -- simulator ------------------------------------------------------
    def event_executed(self, ts: float) -> None:
        """One simulator event ran (popped or inline)."""

    # -- message bus ----------------------------------------------------
    def bus_sent(self, ts: float, kind: str) -> None:
        """A message entered the network."""

    def bus_queued(self, ts: float, kind: str, wait: float) -> None:
        """A message reached its destination's service queue; ``wait``
        is queue + service time until delivery."""

    def bus_delivered(self, ts: float, kind: str) -> None:
        """A message was handed to its destination process."""

    def bus_dropped(self, ts: float, kind: str) -> None:
        """A message was dropped (destination gone or re-registered)."""

    # -- token lifecycle ------------------------------------------------
    def token_injected(self, token: TokenLike) -> None:
        """A client injected ``token`` (ts = ``token.issued_at``)."""

    def token_hop(
        self, ts: float, token: TokenLike, path: Path, port: int, batch_size: int
    ) -> None:
        """``token`` was dispatched toward input ``port`` of the
        component at ``path`` in a batch of ``batch_size``."""

    def token_rerouted(self, ts: float, token: TokenLike) -> None:
        """``token`` hit a missing/moved component and was re-resolved
        or queued for retry."""

    def token_retired(self, token: TokenLike) -> None:
        """``token`` left the network (ts = ``token.retired_at``)."""

    def token_dropped(self, ts: float, token: TokenLike) -> None:
        """``token`` exhausted its reroute budget and gave up."""

    def owed_delta(self, delta: int) -> None:
        """The emitted-but-not-arrived ledger changed by ``delta``."""

    # -- object pools ---------------------------------------------------
    def pool_stats(self, name: str, created: int, reused: int, free: int) -> None:
        """Snapshot of one freelist's lifetime traffic (envelopes,
        tokens, event handles). Published at section boundaries, not per
        event — pools are hot-path machinery and must not pay an obs
        call per acquire."""

    # -- control plane --------------------------------------------------
    def stabilization(self, ts_begin: float, ts_end: float, restored: int) -> None:
        """One crash-recovery episode restored ``restored`` components."""

    # -- chord RPCs -----------------------------------------------------
    def rpc_issued(self, ts: float, method: str) -> None:
        """An RPC left the caller."""

    def rpc_replied(self, ts: float, method: str, rtt: float) -> None:
        """An RPC reply arrived ``rtt`` simulated units after issue."""

    def rpc_timeout(self, ts: float, method: str) -> None:
        """An RPC timed out or bounced undeliverable."""


class Recorder(NullRecorder):
    """Metrics (always) and token-span tracing (optional, sampled)."""

    enabled = True

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        trace: bool = False,
        trace_capacity: int = 65536,
        sample_every: int = 1,
    ) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.trace: Optional[TraceBuffer] = (
            TraceBuffer(trace_capacity) if trace else None
        )
        self.sample_every = sample_every
        #: Current section (Chrome pid); 0 until begin_section is called.
        self._pid = 0
        self._inflight = 0
        # Pre-bound unlabeled hot instruments (one dict miss each, once).
        metrics_registry = self.metrics
        self._c_events = metrics_registry.counter("sim.events_executed")
        self._c_hops = metrics_registry.counter("tokens.hops")
        self._c_injected = metrics_registry.counter("tokens.injected")
        self._c_retired = metrics_registry.counter("tokens.retired")
        self._c_dropped = metrics_registry.counter("tokens.dropped")
        self._c_reroutes = metrics_registry.counter("tokens.reroutes")
        self._g_owed = metrics_registry.gauge("tokens.owed")
        self._h_latency = metrics_registry.histogram("tokens.latency")
        self._h_batch = metrics_registry.histogram("tokens.batch_size")

    # -- helpers --------------------------------------------------------
    def _sampled(self, token_id: int) -> bool:
        return token_id % self.sample_every == 0

    def latency_histogram(self) -> Histogram:
        """The inject-to-retire latency histogram (all tokens)."""
        return self._h_latency

    # -- run structure --------------------------------------------------
    def begin_section(self, name: str) -> None:
        self._pid += 1
        trace = self.trace
        if trace is not None:
            trace.add(
                TraceEvent(
                    "process_name",
                    "__metadata",
                    "M",
                    0.0,
                    pid=self._pid,
                    args={"name": name},
                )
            )

    # -- simulator ------------------------------------------------------
    def event_executed(self, ts: float) -> None:
        self._c_events.inc()

    # -- message bus ----------------------------------------------------
    def bus_sent(self, ts: float, kind: str) -> None:
        self.metrics.counter("bus.sent", (kind,)).inc()

    def bus_queued(self, ts: float, kind: str, wait: float) -> None:
        self.metrics.histogram("bus.queue_wait", (kind,)).record(wait)

    def bus_delivered(self, ts: float, kind: str) -> None:
        self.metrics.counter("bus.delivered", (kind,)).inc()

    def bus_dropped(self, ts: float, kind: str) -> None:
        self.metrics.counter("bus.dropped", (kind,)).inc()

    # -- token lifecycle ------------------------------------------------
    def token_injected(self, token: TokenLike) -> None:
        self._c_injected.inc()
        self._inflight += 1
        trace = self.trace
        if trace is not None:
            ts = token.issued_at
            pid = self._pid
            trace.add(
                TraceEvent(
                    "tokens_in_flight",
                    "token",
                    "C",
                    ts,
                    pid=pid,
                    args={"in_flight": self._inflight},
                )
            )
            if self._sampled(token.token_id):
                trace.add(
                    TraceEvent(
                        "token",
                        "token",
                        "b",
                        ts,
                        pid=pid,
                        id=token.token_id,
                        args={"entry_wire": token.entry_wire},
                    )
                )

    def token_hop(
        self, ts: float, token: TokenLike, path: Path, port: int, batch_size: int
    ) -> None:
        self._c_hops.inc()
        self._h_batch.record(batch_size)
        trace = self.trace
        if trace is not None and self._sampled(token.token_id):
            trace.add(
                TraceEvent(
                    "hop",
                    "token",
                    "n",
                    ts,
                    pid=self._pid,
                    id=token.token_id,
                    args={
                        "path": list(path),
                        "port": port,
                        "batch_size": batch_size,
                        "hops": token.hops,
                    },
                )
            )

    def token_rerouted(self, ts: float, token: TokenLike) -> None:
        self._c_reroutes.inc()
        trace = self.trace
        if trace is not None and self._sampled(token.token_id):
            trace.add(
                TraceEvent(
                    "reroute",
                    "token",
                    "n",
                    ts,
                    pid=self._pid,
                    id=token.token_id,
                    args={"reroutes": token.reroutes},
                )
            )

    def token_retired(self, token: TokenLike) -> None:
        self._c_retired.inc()
        self._inflight -= 1
        latency = token.latency
        if latency is not None:
            self._h_latency.record(latency)
        trace = self.trace
        if trace is not None:
            retired_at = token.retired_at
            ts = retired_at if retired_at is not None else 0.0
            pid = self._pid
            trace.add(
                TraceEvent(
                    "tokens_in_flight",
                    "token",
                    "C",
                    ts,
                    pid=pid,
                    args={"in_flight": self._inflight},
                )
            )
            if self._sampled(token.token_id):
                trace.add(
                    TraceEvent(
                        "token",
                        "token",
                        "e",
                        ts,
                        pid=pid,
                        id=token.token_id,
                        args={
                            "value": token.value,
                            "exit_wire": token.exit_wire,
                            "hops": token.hops,
                            "reroutes": token.reroutes,
                        },
                    )
                )

    def token_dropped(self, ts: float, token: TokenLike) -> None:
        self._c_dropped.inc()
        self._inflight -= 1
        trace = self.trace
        if trace is not None:
            pid = self._pid
            trace.add(
                TraceEvent(
                    "tokens_in_flight",
                    "token",
                    "C",
                    ts,
                    pid=pid,
                    args={"in_flight": self._inflight},
                )
            )
            if self._sampled(token.token_id):
                trace.add(
                    TraceEvent(
                        "token",
                        "token",
                        "e",
                        ts,
                        pid=pid,
                        id=token.token_id,
                        args={"dropped": True, "reroutes": token.reroutes},
                    )
                )

    def owed_delta(self, delta: int) -> None:
        self._g_owed.add(delta)

    # -- object pools ---------------------------------------------------
    def pool_stats(self, name: str, created: int, reused: int, free: int) -> None:
        metrics = self.metrics
        metrics.gauge("pool.created", (name,)).set(created)
        metrics.gauge("pool.reused", (name,)).set(reused)
        metrics.gauge("pool.free", (name,)).set(free)

    # -- control plane --------------------------------------------------
    def stabilization(self, ts_begin: float, ts_end: float, restored: int) -> None:
        metrics = self.metrics
        metrics.counter("stabilize.episodes").inc()
        metrics.histogram("stabilize.restored").record(restored)
        metrics.histogram("stabilize.duration").record(ts_end - ts_begin)
        trace = self.trace
        if trace is not None:
            trace.add(
                TraceEvent(
                    "stabilize",
                    "control",
                    "X",
                    ts_begin,
                    pid=self._pid,
                    dur=ts_end - ts_begin,
                    args={"restored": restored},
                )
            )

    # -- chord RPCs -----------------------------------------------------
    def rpc_issued(self, ts: float, method: str) -> None:
        self.metrics.counter("rpc.issued", (method,)).inc()

    def rpc_replied(self, ts: float, method: str, rtt: float) -> None:
        self.metrics.counter("rpc.replied", (method,)).inc()
        self.metrics.histogram("rpc.rtt", (method,)).record(rtt)

    def rpc_timeout(self, ts: float, method: str) -> None:
        self.metrics.counter("rpc.timeouts", (method,)).inc()
        trace = self.trace
        if trace is not None:
            trace.add(
                TraceEvent(
                    "rpc_timeout",
                    "rpc",
                    "i",
                    ts,
                    pid=self._pid,
                    args={"method": method},
                )
            )


#: The one shared no-op instance; hook sites compare overhead to this.
NULL_RECORDER = NullRecorder()

#: The currently installed recorder. Hook sites must read this through
#: the module (``_obs.ACTIVE``) so installs take effect immediately.
ACTIVE: NullRecorder = NULL_RECORDER


def install(recorder: NullRecorder) -> NullRecorder:
    """Make ``recorder`` the active recorder; returns it."""
    global ACTIVE
    ACTIVE = recorder
    return recorder


def uninstall() -> None:
    """Restore the null recorder (instrumentation off)."""
    global ACTIVE
    ACTIVE = NULL_RECORDER


@contextmanager
def recording(recorder: Recorder) -> Iterator[Recorder]:
    """Install ``recorder`` for the duration of a ``with`` block,
    restoring whatever was active before (usually the null recorder)."""
    global ACTIVE
    previous = ACTIVE
    ACTIVE = recorder
    try:
        yield recorder
    finally:
        ACTIVE = previous
