"""Byte-deterministic fingerprint digests over observability state.

The scenario smoke matrix (:mod:`repro.scenarios.smoke`) pins every
library scenario to a committed *trace-hash fingerprint*: a SHA-256
digest over the run's seed-stable outputs, rendered through the same
canonical encodings the :mod:`repro.obs.export` exporters use (sorted
keys, fixed separators, no clocks). Because the exporters are already
byte-deterministic — CI ``cmp``s two same-seed exports — a digest over
their bytes is a free regression pin: any behavioural drift in the
token plane shows up as a fingerprint mismatch, with the full metrics
payload available for diffing.

Only pure functions of the seed may flow into a fingerprint. Wall-clock
rates (ops/sec, events/sec, RSS) belong in
:data:`repro.bench.result.WALL_CLOCK_METRIC_KEYS` and must be excluded
by the caller before digesting.
"""

from __future__ import annotations

import hashlib
import json

from repro.obs.export import metrics_jsonl
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "canonical_json_bytes",
    "digest_bytes",
    "digest_payload",
    "digest_metrics",
]

#: Digest strings are prefixed with the algorithm so a future change of
#: hash cannot silently compare digests across algorithms.
_ALGORITHM = "sha256"


def canonical_json_bytes(payload: object) -> bytes:
    """``payload`` as canonical JSON bytes (sorted keys, fixed
    separators, UTF-8) — the exporters' encoding, reusable for any
    JSON-serialisable structure."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def digest_bytes(data: bytes) -> str:
    """``"sha256:<hex>"`` over raw bytes."""
    return "%s:%s" % (_ALGORITHM, hashlib.sha256(data).hexdigest())


def digest_payload(payload: object) -> str:
    """Digest of a JSON-serialisable payload via its canonical bytes."""
    return digest_bytes(canonical_json_bytes(payload))


def digest_metrics(registry: MetricsRegistry) -> str:
    """Digest of a metrics registry via its JSONL export bytes.

    Exactly the bytes :func:`repro.obs.export.write_metrics_jsonl`
    would write, so a fingerprint mismatch can be diagnosed by
    exporting both runs' metrics and diffing the files.
    """
    return digest_bytes(metrics_jsonl(registry).encode("utf-8"))
