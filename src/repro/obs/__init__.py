"""`repro.obs` — deterministic observability for the simulated system.

Production systems ship with three observability legs: metrics (what
is happening in aggregate), traces (what happened to *this* request),
and exporters that get both into tools. This package is those legs for
the simulated deployment, stdlib-only and deterministic:

* a :class:`~repro.obs.metrics.MetricsRegistry` of counters, gauges and
  fixed-bucket log-scale histograms (p50/p90/p99/max), keyed by name +
  label tuples and snapshottable at any simulated time;
* token-lifecycle tracing — inject, per-balancer hops, reroutes,
  retire/drop — into a bounded ring buffer with deterministic sampling
  (:mod:`repro.obs.trace`, :mod:`repro.obs.recorder`);
* exporters to metrics JSONL and the Chrome ``trace_event`` format,
  loadable in Perfetto / ``chrome://tracing``
  (:mod:`repro.obs.export`).

Instrumentation is off by default: every hook site in the simulator,
runtime, Chord protocol and bench harness reads the module-level
:data:`~repro.obs.recorder.ACTIVE` recorder, which is a
:class:`~repro.obs.recorder.NullRecorder` until :func:`install`-ed —
the null-object fast path the bench gate keeps under 3% overhead.

All timestamps are simulated time; the package reads no clock and no
randomness, so traces and metric snapshots are byte-identical across
runs with the same seed.
"""

from repro.obs.export import (
    chrome_trace_payload,
    metrics_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics_jsonl,
)
from repro.obs.fingerprint import (
    canonical_json_bytes,
    digest_bytes,
    digest_metrics,
    digest_payload,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
# NOTE: ``recorder.ACTIVE`` is deliberately not re-exported: a
# ``from repro.obs import ACTIVE`` would freeze the binding at import
# time and miss later installs. Read it as ``recorder.ACTIVE`` through
# the module, the way the hook sites do.
from repro.obs.recorder import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    TokenLike,
    install,
    recording,
    uninstall,
)
from repro.obs.trace import TraceBuffer, TraceEvent

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRecorder",
    "Recorder",
    "TokenLike",
    "NULL_RECORDER",
    "install",
    "uninstall",
    "recording",
    "TraceBuffer",
    "TraceEvent",
    "canonical_json_bytes",
    "digest_bytes",
    "digest_metrics",
    "digest_payload",
    "chrome_trace_payload",
    "metrics_jsonl",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_metrics_jsonl",
]
