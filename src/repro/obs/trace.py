"""Trace events and the bounded ring buffer (`repro.obs`).

A :class:`TraceEvent` is one record in Chrome ``trace_event`` terms
(https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
a phase character, a simulated-time timestamp, a (pid, tid) track, and
a small ``args`` payload. The phases this repo emits:

``B``/``E``
    Begin/end of a synchronous slice on a track.
``X``
    A complete slice (begin timestamp + duration in one record) — used
    for stabilization episodes.
``b``/``n``/``e``
    Async begin / instant / end, correlated by ``(cat, id)`` — used for
    token journeys: inject is ``b``, each per-balancer hop is an ``n``,
    retire/drop is ``e``, all sharing ``id = token_id``.
``i``
    A free-standing instant (RPC timeout, reroute).
``C``
    A counter track sample (tokens in flight).
``M``
    Metadata (process/thread names for the viewer).

Timestamps are **simulated time only**, scaled by
:data:`MICROSECONDS_PER_SIM_UNIT` so one simulated time unit renders as
one millisecond in Perfetto / ``chrome://tracing``. The buffer is a
bounded ring: when full, the *oldest* events are discarded and counted
in ``dropped_events``, so tracing at ``large_churn`` scale costs bounded
memory and the tail of the run — usually the interesting part — is what
survives.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterator, List, Optional

__all__ = ["TraceEvent", "TraceBuffer", "MICROSECONDS_PER_SIM_UNIT"]

#: Chrome trace timestamps are microseconds; one simulated time unit is
#: rendered as one millisecond so typical runs (tens to thousands of
#: sim units) land in a comfortable zoom range.
MICROSECONDS_PER_SIM_UNIT = 1000.0


class TraceEvent:
    """One trace record; maps 1:1 onto a Chrome trace_event object."""

    __slots__ = ("name", "cat", "ph", "ts", "pid", "tid", "dur", "id", "args")

    def __init__(
        self,
        name: str,
        cat: str,
        ph: str,
        ts: float,
        pid: int = 0,
        tid: int = 0,
        dur: Optional[float] = None,
        id: Optional[int] = None,
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        self.name = name
        self.cat = cat
        self.ph = ph
        self.ts = ts
        self.pid = pid
        self.tid = tid
        self.dur = dur
        self.id = id
        self.args = args

    def to_json(self) -> Dict[str, object]:
        """The Chrome trace_event object (sim time scaled to µs)."""
        event: Dict[str, object] = {
            "name": self.name,
            "cat": self.cat,
            "ph": self.ph,
            "ts": self.ts * MICROSECONDS_PER_SIM_UNIT,
            "pid": self.pid,
            "tid": self.tid,
        }
        if self.dur is not None:
            event["dur"] = self.dur * MICROSECONDS_PER_SIM_UNIT
        if self.id is not None:
            # Async correlation ids are strings in the wild; keep ints
            # readable but stable.
            event["id"] = self.id
        if self.args is not None:
            event["args"] = self.args
        # Async phases require a scope-disambiguating category + id.
        if self.ph in ("b", "n", "e") and self.id is None:
            raise ValueError("async event %r needs an id" % self.name)
        return event

    def __repr__(self) -> str:
        return "TraceEvent(%r, ph=%r, ts=%r)" % (self.name, self.ph, self.ts)


class TraceBuffer:
    """A bounded ring of trace events.

    ``capacity`` bounds live memory; appends beyond it evict the oldest
    event and increment ``dropped_events``. ``metadata`` events (phase
    ``M``: process/thread names) are kept outside the ring so viewer
    labels survive even when the ring wraps.
    """

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError("trace buffer capacity must be >= 1")
        self.capacity = capacity
        self._ring: Deque[TraceEvent] = deque(maxlen=capacity)
        self._metadata: List[TraceEvent] = []
        self.recorded_events = 0
        self.dropped_events = 0

    def add(self, event: TraceEvent) -> None:
        if event.ph == "M":
            self._metadata.append(event)
            return
        self.recorded_events += 1
        if len(self._ring) == self.capacity:
            self.dropped_events += 1
        self._ring.append(event)

    def __len__(self) -> int:
        return len(self._metadata) + len(self._ring)

    def __iter__(self) -> Iterator[TraceEvent]:
        """Metadata first, then ring events in record order."""
        for event in self._metadata:
            yield event
        for event in self._ring:
            yield event

    def events(self) -> List[TraceEvent]:
        return list(self)
