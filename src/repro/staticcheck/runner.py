"""Orchestration for ``repro check`` — runs all passes, one summary.

A *target* is one checkable subject (a balancer-level network, a cut of
a decomposition tree, a counting tree, or a linted path). The runner
builds the standard target matrix for the requested widths — bitonic
and periodic balancer networks, the singleton/level-1/full cuts of
``T_w``, the block-level cut of the adaptive periodic tree, and the
diffracting-tree baseline — runs every pass, and reports per-target
status plus the combined diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.bitonic import bitonic_depth, bitonic_network
from repro.core.cut import Cut
from repro.core.decomposition import DecompositionTree
from repro.core.periodic import periodic_depth, periodic_network
from repro.core.wiring import MergerConvention
from repro.ext.periodic_adaptive import PeriodicWiring, block_level_cut_paths, periodic_tree
from repro.staticcheck.diagnostics import Report
from repro.staticcheck.lint import lint_paths
from repro.staticcheck.structure import (
    MAX_CERTIFY_CUT_WIDTH,
    MAX_CERTIFY_WIDTH,
    check_balancing_network,
    check_counting_tree,
    check_cut_network,
)

DEFAULT_WIDTHS = (2, 4, 8)


@dataclass(frozen=True)
class TargetResult:
    """Outcome of all passes on one target."""

    name: str
    ok: bool
    diagnostics: int

    def format(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        suffix = "" if self.ok else " (%d diagnostics)" % self.diagnostics
        return "%s  %s%s" % (status, self.name, suffix)


@dataclass
class CheckRun:
    """Everything one ``repro check`` invocation produced."""

    targets: List[TargetResult]
    report: Report

    @property
    def ok(self) -> bool:
        return self.report.ok

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def summary(self) -> str:
        lines = [t.format() for t in self.targets]
        failed = sum(1 for t in self.targets if not t.ok)
        lines.append(
            "%d target(s), %d passed, %d failed"
            % (len(self.targets), len(self.targets) - failed, failed)
        )
        return "\n".join(lines)

    def to_json_payload(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "targets": [
                {"name": t.name, "ok": t.ok, "diagnostics": t.diagnostics}
                for t in self.targets
            ],
            "diagnostics": [d.to_dict() for d in self.report.diagnostics],
        }


def _cut_targets(width: int) -> List[Tuple[str, Cut]]:
    """The representative cuts of ``T_w`` checked per width."""
    tree = DecompositionTree(width)
    targets = [("T_%d singleton cut" % width, Cut.singleton(tree))]
    if tree.max_level >= 1:
        targets.append(("T_%d level-1 cut" % width, Cut.level(tree, 1)))
        targets.append(("T_%d full cut" % width, Cut.full(tree)))
    return targets


def run_check(
    widths: Sequence[int] = DEFAULT_WIDTHS,
    convention: MergerConvention = MergerConvention.AHS94,
    lint: Optional[Sequence[str]] = None,
    certify: bool = True,
    max_certify_width: int = MAX_CERTIFY_WIDTH,
    max_certify_cut_width: int = MAX_CERTIFY_CUT_WIDTH,
    protocol: bool = False,
    protocol_paths: Optional[Sequence[str]] = None,
    model_check: bool = False,
    model_config=None,
) -> CheckRun:
    """Run the requested passes and return the combined result.

    With ``lint`` set, only the lint pass runs over the given paths.
    With ``protocol`` / ``model_check`` set, only those protocol-layer
    passes run — message-flow analysis over ``protocol_paths`` (default:
    the protocol-layer modules) and the bounded model checker under
    ``model_config``. Otherwise the structure and cut passes run over
    the standard target matrix for each width.
    """
    targets: List[TargetResult] = []
    combined = Report()

    def record(name: str, report: Report) -> None:
        targets.append(TargetResult(name, report.ok, len(report.errors)))
        combined.extend(report)

    if lint is not None:
        report = lint_paths(lint)
        record("lint %s" % ", ".join(lint), report)
        return CheckRun(targets, combined)

    if protocol or model_check:
        if protocol:
            from repro.staticcheck.protocol.flow import check_message_flow

            record("protocol message flow", check_message_flow(protocol_paths))
        if model_check:
            from repro.staticcheck.protocol.model import ModelCheckConfig
            from repro.staticcheck.protocol.model import model_check as bounded_model_check

            config = model_config if model_config is not None else ModelCheckConfig()
            record(
                "bounded model check (n<=%d, depth %d)"
                % (config.max_nodes, config.depth),
                bounded_model_check(config),
            )
        return CheckRun(targets, combined)

    for width in widths:
        name = "BITONIC[%d]" % width
        record(
            name,
            check_balancing_network(
                bitonic_network(width),
                source=name,
                expected_depth=bitonic_depth(width),
                certify=certify,
                max_certify_width=max_certify_width,
            ),
        )
        name = "PERIODIC[%d]" % width
        record(
            name,
            check_balancing_network(
                periodic_network(width),
                source=name,
                expected_depth=periodic_depth(width),
                certify=certify,
                max_certify_width=max_certify_width,
            ),
        )
        for name, cut in _cut_targets(width):
            record(
                name,
                check_cut_network(
                    cut,
                    convention=convention,
                    source=name,
                    certify=certify,
                    max_certify_width=max_certify_cut_width,
                ),
            )
        if width >= 4:
            ptree = periodic_tree(width)
            cut = Cut(ptree, block_level_cut_paths(ptree))
            name = "P_%d block-level cut" % width
            record(
                name,
                check_cut_network(
                    cut,
                    wiring=PeriodicWiring(ptree),
                    source=name,
                    certify=certify,
                    max_certify_width=max_certify_cut_width,
                    check_bounds=False,
                ),
            )
        depth = width.bit_length() - 1
        name = "DIFFRACTING[depth=%d]" % depth
        record(name, check_counting_tree(depth, source=name))
    return CheckRun(targets, combined)
