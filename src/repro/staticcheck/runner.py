"""Orchestration for ``repro check`` — runs all passes, one summary.

A *target* is one checkable subject (a balancer-level network, a cut of
a decomposition tree, a counting tree, a linted path, the concurrency
surface, or one sanitizer profile). The runner builds the standard
target matrix for the requested widths — bitonic and periodic balancer
networks, the singleton/level-1/full cuts of ``T_w``, the block-level
cut of the adaptive periodic tree, and the diffracting-tree baseline —
runs every pass, and reports per-target status plus the combined
diagnostics.

Every invocation also produces a :class:`PassSummary` per executed pass
(wall-clock seconds, finding and target counts) — the ``passes`` block
of the JSON payload, pinned by the schema tests. Timing uses
``time.perf_counter``: the analyzer runs outside ``repro.sim`` /
``repro.runtime``, where simulated time is mandatory.

Pass 6 couples its two halves here: when the schedule-perturbation
sanitizer fails in the same invocation as the static concurrency pass,
baseline-suppressed static findings are re-promoted to errors
(:func:`~repro.staticcheck.concurrency.promote_baseline_suppressed`).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.bitonic import bitonic_depth, bitonic_network
from repro.core.cut import Cut
from repro.core.decomposition import DecompositionTree
from repro.core.periodic import periodic_depth, periodic_network
from repro.core.wiring import MergerConvention
from repro.ext.periodic_adaptive import PeriodicWiring, block_level_cut_paths, periodic_tree
from repro.staticcheck.diagnostics import Report
from repro.staticcheck.lint import lint_paths
from repro.staticcheck.structure import (
    MAX_CERTIFY_CUT_WIDTH,
    MAX_CERTIFY_WIDTH,
    check_balancing_network,
    check_counting_tree,
    check_cut_network,
)

DEFAULT_WIDTHS = (2, 4, 8)


@dataclass(frozen=True)
class TargetResult:
    """Outcome of all passes on one target."""

    name: str
    ok: bool
    diagnostics: int

    def format(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        suffix = "" if self.ok else " (%d diagnostics)" % self.diagnostics
        return "%s  %s%s" % (status, self.name, suffix)


@dataclass(frozen=True)
class PassSummary:
    """One analysis pass's share of the invocation: wall time, findings
    emitted (errors + warnings), and targets examined."""

    name: str
    seconds: float
    findings: int
    targets: int

    def format(self) -> str:
        return "pass %-14s %3d finding(s)  %3d target(s)  %8.3fs" % (
            self.name,
            self.findings,
            self.targets,
            self.seconds,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "seconds": round(self.seconds, 6),
            "findings": self.findings,
            "targets": self.targets,
        }


@dataclass
class CheckRun:
    """Everything one ``repro check`` invocation produced."""

    targets: List[TargetResult]
    report: Report
    passes: List[PassSummary] = field(default_factory=list)
    #: Divergence artifacts the sanitizer wrote (for CI upload).
    artifacts: List[str] = field(default_factory=list)
    #: Path the baseline was (re)written to, when updating.
    baseline_written: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.report.ok

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def summary(self) -> str:
        lines = [t.format() for t in self.targets]
        failed = sum(1 for t in self.targets if not t.ok)
        lines.append(
            "%d target(s), %d passed, %d failed"
            % (len(self.targets), len(self.targets) - failed, failed)
        )
        lines.extend(p.format() for p in self.passes)
        if self.baseline_written:
            lines.append("baseline written: %s" % self.baseline_written)
        for artifact in self.artifacts:
            lines.append("divergence artifact: %s" % artifact)
        return "\n".join(lines)

    def to_json_payload(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "targets": [
                {"name": t.name, "ok": t.ok, "diagnostics": t.diagnostics}
                for t in self.targets
            ],
            "passes": [p.to_dict() for p in self.passes],
            "diagnostics": [d.to_dict() for d in self.report.diagnostics],
        }


def _cut_targets(width: int) -> List[Tuple[str, Cut]]:
    """The representative cuts of ``T_w`` checked per width."""
    tree = DecompositionTree(width)
    targets = [("T_%d singleton cut" % width, Cut.singleton(tree))]
    if tree.max_level >= 1:
        targets.append(("T_%d level-1 cut" % width, Cut.level(tree, 1)))
        targets.append(("T_%d full cut" % width, Cut.full(tree)))
    return targets


class _PassLedger:
    """Accumulates targets, diagnostics, and per-pass statistics."""

    def __init__(self) -> None:
        self.targets: List[TargetResult] = []
        self.combined = Report()
        # name -> [seconds, findings, targets]; insertion-ordered.
        self._stats: Dict[str, List[float]] = {}

    def add_target(
        self, pass_name: str, name: str, report: Report, seconds: float
    ) -> None:
        self.targets.append(TargetResult(name, report.ok, len(report.errors)))
        self.combined.extend(report)
        stats = self._stats.setdefault(pass_name, [0.0, 0.0, 0.0])
        stats[0] += seconds
        stats[1] += len(report.diagnostics)
        stats[2] += 1

    def run_pass(
        self, pass_name: str, name: str, thunk: Callable[[], Report]
    ) -> Report:
        start = time.perf_counter()
        report = thunk()
        self.add_target(pass_name, name, report, time.perf_counter() - start)
        return report

    def passes(self) -> List[PassSummary]:
        return [
            PassSummary(name, seconds, int(findings), int(target_count))
            for name, (seconds, findings, target_count) in self._stats.items()
        ]


def _run_concurrency_half(
    ledger: _PassLedger,
    concurrency: bool,
    concurrency_paths: Optional[Sequence[str]],
    concurrency_baseline: Optional[str],
    update_concurrency_baseline: bool,
    allow_baseline_growth: bool,
    strict_baseline: bool,
    sanitize_seeds: Optional[Sequence[int]],
    sanitize_profile: str,
    sanitize_jitter: float,
    sanitize_scenarios: Optional[Sequence[str]],
    sanitize_artifact_dir: Optional[str],
) -> Tuple[Optional[str], List[str]]:
    """Pass 6: static rules, then the sanitizer, then the coupling rule
    (sanitizer failure revokes baseline suppressions). Returns the
    baseline path written (if any) and sanitizer artifact paths.

    With ``strict_baseline`` (the ``--thread-ready`` gate) the baseline
    is not applied at all: findings stay errors, and a baseline file
    that still carries entries is itself an error — thread-readiness
    means the debt ledger is empty, not merely triaged.

    Updating the baseline refuses to *grow* it (write keys the current
    file does not already carry) unless ``allow_baseline_growth`` is
    set: once drained, the empty baseline is a ratchet.
    """
    from repro.staticcheck.concurrency import (
        SanitizerConfig,
        apply_baseline,
        default_baseline_path,
        format_baseline,
        load_baseline,
        promote_baseline_suppressed,
        run_sanitizer,
    )
    from repro.staticcheck.concurrency.contract import report_stale_keys
    from repro.staticcheck.concurrency.rules import check_concurrency

    baseline_written: Optional[str] = None
    artifacts: List[str] = []
    static_report: Optional[Report] = None
    static_seconds = 0.0
    static_name = ""

    if concurrency:
        baseline_path = concurrency_baseline or default_baseline_path()
        start = time.perf_counter()
        static_report = check_concurrency(concurrency_paths)
        if update_concurrency_baseline:
            content = format_baseline(static_report)
            new_keys = {
                line
                for line in content.splitlines()
                if line and not line.startswith("#")
            }
            existing = (
                load_baseline(baseline_path)
                if os.path.exists(baseline_path)
                else set()
            )
            growth = sorted(new_keys - existing)
            if growth and not allow_baseline_growth:
                static_report.add(
                    "RSC600",
                    "refusing to add %d finding(s) to the concurrency "
                    "baseline: the baseline has been drained to empty and "
                    "may not grow back — fix the findings, or pass "
                    "--allow-baseline-growth to triage them explicitly"
                    % len(growth),
                    baseline_path,
                )
            else:
                with open(baseline_path, "w", encoding="utf-8") as handle:
                    handle.write(content)
                baseline_written = baseline_path
        if strict_baseline:
            if os.path.exists(baseline_path):
                entries = load_baseline(baseline_path)
                if entries:
                    static_report.add(
                        "RSC600",
                        "thread-readiness requires an empty concurrency "
                        "baseline, but %d entr%s remain in %s"
                        % (
                            len(entries),
                            "y" if len(entries) == 1 else "ies",
                            os.path.basename(baseline_path),
                        ),
                        baseline_path,
                    )
        elif os.path.exists(baseline_path):
            static_report, stale = apply_baseline(
                static_report, load_baseline(baseline_path)
            )
            report_stale_keys(static_report, stale, baseline_path)
        static_seconds = time.perf_counter() - start
        static_name = "concurrency (%s)" % (
            "default packages" if concurrency_paths is None else "%d path(s)" % len(concurrency_paths)
        )
        if strict_baseline:
            static_name += " [strict: no baseline applied]"

    sanitizer_failed = False
    if sanitize_seeds is not None:
        config = SanitizerConfig(
            profile=sanitize_profile,
            seeds=tuple(sanitize_seeds),
            max_jitter=sanitize_jitter,
            scenarios=(
                list(sanitize_scenarios)
                if sanitize_scenarios is not None
                else None
            ),
        )
        if sanitize_artifact_dir is not None:
            config.artifact_dir = sanitize_artifact_dir
        start = time.perf_counter()
        sanitizer_report, outcome = run_sanitizer(config)
        seconds = time.perf_counter() - start
        sanitizer_failed = not sanitizer_report.ok
        artifacts = outcome.artifacts
        ledger.add_target(
            "sanitizer",
            "sanitizer %s x%d seed(s) (%d run(s))"
            % (sanitize_profile, len(config.seeds), outcome.runs),
            sanitizer_report,
            seconds,
        )

    if static_report is not None:
        if sanitizer_failed:
            static_report, promoted = promote_baseline_suppressed(static_report)
            if promoted:
                static_name += " [%d suppression(s) revoked]" % promoted
        ledger.add_target("concurrency", static_name, static_report, static_seconds)

    return baseline_written, artifacts


def run_check(
    widths: Sequence[int] = DEFAULT_WIDTHS,
    convention: MergerConvention = MergerConvention.AHS94,
    lint: Optional[Sequence[str]] = None,
    certify: bool = True,
    max_certify_width: int = MAX_CERTIFY_WIDTH,
    max_certify_cut_width: int = MAX_CERTIFY_CUT_WIDTH,
    protocol: bool = False,
    protocol_paths: Optional[Sequence[str]] = None,
    model_check: bool = False,
    model_config=None,
    concurrency: bool = False,
    concurrency_paths: Optional[Sequence[str]] = None,
    concurrency_baseline: Optional[str] = None,
    update_concurrency_baseline: bool = False,
    allow_baseline_growth: bool = False,
    ownership: bool = False,
    ownership_paths: Optional[Sequence[str]] = None,
    thread_ready: bool = False,
    sanitize_seeds: Optional[Sequence[int]] = None,
    sanitize_profile: str = "smoke",
    sanitize_jitter: float = 0.0,
    sanitize_scenarios: Optional[Sequence[str]] = None,
    sanitize_artifact_dir: Optional[str] = None,
) -> CheckRun:
    """Run the requested passes and return the combined result.

    With ``lint`` set, only the lint pass runs over the given paths.
    With ``protocol`` / ``model_check`` set, only those protocol-layer
    passes run — message-flow analysis over ``protocol_paths`` (default:
    the protocol-layer modules) and the bounded model checker under
    ``model_config``. With ``concurrency`` / ``sanitize_seeds`` set,
    Pass 6 runs: the static RSC60x rules over ``concurrency_paths``
    (default: the runtime packages) filtered through the triage baseline
    at ``concurrency_baseline`` (default: ``CONCURRENCY_BASELINE.txt``
    in the working directory, when present), and/or the schedule-
    perturbation sanitizer over ``sanitize_profile``'s bench scenarios,
    one run per perturbation seed. With ``ownership`` set, Pass 7 runs
    the RSC70x ownership/lock-discipline rules over ``ownership_paths``
    (default: the same runtime packages). ``thread_ready`` is the
    composite gate: Pass 6 in strict mode (no baseline demotion, a
    non-empty baseline is itself an error) + Pass 7 + the sanitizer
    over the default seeds — all three must be clean. Otherwise the
    structure and cut passes run over the standard target matrix for
    each width.
    """
    ledger = _PassLedger()

    if thread_ready:
        from repro.staticcheck.concurrency import DEFAULT_SANITIZE_SEEDS

        concurrency = True
        ownership = True
        if sanitize_seeds is None:
            sanitize_seeds = DEFAULT_SANITIZE_SEEDS

    if lint is not None:
        ledger.run_pass(
            "lint", "lint %s" % ", ".join(lint), lambda: lint_paths(lint)
        )
        return CheckRun(ledger.targets, ledger.combined, ledger.passes())

    if protocol or model_check:
        if protocol:
            from repro.staticcheck.protocol.flow import check_message_flow

            ledger.run_pass(
                "protocol-flow",
                "protocol message flow",
                lambda: check_message_flow(protocol_paths),
            )
        if model_check:
            from repro.staticcheck.protocol.model import ModelCheckConfig
            from repro.staticcheck.protocol.model import model_check as bounded_model_check

            config = model_config if model_config is not None else ModelCheckConfig()
            ledger.run_pass(
                "model-check",
                "bounded model check (n<=%d, depth %d)"
                % (config.max_nodes, config.depth),
                lambda: bounded_model_check(config),
            )
        return CheckRun(ledger.targets, ledger.combined, ledger.passes())

    if concurrency or ownership or sanitize_seeds is not None:
        baseline_written, artifacts = _run_concurrency_half(
            ledger,
            concurrency,
            concurrency_paths,
            concurrency_baseline,
            update_concurrency_baseline,
            allow_baseline_growth,
            thread_ready,
            sanitize_seeds,
            sanitize_profile,
            sanitize_jitter,
            sanitize_scenarios,
            sanitize_artifact_dir,
        )
        if ownership:
            from repro.staticcheck.ownership import check_ownership

            ledger.run_pass(
                "ownership",
                "ownership (%s)"
                % (
                    "default packages"
                    if ownership_paths is None
                    else "%d path(s)" % len(ownership_paths)
                ),
                lambda: check_ownership(ownership_paths),
            )
        return CheckRun(
            ledger.targets,
            ledger.combined,
            ledger.passes(),
            artifacts=artifacts,
            baseline_written=baseline_written,
        )

    for width in widths:
        name = "BITONIC[%d]" % width
        ledger.run_pass(
            "structure",
            name,
            lambda name=name, width=width: check_balancing_network(
                bitonic_network(width),
                source=name,
                expected_depth=bitonic_depth(width),
                certify=certify,
                max_certify_width=max_certify_width,
            ),
        )
        name = "PERIODIC[%d]" % width
        ledger.run_pass(
            "structure",
            name,
            lambda name=name, width=width: check_balancing_network(
                periodic_network(width),
                source=name,
                expected_depth=periodic_depth(width),
                certify=certify,
                max_certify_width=max_certify_width,
            ),
        )
        for name, cut in _cut_targets(width):
            ledger.run_pass(
                "cuts",
                name,
                lambda name=name, cut=cut: check_cut_network(
                    cut,
                    convention=convention,
                    source=name,
                    certify=certify,
                    max_certify_width=max_certify_cut_width,
                ),
            )
        if width >= 4:
            ptree = periodic_tree(width)
            cut = Cut(ptree, block_level_cut_paths(ptree))
            name = "P_%d block-level cut" % width
            ledger.run_pass(
                "cuts",
                name,
                lambda name=name, cut=cut, ptree=ptree: check_cut_network(
                    cut,
                    wiring=PeriodicWiring(ptree),
                    source=name,
                    certify=certify,
                    max_certify_width=max_certify_cut_width,
                    check_bounds=False,
                ),
            )
        depth = width.bit_length() - 1
        name = "DIFFRACTING[depth=%d]" % depth
        ledger.run_pass(
            "structure",
            name,
            lambda name=name, depth=depth: check_counting_tree(depth, source=name),
        )
    return CheckRun(ledger.targets, ledger.combined, ledger.passes())
