"""Pass 1 — network structure analysis (codes ``RSC1xx``).

Statically verifies well-formedness of the two network representations
the package executes:

* balancer-level :class:`~repro.core.network.BalancingNetwork` wirings
  (bitonic, periodic, anything hand-built): every wire id in range, no
  wire used twice within a layer, the output order a permutation — and
  the step property *certified* for small widths by the 0-1 principle,
  pushing every 0/1 vector through the isomorphic comparator network
  and reusing :func:`repro.core.verification.is_sorted_01`;
* cut networks (any cut of the recursive tree ``T_w``, bitonic or
  generic): every internal wire has exactly one producer and one
  consumer, the member graph is acyclic with a consistent layer
  assignment, fan-in/fan-out match the component specs, measured
  effective width/depth respect the Lemma 2.2/2.3 bounds, and the
  quiescent step property is certified over exhaustive 0/1 input-count
  vectors plus single-wire bursts.

The diffracting-tree baseline gets its own small certifier,
:func:`check_counting_tree`.

All checkers return a :class:`~repro.staticcheck.diagnostics.Report`
and never raise on malformed input — that is the point: they accept
raw wiring data (:func:`check_wiring`) that the runtime constructors
would reject, and turn every violation into a diagnostic.

Error codes
-----------
``RSC101``
    Malformed wire topology (id out of range, duplicate use in a layer,
    an internal wire without exactly one producer and one consumer).
``RSC102``
    Output order is not a permutation of the wires.
``RSC103``
    The balancer/member graph is cyclic or has no consistent layer
    assignment.
``RSC104``
    Fan-in/fan-out mismatch against the component specs (a port fed
    never or twice, a component off every input-to-output path).
``RSC105``
    Step-property certification failed (0-1 principle or quiescent
    batch counterexample).
``RSC106``
    Measured depth exceeds the Lemma 2.2 bound (or the closed form).
``RSC107``
    Measured width below the Lemma 2.3 bound.
``RSC108``
    Width too large to certify exhaustively (warning; structural checks
    still ran).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.cut import Cut, CutNetwork
from repro.core.decomposition import DecompositionTree
from repro.core.metrics import lemma22_bound, lemma23_bound, measure
from repro.core.network import BalancingNetwork
from repro.core.verification import has_step_property, is_sorted_01
from repro.core.wiring import MergerConvention
from repro.staticcheck.diagnostics import Report, Severity

Path = Tuple[int, ...]

#: Largest width certified exhaustively via the 0-1 principle
#: (``2**width`` vectors) unless the caller overrides it.
MAX_CERTIFY_WIDTH = 16

#: Largest width for exhaustive 0/1 *batch* certification of a cut
#: network (each vector rebuilds the network, so the default is lower).
MAX_CERTIFY_CUT_WIDTH = 8


# ----------------------------------------------------------------------
# balancer-level networks
# ----------------------------------------------------------------------
def check_wiring(
    width: int,
    layers: Sequence[Sequence[Tuple[int, int]]],
    output_order: Sequence[int],
    source: str = "wiring",
) -> Report:
    """Well-formedness of raw balancer-level wiring data.

    Unlike the :class:`~repro.core.network.BalancingNetwork`
    constructor, this accepts arbitrarily broken data and reports every
    violation instead of raising on the first.
    """
    report = Report()
    if width < 2 or width & (width - 1):
        report.add("RSC101", "width must be a power of two >= 2, got %r" % (width,), source)
    if sorted(output_order) != list(range(width)):
        report.add(
            "RSC102",
            "output order %r is not a permutation of 0..%d" % (list(output_order), width - 1),
            source,
        )
    for depth, layer in enumerate(layers):
        seen: Dict[int, int] = {}
        for index, pair in enumerate(layer):
            if len(pair) != 2 or pair[0] == pair[1]:
                report.add(
                    "RSC101",
                    "balancer %d of layer %d must join two distinct wires, got %r"
                    % (index, depth, tuple(pair)),
                    source,
                    component="layer %d" % depth,
                )
                continue
            for wire in pair:
                if not 0 <= wire < width:
                    report.add(
                        "RSC101",
                        "wire %d out of range [0, %d) in layer %d" % (wire, width, depth),
                        source,
                        component="layer %d" % depth,
                    )
                elif wire in seen:
                    report.add(
                        "RSC101",
                        "wire %d used by balancers %d and %d of layer %d "
                        "(two producers for one wire)" % (wire, seen[wire], index, depth),
                        source,
                        component="layer %d" % depth,
                    )
                else:
                    seen[wire] = index
    return report


def certify_01_principle(
    network: BalancingNetwork,
    source: str = "network",
    max_width: int = MAX_CERTIFY_WIDTH,
) -> Report:
    """Certify the step property via the 0-1 principle.

    Pushes every 0/1 vector through the isomorphic max-up comparator
    network; by Aspnes-Herlihy-Shavit the balancing network counts iff
    the comparator network sorts, and by the 0-1 principle it sorts iff
    it sorts all ``2**width`` 0/1 inputs.
    """
    report = Report()
    width = network.width
    if width > max_width:
        report.add(
            "RSC108",
            "width %d exceeds the exhaustive certification limit %d; "
            "step property not certified" % (width, max_width),
            source,
            severity=Severity.WARNING,
        )
        return report
    for bits in itertools.product((0, 1), repeat=width):
        on_wire = list(bits)
        for layer in network.layers:
            for top, bottom in layer:
                hi = max(on_wire[top], on_wire[bottom])
                lo = min(on_wire[top], on_wire[bottom])
                on_wire[top], on_wire[bottom] = hi, lo
        out = [on_wire[wire] for wire in network.output_order]
        if not is_sorted_01(out):
            report.add(
                "RSC105",
                "0-1 principle violated: input %r sorts to %r" % (list(bits), out),
                source,
            )
            return report
    return report


def check_balancing_network(
    network: BalancingNetwork,
    source: str = "network",
    expected_depth: Optional[int] = None,
    certify: bool = True,
    max_certify_width: int = MAX_CERTIFY_WIDTH,
) -> Report:
    """All structural checks for one balancer-level network."""
    report = check_wiring(network.width, network.layers, network.output_order, source)
    if expected_depth is not None and network.depth != expected_depth:
        report.add(
            "RSC106",
            "depth %d does not match the closed form %d" % (network.depth, expected_depth),
            source,
        )
    if report.ok and certify:
        report.extend(certify_01_principle(network, source, max_certify_width))
    return report


# ----------------------------------------------------------------------
# cut networks
# ----------------------------------------------------------------------
def _wire_audit(network: CutNetwork, source: str, report: Report) -> None:
    """One producer and one consumer per wire; fan-in/out per spec."""
    producers: Dict[Tuple[Path, int], int] = {}
    output_producers: Dict[int, int] = {}
    width = network.width
    for wire in range(width):
        try:
            path, port = network._input(wire)
        except Exception as exc:  # malformed member set
            report.add("RSC101", "network input %d unroutable: %s" % (wire, exc), source)
            continue
        producers[(path, port)] = producers.get((path, port), 0) + 1
    for path in sorted(network.states):
        state = network.states[path]
        for port in range(state.width):
            dest = network._edge(path, port)
            if dest[0] == "out":
                output_producers[dest[1]] = output_producers.get(dest[1], 0) + 1
            elif dest[0] == "member":
                key = (dest[1], dest[2])
                producers[key] = producers.get(key, 0) + 1
            else:  # "missing": the receiving subtree has no live member
                report.add(
                    "RSC101",
                    "output %d dangles: receiving subtree %s has no member"
                    % (port, dest[1]),
                    source,
                    component=str(state.spec),
                )
    for path in sorted(network.states):
        spec = network.states[path].spec
        for port in range(spec.width):
            fed = producers.get((path, port), 0)
            if fed != 1:
                report.add(
                    "RSC104",
                    "input port %d has %d producers (want exactly 1)" % (port, fed),
                    source,
                    component=str(spec),
                )
    for wire in range(width):
        fed = output_producers.get(wire, 0)
        if fed != 1:
            report.add(
                "RSC104",
                "network output %d has %d producers (want exactly 1)" % (wire, fed),
                source,
            )
    stray = set(producers) - {
        (path, port)
        for path in network.states
        for port in range(network.states[path].spec.width)
    }
    for path, port in sorted(stray):
        report.add(
            "RSC104",
            "wire feeds port %d of %r, which is not a live member port" % (port, path),
            source,
        )


def _layer_audit(network: CutNetwork, source: str, report: Report) -> None:
    """Acyclicity + a consistent layer assignment of the member graph."""
    graph = network.member_graph()
    indegree = {path: 0 for path in graph}
    for succs in graph.values():
        for succ in succs:
            indegree[succ] += 1
    layer = {path: 0 for path, deg in indegree.items() if deg == 0}
    ready = sorted(layer)
    order: List[Path] = []
    while ready:
        path = ready.pop()
        order.append(path)
        for succ in sorted(graph[path]):
            layer[succ] = max(layer.get(succ, 0), layer[path] + 1)
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
    if len(order) != len(graph):
        cyclic = sorted(set(graph) - set(order))
        report.add(
            "RSC103",
            "member graph is cyclic; no layer assignment exists "
            "(members on cycles: %s)" % ", ".join(map(repr, cyclic[:4])),
            source,
        )
        return
    for path, succs in graph.items():
        for succ in succs:
            if layer[succ] <= layer[path]:
                report.add(
                    "RSC103",
                    "layer assignment inconsistent: %r (layer %d) feeds %r (layer %d)"
                    % (path, layer[path], succ, layer[succ]),
                    source,
                )


def _certify_cut(
    network: CutNetwork,
    source: str,
    report: Report,
    max_width: int,
    build,
) -> None:
    """Quiescent step-property certification of a cut network.

    Exhaustive 0/1 input-count vectors (the batch analogue of the 0-1
    principle — each vector through a fresh network) plus single-wire
    bursts of up to ``2*width`` tokens, which exercise every counter
    offset.
    """
    width = network.width
    if width > max_width:
        report.add(
            "RSC108",
            "width %d exceeds the exhaustive cut-certification limit %d; "
            "step property not certified" % (width, max_width),
            source,
            severity=Severity.WARNING,
        )
        return
    for bits in itertools.product((0, 1), repeat=width):
        fresh = build()
        out = fresh.feed_counts(list(bits))
        if not has_step_property(out):
            report.add(
                "RSC105",
                "quiescent step property violated: 0/1 input %r yields %r"
                % (list(bits), out),
                source,
            )
            return
    for wire in range(width):
        for burst in (1, width, 2 * width - 1):
            fresh = build()
            counts = [0] * width
            counts[wire] = burst
            out = fresh.feed_counts(counts)
            if not has_step_property(out):
                report.add(
                    "RSC105",
                    "quiescent step property violated: burst of %d tokens on "
                    "wire %d yields %r" % (burst, wire, out),
                    source,
                )
                return


def check_cut_network(
    cut: Cut,
    convention: MergerConvention = MergerConvention.AHS94,
    wiring=None,
    source: Optional[str] = None,
    certify: bool = True,
    max_certify_width: int = MAX_CERTIFY_CUT_WIDTH,
    check_bounds: bool = True,
) -> Report:
    """All structural checks for the network induced by one cut.

    ``wiring`` may be passed for generic (:mod:`repro.ext`) trees; the
    Lemma 2.2/2.3 bound checks apply only to the bitonic
    :class:`~repro.core.decomposition.DecompositionTree` and are skipped
    otherwise.
    """
    if source is None:
        source = "cut(w=%d, members=%d)" % (cut.tree.width, len(cut))
    report = Report()

    def build() -> CutNetwork:
        return CutNetwork(cut, convention=convention, wiring=wiring)

    try:
        network = build()
    except Exception as exc:
        report.add("RSC101", "cut network cannot be built: %s" % exc, source)
        return report
    _wire_audit(network, source, report)
    _layer_audit(network, source, report)
    if not report.ok:
        return report
    if check_bounds and isinstance(cut.tree, DecompositionTree):
        levels = cut.levels()
        metrics = measure(network)
        depth_bound = lemma22_bound(max(levels))
        width_bound = lemma23_bound(min(levels))
        if metrics.effective_depth > depth_bound:
            report.add(
                "RSC106",
                "effective depth %d exceeds the Lemma 2.2 bound %d for max level %d"
                % (metrics.effective_depth, depth_bound, max(levels)),
                source,
            )
        if metrics.effective_width < width_bound:
            report.add(
                "RSC107",
                "effective width %d below the Lemma 2.3 bound %d for min level %d"
                % (metrics.effective_width, width_bound, min(levels)),
                source,
            )
    if certify:
        _certify_cut(network, source, report, max_certify_width, build)
    return report


# ----------------------------------------------------------------------
# diffracting-tree baseline
# ----------------------------------------------------------------------
def check_counting_tree(depth: int, source: Optional[str] = None, tokens: Optional[int] = None) -> Report:
    """Certify the diffracting-style counting tree of a given depth.

    Routes ``tokens`` tokens (default ``4 * leaves``) and checks, at
    every quiescent point, that the leaf visit counts satisfy the step
    property and the handed-out values are a gap-free prefix of the
    naturals.
    """
    from repro.core.diffracting import CountingTree

    if source is None:
        source = "DIFFRACTING[depth=%d]" % depth
    report = Report()
    try:
        tree = CountingTree(depth)
    except Exception as exc:
        report.add("RSC101", "counting tree cannot be built: %s" % exc, source)
        return report
    total = tokens if tokens is not None else 4 * tree.num_leaves
    values: List[int] = []
    for step in range(total):
        values.append(tree.next_value())
        ordered = sorted(tree.leaf_counts, reverse=True)
        if not has_step_property(ordered):
            report.add(
                "RSC105",
                "leaf counts %r violate the step property after %d tokens"
                % (tree.leaf_counts, step + 1),
                source,
            )
            return report
    if sorted(values) != list(range(total)):
        report.add(
            "RSC105",
            "values are not a gap-free prefix of the naturals: %r" % (sorted(values)[:8],),
            source,
        )
    return report
