"""Pass 3 — project-specific AST lint rules (codes ``RSC3xx``).

A small set of rules, each born from an invariant the rest of the
codebase relies on, enforced with :mod:`ast` visitors — no third-party
linter needed, so the gate runs anywhere the package imports:

``RSC301`` — no unseeded randomness.
    Every experiment and simulation in this repository must be
    reproducible from its seed. Calling module-level ``random.random()``
    / ``random.choice`` etc. (or constructing ``random.Random()`` /
    ``random.SystemRandom()`` without a seed) draws from hidden global
    or OS state; randomness must flow from an explicitly seeded
    ``random.Random(seed)`` injected into the consumer.

``RSC302`` — no wall-clock inside ``repro.sim`` / ``repro.runtime`` /
    ``repro.obs``.
    Simulated time is the only clock those layers may observe
    (``Simulator.now``); reading ``time.time()`` or ``datetime.now()``
    there makes runs machine-dependent and unrepeatable — and for
    ``repro.obs`` it would break the byte-identical trace guarantee.
    The rule is scoped to those packages — benchmarks may measure real
    time.

``RSC303`` — message-passing discipline.
    Inter-node effects must travel through the message bus: a message
    handler may not call another process's ``handle_message`` directly
    (re-entrant delivery skips the bus's ordering and accounting) and
    may not reach into ``hosts[...]`` to touch another node's state.
    The rule is scoped to handler *contexts*: ``handle_message`` /
    ``_handle*`` methods of classes that define ``handle_message``,
    plus closures registered as asynchronous continuations — assigned
    into a ``_pending`` reply table or passed as ``on_undeliverable``
    / ``on_timeout`` to ``bus.send``/``call`` — which run later, in
    message-delivery context. Test drivers and the bus itself deliver
    directly by design.

``RSC304`` — no mutable default arguments.
    The classic Python footgun; every occurrence in a long-lived
    system is a latent cross-call state leak.

``RSC305`` — timeout timers must keep their cancellation handle.
    ``Simulator.schedule``/``schedule_at`` return an ``EventHandle``
    precisely so timeout guards can be cancelled when the awaited
    event happens. A *discarded* handle for a timeout-flavoured
    callback (the statement is a bare expression and the delay or the
    callback is named ``*timeout*``/``*expire*``/``*deadline*``) means
    the timer always fires and survives in the heap until its deadline
    — the lazy-deletion fast path cannot help, and every fired timer
    re-checks state that already resolved. Bind the handle and
    ``cancel()`` it on the success path.

``RSC307`` — pooled hot-path records are constructed only in their
    home module.
    :class:`~repro.runtime.tokens.Token` and the bus's ``Envelope``
    are freelist-pooled: their home modules reset every mutable field
    on reuse and stamp a ``generation`` so stale references are
    detectable. A direct ``Token(...)`` / ``Envelope(...)`` call
    anywhere else in ``repro.*`` bypasses the pool — the record never
    recycles, the pool's created/reused accounting lies, and a future
    field added to the class gets initialised in one place but not the
    other. Acquire from :class:`~repro.runtime.tokens.TokenPool` (or
    the system's injection API) and let the bus build envelopes. Tests
    and fixtures are exempt — the rule is scoped to ``repro.*``.

``RSC308`` — committed scenario specs must validate.
    The declarative scenario library (``repro.scenarios``) is data the
    smoke matrix and the bench bridge both load at run time; a spec
    file under a ``scenarios/library/`` directory that fails schema
    validation would otherwise only surface when the matrix runs. The
    lint walk validates every ``.json``/``.toml`` spec it finds there
    (and any spec file passed to it directly) through the same
    validator ``repro smoke`` uses, reporting each schema problem as
    its own finding with the validator's actionable dotted-path
    message.

``RSC306`` — no eager string formatting at observability record calls.
    ``repro.obs`` hook sites run on the simulator/runtime hot paths and
    are designed to cost one attribute load and a truthiness test when
    instrumentation is off — but an f-string, ``"..." % x`` or
    ``"...".format(x)`` in the *argument list* of a record call is
    evaluated before the call regardless of whether the recorder is
    enabled, silently re-introducing per-event allocation. Metrics are
    keyed by name + label *tuples* and trace args carry raw values;
    formatting belongs in the exporters, at export time.

Use :func:`lint_source` for one buffer, :func:`lint_paths` for files
and directory trees.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.staticcheck.diagnostics import Report

#: ``time`` functions that read the host clock.
_WALL_CLOCK_TIME = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
    "localtime",
    "gmtime",
    "ctime",
}

#: ``datetime``/``date`` constructors that read the host clock.
_WALL_CLOCK_DATETIME = {"now", "utcnow", "today"}

#: Packages in which RSC302 applies.
_SIM_TIME_PACKAGES = ("repro.sim", "repro.runtime", "repro.obs")

#: Names whose zero-argument call still yields seeded behaviour.
_SEEDABLE_CLASSES = {"Random"}

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_BUILTINS = {"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter"}

#: Keyword arguments that register a closure as a message-time callback.
_CALLBACK_KWARGS = ("on_undeliverable", "on_timeout")

#: Name fragments that mark a scheduled callback (or its delay) as a
#: timeout guard for RSC305.
_TIMEOUT_FRAGMENTS = ("timeout", "expire", "deadline")

#: Receiver-name fragments that mark a method call as an observability
#: record call for RSC306 (``obs.token_hop``, ``recorder.rpc_issued``,
#: ``self.metrics.counter``, ``trace.add``, ``_obs.ACTIVE...``).
_OBS_RECEIVER_FRAGMENTS = ("obs", "recorder", "metrics", "trace")

#: Freelist-pooled record types and the one module allowed to construct
#: each (RSC307). Exact class names — subclasses or lookalikes in tests
#: are out of scope, as is any module outside ``repro.``.
_POOLED_TYPES: Dict[str, str] = {
    "Token": "repro.runtime.tokens",
    "Envelope": "repro.sim.node",
}


def _is_obs_receiver(node: ast.expr) -> bool:
    """Whether a call receiver names an observability object."""
    for sub in ast.walk(node):
        name = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        if name is None:
            continue
        if name == "ACTIVE":
            return True
        lowered = name.lower()
        if any(fragment in lowered for fragment in _OBS_RECEIVER_FRAGMENTS):
            return True
    return False


def _eager_format(node: ast.expr) -> Optional[Tuple[str, int]]:
    """The first eager string-formatting expression under ``node``.

    Returns ``(description, line)`` for an f-string, a ``%`` format on
    a string literal, or a ``str.format`` call — all of which execute
    *before* the enclosing record call, whether or not the recorder is
    enabled. Bodies of nested lambdas/defs are skipped (deferred code
    is not evaluated at the call site).
    """
    if isinstance(node, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef)):
        return None
    if isinstance(node, ast.JoinedStr):
        return ("f-string", node.lineno)
    if (
        isinstance(node, ast.BinOp)
        and isinstance(node.op, ast.Mod)
        and isinstance(node.left, ast.Constant)
        and isinstance(node.left.value, str)
    ):
        return ("%-formatted string", node.lineno)
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "format"
        and isinstance(node.func.value, ast.Constant)
        and isinstance(node.func.value.value, str)
    ):
        return ("str.format() call", node.lineno)
    for child in ast.iter_child_nodes(node):
        found = _eager_format(child)
        if found is not None:
            return found
    return None


def _mentions_timeout(node: ast.expr) -> bool:
    """Whether an expression's names suggest a timeout guard."""
    for sub in ast.walk(node):
        name = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        if name is not None:
            lowered = name.lower()
            if any(fragment in lowered for fragment in _TIMEOUT_FRAGMENTS):
                return True
    return False


def _registered_closures(tree: ast.AST) -> Set[int]:
    """``id()``s of closures that will run in message-delivery context.

    A closure is *registered* when it is assigned into a ``_pending``
    reply table (``self._pending[call_id] = fn``) or passed as an
    ``on_undeliverable`` / ``on_timeout`` keyword — from then on it is
    a message handler in everything but name, and RSC303 applies inside
    it. Both lambdas and nested ``def``s referenced by name count.
    """
    marked: Set[int] = set()
    for scope in ast.walk(tree):
        if not isinstance(scope, (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        nested = {
            fn.name: fn
            for fn in ast.walk(scope)
            if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)) and fn is not scope
        }

        def resolve(value: ast.expr) -> Optional[ast.AST]:
            if isinstance(value, ast.Lambda):
                return value
            if isinstance(value, ast.Name):
                return nested.get(value.id)
            return None

        for node in ast.walk(scope):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Attribute)
                        and target.value.attr == "_pending"
                    ):
                        closure = resolve(node.value)
                        if closure is not None:
                            marked.add(id(closure))
            elif isinstance(node, ast.Call):
                for keyword in node.keywords:
                    if keyword.arg in _CALLBACK_KWARGS:
                        closure = resolve(keyword.value)
                        if closure is not None:
                            marked.add(id(closure))
    return marked


def _module_name(filename: str) -> str:
    """Dotted module path of a file, rooted at the ``repro`` package
    when present (``.../src/repro/sim/node.py`` -> ``repro.sim.node``)."""
    parts = os.path.normpath(filename).split(os.sep)
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    stem = [p for p in parts if p]
    if stem and stem[-1].endswith(".py"):
        stem[-1] = stem[-1][:-3]
    return ".".join(stem)


class _LintVisitor(ast.NodeVisitor):
    """One traversal applying all rules; context-aware via stacks."""

    def __init__(self, filename: str, module: str, report: Report):
        self.filename = filename
        self.module = module
        self.report = report
        self.sim_scoped = module.startswith(_SIM_TIME_PACKAGES)
        #: Aliases of the random/time/datetime modules in this file.
        self.random_modules: Set[str] = set()
        self.time_modules: Set[str] = set()
        self.datetime_modules: Set[str] = set()
        #: Bare names bound by ``from random import X as Y`` (Y -> X),
        #: and likewise for time/datetime.
        self.random_names: Dict[str, str] = {}
        self.time_names: Dict[str, str] = {}
        self.datetime_classes: Set[str] = set()
        self.class_stack: List[ast.ClassDef] = []
        self.handler_depth = 0
        #: Closures registered as message-time callbacks (filled in
        #: visit_Module); RSC303 treats their bodies as handler code.
        self.closure_handlers: Set[int] = set()

    def visit_Module(self, node: ast.Module) -> None:
        self.closure_handlers = _registered_closures(node)
        self.generic_visit(node)

    # -- imports --------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "random":
                self.random_modules.add(bound)
            elif alias.name == "time":
                self.time_modules.add(bound)
            elif alias.name == "datetime":
                self.datetime_modules.add(bound)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name
            if node.module == "random":
                self.random_names[bound] = alias.name
            elif node.module == "time":
                self.time_names[bound] = alias.name
            elif node.module == "datetime" and alias.name in ("datetime", "date"):
                self.datetime_classes.add(bound)
        self.generic_visit(node)

    # -- context tracking ----------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.class_stack.append(node)
        try:
            handler_class = any(
                isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                and item.name == "handle_message"
                for item in node.body
            )
            for item in node.body:
                if (
                    handler_class
                    and isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and (item.name == "handle_message" or item.name.startswith("_handle"))
                ):
                    self.handler_depth += 1
                    self.visit(item)
                    self.handler_depth -= 1
                else:
                    self.visit(item)
        finally:
            self.class_stack.pop()

    def _check_defaults(self, node) -> None:
        args = node.args
        for default in list(args.defaults) + [d for d in args.kw_defaults if d is not None]:
            mutable = isinstance(default, _MUTABLE_LITERALS) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_BUILTINS
                and not default.args
                and not default.keywords
            )
            if mutable:
                name = getattr(node, "name", "<lambda>")
                self.report.add(
                    "RSC304",
                    "mutable default argument in %s(); use None and create "
                    "inside the body" % name,
                    self.filename,
                    line=default.lineno,
                )

    def _visit_function(self, node) -> None:
        self._check_defaults(node)
        if id(node) in self.closure_handlers:
            self.handler_depth += 1
            try:
                self.generic_visit(node)
            finally:
                self.handler_depth -= 1
        else:
            self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_function(node)

    # -- calls ----------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            self._check_attribute_call(node, func)
            self._check_pooled_construction(node, func.attr)
        elif isinstance(func, ast.Name):
            self._check_name_call(node, func)
            self._check_pooled_construction(node, func.id)
        self.generic_visit(node)

    def _check_pooled_construction(self, node: ast.Call, name: str) -> None:
        """RSC307: ``Token(...)`` / ``Envelope(...)`` outside the home
        module bypasses the freelist pool (and its field-reset and
        generation-stamp discipline). Scoped to ``repro.*`` so tests
        and fixtures may build records directly."""
        home = _POOLED_TYPES.get(name)
        if home is None or not self.module.startswith("repro."):
            return
        if self.module == home:
            return
        self.report.add(
            "RSC307",
            "direct %s(...) construction outside its home module %s "
            "bypasses the freelist pool; acquire through the pool API "
            "instead" % (name, home),
            self.filename,
            line=node.lineno,
        )

    def _check_attribute_call(self, node: ast.Call, func: ast.Attribute) -> None:
        base = func.value
        # RSC301: random.<fn>(...) on the module object.
        if isinstance(base, ast.Name) and base.id in self.random_modules:
            if func.attr in _SEEDABLE_CLASSES:
                if not node.args and not node.keywords:
                    self.report.add(
                        "RSC301",
                        "random.%s() constructed without a seed; pass an "
                        "explicit seed" % func.attr,
                        self.filename,
                        line=node.lineno,
                    )
            else:
                self.report.add(
                    "RSC301",
                    "module-level random.%s() draws from unseeded global "
                    "state; use an injected random.Random(seed)" % func.attr,
                    self.filename,
                    line=node.lineno,
                )
        # RSC302: wall-clock reads inside sim/runtime.
        if self.sim_scoped:
            if (
                isinstance(base, ast.Name)
                and base.id in self.time_modules
                and func.attr in _WALL_CLOCK_TIME
            ):
                self.report.add(
                    "RSC302",
                    "wall-clock time.%s() inside %s; use simulated time "
                    "(Simulator.now)" % (func.attr, self.module),
                    self.filename,
                    line=node.lineno,
                )
            if func.attr in _WALL_CLOCK_DATETIME:
                if isinstance(base, ast.Name) and (
                    base.id in self.datetime_classes or base.id in self.datetime_modules
                ):
                    self.report.add(
                        "RSC302",
                        "wall-clock %s.%s() inside %s; use simulated time"
                        % (base.id, func.attr, self.module),
                        self.filename,
                        line=node.lineno,
                    )
                elif (
                    isinstance(base, ast.Attribute)
                    and isinstance(base.value, ast.Name)
                    and base.value.id in self.datetime_modules
                ):
                    self.report.add(
                        "RSC302",
                        "wall-clock datetime.%s.%s() inside %s; use simulated "
                        "time" % (base.attr, func.attr, self.module),
                        self.filename,
                        line=node.lineno,
                    )
        # RSC306: eager label/message formatting at an observability
        # record call — evaluated even when instrumentation is off.
        if _is_obs_receiver(base):
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                found = _eager_format(arg)
                if found is not None:
                    description, line = found
                    self.report.add(
                        "RSC306",
                        "%s built eagerly in the arguments of the "
                        "observability record call .%s(); pass label tuples "
                        "and raw values instead — formatting belongs in the "
                        "exporters" % (description, func.attr),
                        self.filename,
                        line=line,
                    )
        # RSC303a: re-entrant handle_message() delivery from inside a
        # handler. Scoped to handler methods: the bus and test drivers
        # deliver directly by design.
        if func.attr == "handle_message" and self.handler_depth:
            in_bus = any(cls.name == "MessageBus" for cls in self.class_stack)
            to_self = isinstance(base, ast.Name) and base.id == "self"
            if not in_bus and not to_self:
                self.report.add(
                    "RSC303",
                    "direct handle_message() call bypasses the message bus; "
                    "send through MessageBus.send instead",
                    self.filename,
                    line=node.lineno,
                )

    def _check_name_call(self, node: ast.Call, func: ast.Name) -> None:
        original = self.random_names.get(func.id)
        if original is not None:
            if original in _SEEDABLE_CLASSES:
                if not node.args and not node.keywords:
                    self.report.add(
                        "RSC301",
                        "%s() (random.%s) constructed without a seed"
                        % (func.id, original),
                        self.filename,
                        line=node.lineno,
                    )
            else:
                self.report.add(
                    "RSC301",
                    "%s() (random.%s) draws from unseeded global state; use "
                    "an injected random.Random(seed)" % (func.id, original),
                    self.filename,
                    line=node.lineno,
                )
        if self.sim_scoped:
            time_fn = self.time_names.get(func.id)
            if time_fn in _WALL_CLOCK_TIME:
                self.report.add(
                    "RSC302",
                    "wall-clock %s() (time.%s) inside %s; use simulated time"
                    % (func.id, time_fn, self.module),
                    self.filename,
                    line=node.lineno,
                )

    # -- statements (RSC305) --------------------------------------------
    def visit_Expr(self, node: ast.Expr) -> None:
        value = node.value
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr in ("schedule", "schedule_at")
            and len(value.args) >= 2
            and (
                _mentions_timeout(value.args[0])
                or _mentions_timeout(value.args[1])
            )
        ):
            self.report.add(
                "RSC305",
                "timeout timer scheduled without keeping its EventHandle; "
                "bind the result of %s() and cancel() it when the awaited "
                "event arrives" % value.func.attr,
                self.filename,
                line=value.lineno,
            )
        self.generic_visit(node)

    # -- subscripts (RSC303b) -------------------------------------------
    def visit_Subscript(self, node: ast.Subscript) -> None:
        if self.handler_depth and isinstance(node.value, ast.Attribute):
            if node.value.attr == "hosts":
                self.report.add(
                    "RSC303",
                    "message handler reaches into hosts[...] — cross-node "
                    "state must be affected via messages only",
                    self.filename,
                    line=node.lineno,
                )
        self.generic_visit(node)


def lint_source(
    source: str,
    filename: str = "<string>",
    module: Optional[str] = None,
    report: Optional[Report] = None,
) -> Report:
    """Lint one Python source buffer; returns (or extends) a report."""
    if report is None:
        report = Report()
    if module is None:
        module = _module_name(filename)
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        report.add(
            "RSC300",
            "syntax error: %s" % exc.msg,
            filename,
            line=exc.lineno or 1,
        )
        return report
    _LintVisitor(filename, module, report).visit(tree)
    return report


#: Suffixes the RSC308 scenario-spec check accepts (mirrors
#: ``repro.scenarios.spec.SPEC_SUFFIXES``; duplicated literally so the
#: walk needs no import when no spec file is ever encountered).
_SPEC_SUFFIXES = (".json", ".toml")


def _is_spec_library_dir(dirpath: str) -> bool:
    """Whether a directory is a scenario library (``.../scenarios/library``)."""
    head, tail = os.path.split(os.path.normpath(dirpath))
    return tail == "library" and os.path.basename(head) == "scenarios"


def lint_spec_file(path: str, report: Report) -> None:
    """RSC308: validate one scenario spec file into the report.

    Emits one finding per schema problem, using the same validator and
    messages ``repro smoke`` would fail with.
    """
    from repro.scenarios.spec import spec_file_problems

    for problem in spec_file_problems(path):
        report.add(
            "RSC308",
            "invalid scenario spec: %s" % problem,
            path,
            line=1,
        )


def _iter_python_files(
    paths: Iterable[str], exclude_dirs: Sequence[str], report: Report
) -> Tuple[List[str], List[str]]:
    """Collect lintable files: ``(.py files, scenario spec files)``.

    Spec files are picked up from ``scenarios/library/`` directories
    during the walk, or when passed as an explicit file argument with a
    spec suffix.
    """
    files: List[str] = []
    spec_files: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(_SPEC_SUFFIXES):
                spec_files.append(path)
            else:
                files.append(path)
            continue
        if not os.path.isdir(path):
            report.add("RSC300", "no such file or directory", path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames
                if d not in exclude_dirs and not d.startswith(".")
            )
            in_library = _is_spec_library_dir(dirpath)
            for name in sorted(filenames):
                if name.endswith(".py"):
                    files.append(os.path.join(dirpath, name))
                elif in_library and name.endswith(_SPEC_SUFFIXES):
                    spec_files.append(os.path.join(dirpath, name))
    return files, spec_files


def lint_paths(
    paths: Iterable[str],
    exclude_dirs: Tuple[str, ...] = ("fixtures", "__pycache__", "results"),
    report: Optional[Report] = None,
) -> Report:
    """Lint files and directory trees (recursively, ``.py`` only).

    ``exclude_dirs`` prunes directories by name — fixture trees hold
    deliberate violations for the test suite.
    """
    if report is None:
        report = Report()
    files, spec_files = _iter_python_files(paths, exclude_dirs, report)
    for filename in files:
        try:
            with open(filename, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            report.add("RSC300", "cannot read file: %s" % exc, filename)
            continue
        lint_source(source, filename, report=report)
    for filename in spec_files:
        lint_spec_file(filename, report)
    return report
