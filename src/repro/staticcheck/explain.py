"""Long-form explanations for every diagnostic code (``--explain``).

:data:`EXPLANATIONS` pairs each :data:`~repro.staticcheck.diagnostics.KNOWN_CODES`
entry with a *rationale* (why the rule exists, anchored in the paper or
the execution model) and a *minimal example* that triggers it — the
same shape as the negative fixtures under ``tests/staticcheck/``. The
schema test asserts this registry covers the code registry exactly, so
an explanation cannot go missing or stale-reference a removed code.

``repro check --explain RSC601`` renders one entry; an unknown code is
a usage error (exit 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.staticcheck.diagnostics import KNOWN_CODES


@dataclass(frozen=True)
class Explanation:
    """Rationale and a minimal triggering example for one code."""

    rationale: str
    example: str


EXPLANATIONS: Dict[str, Explanation] = {
    # ------------------------------------------------------------------
    # Pass 1 — network structure
    # ------------------------------------------------------------------
    "RSC101": Explanation(
        "Balancer wiring is the substrate every other guarantee stands "
        "on: widths must match declared levels, wire indices must be in "
        "range, and no wire may appear twice in one level.",
        "Network(width=4, levels=[[Balancer(0, 0)]])  # duplicate wire 0",
    ),
    "RSC102": Explanation(
        "A counting network permutes tokens; if the declared output "
        "order is not a permutation of the wires, downstream counters "
        "double-count or skip outputs.",
        "outputs = [0, 1, 1, 3]  # wire 2 missing, wire 1 twice",
    ),
    "RSC103": Explanation(
        "Members must form a DAG with a consistent layer assignment, or "
        "tokens can revisit a balancer and the depth bound of Lemma 2.2 "
        "is meaningless.",
        "a.successor = b; b.successor = a  # cycle between members",
    ),
    "RSC104": Explanation(
        "Every internal wire needs exactly one producer and one "
        "consumer; a dangling wire silently drops tokens, a shared one "
        "merges streams the topology says are distinct.",
        "level 2 consumes wire 5 which no level 1 balancer produces",
    ),
    "RSC105": Explanation(
        "The 0-1 principle is the certification shortcut: a width-w "
        "network that counts all 0/1 streams counts all streams. A "
        "failure here means the structure is not a counting network at "
        "all.",
        "swap one comparator in BITONIC[4]; certify() reports RSC105",
    ),
    "RSC106": Explanation(
        "Depth is the paper's cost model (Lemma 2.2): a bitonic "
        "network's depth is exactly d(d+1)/2 for w = 2^d. Deviation "
        "means levels were merged or duplicated during construction.",
        "bitonic_network(8).depth != 6  # 3*4/2",
    ),
    "RSC107": Explanation(
        "Lemma 2.3 lower-bounds effective width; an adaptive cut that "
        "narrows below it cannot sustain the claimed throughput, so the "
        "adaptivity rules must never produce one.",
        "a cut collapsing BITONIC[8] to effective width 1",
    ),
    "RSC108": Explanation(
        "Exhaustive 0-1 certification is 2^w streams; beyond the limit "
        "the checker cannot certify and says so rather than pretending.",
        "certify(bitonic_network(1024))  # not exhaustively checkable",
    ),
    # ------------------------------------------------------------------
    # Pass 2 — cuts and transitions
    # ------------------------------------------------------------------
    "RSC201": Explanation(
        "A cut with no members counts nothing; it usually means a merge "
        "rule fired past the root.",
        "Cut(members=[])",
    ),
    "RSC202": Explanation(
        "Cut members are paths into the component tree; a path that "
        "walks off the tree references a component that cannot exist at "
        "this width.",
        "Cut(members=['0.3']) on a binary tree  # child index 3",
    ),
    "RSC203": Explanation(
        "If one member is an ancestor of another, the tokens under the "
        "descendant are counted twice — once by each component.",
        "Cut(members=['0', '0.1'])  # '0' contains '0.1'",
    ),
    "RSC204": Explanation(
        "Every root-to-leaf path must cross exactly one member; a "
        "coverage hole is a token stream no component owns.",
        "Cut(members=['0.0'])  # paths under '0.1' uncovered",
    ),
    "RSC205": Explanation(
        "A transition relates two cuts of the *same* tree; comparing "
        "cuts of different widths conflates unrelated configurations.",
        "transition(cut_of_width(8), cut_of_width(16))",
    ),
    "RSC206": Explanation(
        "Legal reconfiguration is subtree-aligned splits and merges "
        "that conserve tokens (Section 3.2); anything else can lose or "
        "mint counts mid-flight.",
        "replace member '0' by ['0.0'] alone  # '0.1' tokens dropped",
    ),
    # ------------------------------------------------------------------
    # Pass 3 — codebase lint
    # ------------------------------------------------------------------
    "RSC300": Explanation(
        "An unreadable or unparseable file silently shrinks lint "
        "coverage; the pass reports the gap instead of skipping it.",
        "lint a file containing 'def f(:' (syntax error)",
    ),
    "RSC301": Explanation(
        "Unseeded randomness breaks run-to-run reproducibility — the "
        "whole repro harness keys on explicit Random(seed).",
        "delay = random.random()  # module-level RNG",
    ),
    "RSC302": Explanation(
        "Simulation code must live in simulated time; a wall-clock read "
        "couples results to machine speed and destroys determinism.",
        "start = time.time()  # inside repro.sim",
    ),
    "RSC303": Explanation(
        "Handler-context code that calls another process's methods "
        "directly bypasses latency, queueing, and crash semantics the "
        "bus models.",
        "def handle_message(self, m): self.peer.handle_message(m)",
    ),
    "RSC304": Explanation(
        "A mutable default is one shared object across all calls — "
        "state leaks between supposedly independent invocations.",
        "def route(self, token, path=[]): path.append(token)",
    ),
    "RSC305": Explanation(
        "A timeout timer whose handle is dropped can never be "
        "cancelled; it fires against reused state later (the PR-4 "
        "cancellable-timer API exists exactly for this).",
        "self.sim.schedule(t, self._on_timeout)  # handle discarded",
    ),
    "RSC306": Explanation(
        "Eager string formatting at a record call pays the formatting "
        "cost even when recording is off — the obs fast path is a "
        "single enabled check.",
        "obs.note('tok %s' % token)  # formats even when disabled",
    ),
    "RSC307": Explanation(
        "Token and Envelope are freelist-pooled hot-path records: the "
        "home module resets every mutable field on reuse and bumps a "
        "generation stamp so stale references are detectable. Direct "
        "construction elsewhere bypasses the pool — the record never "
        "recycles, pool accounting lies, and a field added later is "
        "initialised in one place but not the other.",
        "token = Token(tid, wire, now)  # use TokenPool.acquire(...)",
    ),
    "RSC308": Explanation(
        "The scenario library is committed data: the smoke matrix and "
        "the bench bridge load every spec under scenarios/library/ at "
        "run time, so a schema-invalid spec would otherwise surface "
        "only as a matrix failure. The lint walk validates each spec "
        "through the same validator repro smoke uses and reports each "
        "problem with its dotted-path message.",
        '{"arrivals": {"kind": "bursty"}}  # valid kinds: burst, ...',
    ),
    # ------------------------------------------------------------------
    # Pass 4 — protocol message flow
    # ------------------------------------------------------------------
    "RSC400": Explanation(
        "Dynamic RPC names or unreadable files blind the flow graph; "
        "the pass reports reduced coverage rather than inventing edges.",
        "self.call(peer, method_name_variable, ...)",
    ),
    "RSC401": Explanation(
        "An RPC sent with no matching rpc_* handler is mail to nowhere: "
        "at runtime it times out on every send.",
        "self.call(peer, 'rpc_fetch', ...)  # no rpc_fetch anywhere",
    ),
    "RSC402": Explanation(
        "A handler no send site reaches is dead protocol surface — "
        "usually a renamed message kind that left its receiver behind.",
        "def rpc_old_probe(self, ...)  # no caller mentions it",
    ),
    "RSC403": Explanation(
        "Every call() needs an on_timeout path: the peer may be "
        "crashed, and a reply that never comes must not wedge the "
        "protocol.",
        "self.call(peer, 'rpc_get', on_reply=f)  # no on_timeout",
    ),
    "RSC404": Explanation(
        "Popping a _pending continuation without invoking or rearming "
        "it strands the caller: its reply can never be delivered.",
        "self._pending.pop(request_id)  # continuation discarded",
    ),
    "RSC405": Explanation(
        "A registered continuation that mutates shared state without a "
        "liveness/epoch guard may run after the world changed — the "
        "flow-graph ancestor of RSC601/RSC605.",
        "on_reply=lambda r: self.table.update(r)  # no guard",
    ),
    # ------------------------------------------------------------------
    # Pass 5 — bounded model checking
    # ------------------------------------------------------------------
    "RSC500": Explanation(
        "The explorer hit an internal error or truncated the schedule "
        "space; results below this line are incomplete, not green.",
        "model-check with an interleaving budget too small to close",
    ),
    "RSC501": Explanation(
        "After crash recovery the ring must reconnect; a partitioned "
        "ring strands every token routed across the gap.",
        "crash two adjacent nodes in a 3-node ring, explore recovery",
    ),
    "RSC502": Explanation(
        "A connected ring with misordered successors still violates "
        "the routing invariant: lookups overshoot their key range.",
        "successor chain n0 -> n2 -> n1 -> n0",
    ),
    "RSC503": Explanation(
        "Two disjoint rings both believe they are *the* ring; counts "
        "diverge immediately and never reconcile.",
        "recovery leaves {n0,n1} and {n2,n3} self-consistent rings",
    ),
    "RSC504": Explanation(
        "In a crash-free schedule every issued token must reach an "
        "output wire; one that does not was dropped by protocol logic, "
        "not by failure.",
        "a schedule where a forwarded token is never re-injected",
    ),
    "RSC505": Explanation(
        "The step property is the paper's definition of counting "
        "(quiescent output counts differ by at most one, prefix-"
        "heavy); violating it at quiescence means the network is not "
        "counting.",
        "output counts [3, 1] at quiescence  # gap of 2",
    ),
    # ------------------------------------------------------------------
    # Pass 6 — concurrency
    # ------------------------------------------------------------------
    "RSC600": Explanation(
        "Three hygiene conditions share this code: the pass could not "
        "read a file (coverage gap), a '# repro: thread-safe' marker "
        "has no justification (a contract needs a reason), or a "
        "baseline entry matches no current finding (the triage ledger "
        "must not rot).",
        "# repro: thread-safe\n"
        "class Registry: ...  # marker with no ': <why>'",
    ),
    "RSC601": Explanation(
        "A method tests self.X, then registers a continuation (reply "
        "handler, timer, scheduled closure) that writes self.X. By the "
        "time the continuation runs, arbitrary events have executed: "
        "the test is stale. Under the event loop this is a logic "
        "hazard; under threads it is a textbook race. Re-read the "
        "attribute inside the continuation.",
        "if not self.busy:\n"
        "    self._pending[rid] = lambda r: self._apply(r)\n"
        "# continuation sets self.busy without re-checking it",
    ),
    "RSC602": Explanation(
        "self.count += 1 is a load, an add, and a store. The event "
        "loop runs handlers to completion so the three steps never "
        "interleave — an accident of the execution model, not a "
        "property of the code. The threads backend (ROADMAP) removes "
        "the accident; counter state needs locks, atomics, or "
        "per-thread shards first. Findings triaged as event-loop-only "
        "live in CONCURRENCY_BASELINE.txt.",
        "def handle_message(self, m):\n"
        "    self.tokens_retired += 1  # RMW on shared counter",
    ),
    "RSC603": Explanation(
        "Module-level mutable state written from function scope is a "
        "process-wide race under threads. Deliberate swap points (the "
        "repro.obs.recorder.ACTIVE pattern: installed between runs, "
        "read-only during them) carry a '# repro: thread-safe: <why>' "
        "annotation on the mutation line; everything else is a "
        "finding.",
        "ACTIVE = NullRecorder()\n"
        "def install(r):\n"
        "    global ACTIVE\n"
        "    ACTIVE = r  # unannotated global swap",
    ),
    "RSC604": Explanation(
        "A mutable container built in __init__ and passed to another "
        "object gives two owners one unlocked structure; neither "
        "class's locking discipline can cover both. On a class "
        "annotated thread-safe this is a contract violation and is "
        "never suppressed — the annotation cannot hold once aliases "
        "escape. Hand out copies or immutable views instead.",
        "def __init__(self):\n"
        "    self.table = {}\n"
        "def attach(self, peer):\n"
        "    peer.adopt(self.table)  # alias escapes",
    ),
    "RSC605": Explanation(
        "A class that maintains an epoch/version/incarnation counter "
        "has declared that its state has generations — so every "
        "continuation must check it still acts on the generation it "
        "captured (the Envelope.sent_epoch pattern guards exactly "
        "this re-registration ABA hazard). A continuation touching "
        "state without comparing any epoch value may apply a stale "
        "decision to a new incarnation.",
        "self.epoch += 1  # class is epoch-bearing\n"
        "self.sim.schedule(t, lambda: self._retry(token))\n"
        "# _retry never compares a captured epoch",
    ),
    "RSC610": Explanation(
        "The sanitizer re-ran a seeded bench scenario with same-"
        "timestamp events reordered by a seeded RNG — a schedule every "
        "correct implementation must tolerate, since FIFO tie-breaking "
        "is an implementation detail, not a spec. An invariant failure "
        "(token conservation, step property, verify()) or crash under "
        "such a schedule is a demonstrated ordering dependence, found "
        "without threads. It also revokes baseline suppressions in the "
        "same invocation: 'the event loop saves us' just stopped being "
        "true.",
        "repro check --sanitize=3  # scenario fails under seed 2",
    ),
    "RSC611": Explanation(
        "One perturbation seed fully determines the schedule, so "
        "running it twice must reproduce the result fingerprint "
        "byte-for-byte. Divergence means nondeterminism *beyond* the "
        "schedule — typically iteration over an unordered container "
        "or leaked cross-run global state — which would make any "
        "threads-backend bug unreproducible. Fix this before anything "
        "else.",
        "for node in self.members_set: ...  # set iteration order leaks",
    ),
    # ------------------------------------------------------------------
    # Pass 7 — ownership & lock discipline
    # ------------------------------------------------------------------
    "RSC700": Explanation(
        "Ownership contracts are verified, not trusted — but only if "
        "they parse and anchor. The grammar is '# repro: owned-by: "
        "<domain>' (sim-loop-confined | single-writer | shared) or "
        "'# repro: guarded-by: <sync-object>', trailing on an attribute "
        "declaration or standalone on the line directly above it. An "
        "unknown domain, a guard naming no attribute the class "
        "initialises, or a comment anchoring to no declaration is a "
        "contract that certifies nothing.",
        "self.total = 0  # repro: owned-by: exclusive  # not a domain",
    ),
    "RSC701": Explanation(
        "Declaring an attribute 'owned-by: shared' (or naming a guard) "
        "is a promise that every mutation is one atomic operation: a "
        "repro.core.atomics helper call, or a plain write inside 'with "
        "self.<guard>:'. A bare '+=' or container poke on such an "
        "attribute is exactly the compound read-modify-write Pass 6 "
        "flags as RSC602 — the contract comment does not make it "
        "atomic.",
        "self.total = 0  # repro: owned-by: shared\n"
        "...\n"
        "def bump(self):\n"
        "    self.total += 1  # load/add/store, no helper, no guard",
    ),
    "RSC702": Explanation(
        "If one code path acquires lock A then B while another "
        "acquires B then A, there is a schedule where each holds one "
        "and waits forever on the other. The pass builds a per-class "
        "acquisition graph from lexically nested 'with self.<lock>:' "
        "blocks plus one level of self-method call propagation; any "
        "cycle is a deadlock no event-loop discipline can excuse.",
        "def fwd(self):\n"
        "    with self.lock_a:\n"
        "        with self.lock_b: ...\n"
        "def rev(self):\n"
        "    with self.lock_b:\n"
        "        with self.lock_a: ...",
    ),
    "RSC703": Explanation(
        "A domain declaration is a checkable claim about who mutates "
        "the attribute: 'sim-loop-confined' claims every mutating "
        "method is handler-reachable (the event loop serialises them), "
        "'single-writer' claims exactly one method writes. The pass "
        "infers the actual writer set from the access map and reports "
        "the contradiction rather than trusting the comment — 'shared' "
        "is the weakest claim and is never contradicted.",
        "self.count = 0  # repro: owned-by: single-writer\n"
        "...\n"
        "def advance(self): self.count = 1\n"
        "def rewind(self): self.count = 0  # second writer",
    ),
    "RSC704": Explanation(
        "The atomics helpers are safe only through their named "
        "operations: the single-thread flavor relies on each operation "
        "being one C-level step, the locked flavor on each taking the "
        "lock. Poking internals (self.x._value = n), calling a "
        "container mutator (self.x.update(...)), subscript-assigning, "
        "or rebinding the helper attribute outside init bypasses both "
        "disciplines — readers may hold the old object, and the "
        "mutation races.",
        "self.total = AtomicCounter()\n"
        "...\n"
        "def poke(self):\n"
        "    self.total._value = 99  # bypasses the atomic operations",
    ),
}


def explain(code: str) -> Optional[str]:
    """Render one code's description, rationale, and example, or None
    for a code absent from :data:`KNOWN_CODES`."""
    normalized = code.strip().upper()
    if normalized not in KNOWN_CODES:
        return None
    entry = EXPLANATIONS[normalized]
    example = "\n".join("    " + line for line in entry.example.splitlines())
    return (
        "%s — %s\n\nRationale:\n%s\n\nExample (triggers the finding):\n%s"
        % (normalized, KNOWN_CODES[normalized], entry.rationale, example)
    )
