"""Diagnostic model shared by all three analysis passes.

A :class:`Diagnostic` is one finding: a stable error code, a message,
and a *location* — either ``source:line`` for lint findings or a
component/network label for structural findings. A :class:`Report`
collects diagnostics from any number of passes and renders them as
text (one ``location: CODE message`` line each) or JSON.

Error-code blocks
-----------------
``RSC1xx``
    Network structure (well-formedness, 0-1 certification, bounds).
``RSC2xx``
    Cut validity and cut-to-cut transitions.
``RSC3xx``
    Codebase lint rules.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional


class Severity(enum.Enum):
    """How bad a finding is; only errors affect exit status."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self):
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One finding of an analysis pass.

    ``source`` is a file path (lint) or a network/cut label
    (structure/cuts); ``line`` is set only for lint findings;
    ``component`` optionally narrows a structural finding to one
    component or wire.
    """

    code: str
    message: str
    source: str = ""
    line: Optional[int] = None
    component: Optional[str] = None
    severity: Severity = Severity.ERROR

    @property
    def location(self) -> str:
        """``file:line`` or ``label[component]`` — whatever is known."""
        where = self.source or "<unknown>"
        if self.line is not None:
            where = "%s:%d" % (where, self.line)
        if self.component is not None:
            where = "%s[%s]" % (where, self.component)
        return where

    def format(self) -> str:
        return "%s: %s %s: %s" % (self.location, self.severity, self.code, self.message)

    def to_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "message": self.message,
            "source": self.source,
            "line": self.line,
            "component": self.component,
            "severity": self.severity.value,
        }


class Report:
    """An ordered collection of diagnostics from one or more passes."""

    def __init__(self, diagnostics: Iterable[Diagnostic] = ()):
        self.diagnostics: List[Diagnostic] = list(diagnostics)

    # ------------------------------------------------------------------
    # collection
    # ------------------------------------------------------------------
    def add(
        self,
        code: str,
        message: str,
        source: str = "",
        line: Optional[int] = None,
        component: Optional[str] = None,
        severity: Severity = Severity.ERROR,
    ) -> Diagnostic:
        diagnostic = Diagnostic(code, message, source, line, component, severity)
        self.diagnostics.append(diagnostic)
        return diagnostic

    def extend(self, other: "Report") -> "Report":
        self.diagnostics.extend(other.diagnostics)
        return self

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __bool__(self) -> bool:
        """Truthy when the report is *clean* (no errors) — so code can
        write ``if report: proceed()``."""
        return self.ok

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def ok(self) -> bool:
        """Whether the checked subject passed (no error diagnostics)."""
        return not self.errors

    def codes(self) -> List[str]:
        return [d.code for d in self.diagnostics]

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def format(self) -> str:
        return "\n".join(d.format() for d in self.diagnostics)

    def to_json(self, **kwargs) -> str:
        payload = {
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.diagnostics) - len(self.errors),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }
        return json.dumps(payload, **kwargs)
