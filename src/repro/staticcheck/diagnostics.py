"""Diagnostic model shared by all three analysis passes.

A :class:`Diagnostic` is one finding: a stable error code, a message,
and a *location* — either ``source:line`` for lint findings or a
component/network label for structural findings. A :class:`Report`
collects diagnostics from any number of passes and renders them as
text (one ``location: CODE message`` line each) or JSON.

Error-code blocks
-----------------
``RSC1xx``
    Network structure (well-formedness, 0-1 certification, bounds).
``RSC2xx``
    Cut validity and cut-to-cut transitions.
``RSC3xx``
    Codebase lint rules.
``RSC4xx``
    Protocol message-flow analysis (send/handle graph).
``RSC5xx``
    Bounded model checking of the live protocols.
``RSC6xx``
    Concurrency: static shared-state/atomicity rules (601-605) and the
    schedule-perturbation sanitizer (610/611); RSC600 covers analysis
    limitations and contract/baseline hygiene.
``RSC7xx``
    Ownership & lock discipline: the ownership/guard contract grammar
    (700), unguarded shared writes (701), lock-order cycles (702),
    contract/inference mismatches (703), and atomics-helper misuse
    (704) — the thread-readiness certification pass.

:data:`KNOWN_CODES` is the authoritative registry: every code any pass
may emit, with a one-line meaning. The JSON schema test asserts that
the set of codes in the source, this registry, and the documentation
agree, so a new diagnostic cannot ship undocumented; the companion
:mod:`repro.staticcheck.explain` registry carries the long-form
rationale and a minimal example per code (``repro check --explain``).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional

#: Every diagnostic code the analysis passes may emit.
KNOWN_CODES: Dict[str, str] = {
    # Pass 1 — network structure.
    "RSC101": "malformed balancer-level wiring (widths, ranges, duplicate wires)",
    "RSC102": "output order is not a permutation of the wires",
    "RSC103": "member graph is cyclic or has no consistent layer assignment",
    "RSC104": "an internal wire lacks exactly one producer and one consumer",
    "RSC105": "0-1-principle certification or quiescent step property failed",
    "RSC106": "depth does not match the closed form / Lemma 2.2 bound",
    "RSC107": "effective width below the Lemma 2.3 bound",
    "RSC108": "width exceeds the exhaustive certification limit (not certified)",
    # Pass 2 — cuts and transitions.
    "RSC201": "empty component set (a cut needs at least one member)",
    "RSC202": "a member path does not denote a node of the tree",
    "RSC203": "two members overlap (one is an ancestor of the other)",
    "RSC204": "a root-to-leaf path crosses no member (coverage hole)",
    "RSC205": "transition endpoints belong to different trees/widths",
    "RSC206": "transition is not token-conserving subtree-aligned splits/merges",
    # Pass 3 — codebase lint.
    "RSC300": "lint could not read or parse a file",
    "RSC301": "unseeded randomness (module-level random.* or Random())",
    "RSC302": "wall-clock read inside repro.sim / repro.runtime",
    "RSC303": "handler-context code bypasses the message bus",
    "RSC304": "mutable default argument",
    "RSC305": "timeout timer scheduled without keeping its cancellation handle",
    "RSC306": "eager string formatting at an observability record call",
    "RSC307": "pooled record (Token/Envelope) constructed outside its home module",
    "RSC308": "committed scenario spec file fails schema validation",
    # Pass 4 — protocol message flow.
    "RSC400": "flow analysis limitation (unreadable file, dynamic RPC name)",
    "RSC401": "RPC sent with no matching rpc_* handler",
    "RSC402": "rpc_* handler reachable from no send site or direct reference",
    "RSC403": "call() site has no on_timeout path",
    "RSC404": "_pending reply continuation discarded without rearming",
    "RSC405": "registered continuation mutates shared state with no guard",
    # Pass 5 — bounded model checking.
    "RSC500": "model-check explorer error or truncated schedule space",
    "RSC501": "ring connectivity violated after recovery",
    "RSC502": "ring connected but successors misordered",
    "RSC503": "successor graph splits into more than one ring",
    "RSC504": "issued token never assigned an output wire (crash-free run)",
    "RSC505": "quiescent output counts violate the step property",
    # Pass 6 — concurrency (static rules + schedule sanitizer).
    "RSC600": "concurrency-pass limitation, bare thread-safe marker, or stale baseline entry",
    "RSC601": "check-then-act: continuation acts on state tested before registration",
    "RSC602": "compound read-modify-write on shared state (not atomic under threads)",
    "RSC603": "module-level mutable state mutated outside a designated swap point",
    "RSC604": "mutable container escapes its owner (unlocked structure shared)",
    "RSC605": "continuation touches state in an epoch-bearing class without an epoch guard",
    "RSC610": "invariant broken under adversarial same-timestamp event reordering",
    "RSC611": "nondeterministic results under a fixed perturbation seed",
    # Pass 7 — ownership & lock discipline (thread-readiness).
    "RSC700": "ownership contract grammar/coverage error (bad domain, bad guard, dangling comment)",
    "RSC701": "write to a declared-shared attribute outside any atomics helper or guard",
    "RSC702": "lock-order cycle in the synchronization-object acquisition graph",
    "RSC703": "declared ownership domain contradicted by the inferred access pattern",
    "RSC704": "atomics-helper misuse (internals poked, container mutator, rebound outside init)",
}


class Severity(enum.Enum):
    """How bad a finding is; only errors affect exit status."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self):
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One finding of an analysis pass.

    ``source`` is a file path (lint) or a network/cut label
    (structure/cuts); ``line`` is set only for lint findings;
    ``component`` optionally narrows a structural finding to one
    component or wire.
    """

    code: str
    message: str
    source: str = ""
    line: Optional[int] = None
    component: Optional[str] = None
    severity: Severity = Severity.ERROR

    @property
    def location(self) -> str:
        """``file:line`` or ``label[component]`` — whatever is known."""
        where = self.source or "<unknown>"
        if self.line is not None:
            where = "%s:%d" % (where, self.line)
        if self.component is not None:
            where = "%s[%s]" % (where, self.component)
        return where

    def format(self) -> str:
        return "%s: %s %s: %s" % (self.location, self.severity, self.code, self.message)

    def to_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "message": self.message,
            "source": self.source,
            "line": self.line,
            "component": self.component,
            "severity": self.severity.value,
        }


class Report:
    """An ordered collection of diagnostics from one or more passes."""

    def __init__(self, diagnostics: Iterable[Diagnostic] = ()):
        self.diagnostics: List[Diagnostic] = list(diagnostics)

    # ------------------------------------------------------------------
    # collection
    # ------------------------------------------------------------------
    def add(
        self,
        code: str,
        message: str,
        source: str = "",
        line: Optional[int] = None,
        component: Optional[str] = None,
        severity: Severity = Severity.ERROR,
    ) -> Diagnostic:
        diagnostic = Diagnostic(code, message, source, line, component, severity)
        self.diagnostics.append(diagnostic)
        return diagnostic

    def extend(self, other: "Report") -> "Report":
        self.diagnostics.extend(other.diagnostics)
        return self

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __bool__(self) -> bool:
        """Truthy when the report is *clean* (no errors) — so code can
        write ``if report: proceed()``."""
        return self.ok

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def ok(self) -> bool:
        """Whether the checked subject passed (no error diagnostics)."""
        return not self.errors

    def codes(self) -> List[str]:
        return [d.code for d in self.diagnostics]

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def format(self) -> str:
        return "\n".join(d.format() for d in self.diagnostics)

    def to_json(self, **kwargs) -> str:
        payload = {
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.diagnostics) - len(self.errors),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }
        return json.dumps(payload, **kwargs)
