"""Static invariant analysis for networks, cuts and the codebase itself.

The package implements three analysis passes, each usable as a library
and all runnable via ``repro check`` (see :mod:`repro.staticcheck.runner`):

* :mod:`repro.staticcheck.structure` — network structure analysis
  (codes ``RSC1xx``): well-formedness of balancer-level wirings and of
  cut networks (one producer and one consumer per internal wire, an
  acyclic balancer/member graph with a consistent layer assignment,
  fan-in/fan-out matching the component specs), step-property
  certification for small widths via the 0-1 principle, and the
  Lemma 2.2/2.3 width/depth bounds.
* :mod:`repro.staticcheck.cuts` — cut validity analysis (codes
  ``RSC2xx``): whether a component set is a valid cut of ``T_w``
  (Theorem 2.1), whether a cut-to-cut transition decomposes into
  token-conserving splits and merges, and the raising validators
  ``validate_split`` / ``validate_merge`` used by
  :mod:`repro.runtime.reconfig` to reject bad reconfigurations up
  front.
* :mod:`repro.staticcheck.lint` — project-specific AST lint (codes
  ``RSC3xx``): no unseeded ``random.*`` calls outside injected RNGs, no
  wall-clock reads inside ``repro.sim`` / ``repro.runtime``, no direct
  cross-node state access in message handlers, no mutable default
  arguments.

All passes report :class:`~repro.staticcheck.diagnostics.Diagnostic`
values collected in a :class:`~repro.staticcheck.diagnostics.Report`,
with stable error codes and a machine-readable JSON form.
"""

from repro.staticcheck.diagnostics import Diagnostic, Report, Severity
from repro.staticcheck.structure import (
    certify_01_principle,
    check_balancing_network,
    check_counting_tree,
    check_cut_network,
    check_wiring,
)
from repro.staticcheck.cuts import (
    check_cut,
    check_transition,
    validate_merge,
    validate_split,
)
from repro.staticcheck.lint import lint_paths, lint_source
from repro.staticcheck.runner import run_check

__all__ = [
    "Diagnostic",
    "Report",
    "Severity",
    "certify_01_principle",
    "check_balancing_network",
    "check_counting_tree",
    "check_cut_network",
    "check_wiring",
    "check_cut",
    "check_transition",
    "validate_merge",
    "validate_split",
    "lint_paths",
    "lint_source",
    "run_check",
]
