"""Pass 7 static rules: ownership domains and lock discipline (RSC70x).

The pass builds on the Pass-6 access maps
(:mod:`repro.staticcheck.concurrency.accessmap`): for every class it
collects the attribute *declarations* (init-method ``self.x = ...``
statements and class-body dataclass fields), pairs them with the
ownership contract comments of :mod:`.contract`, and checks:

``RSC700``
    Contract grammar and coverage: an unknown ownership domain, a
    ``guarded-by`` naming no attribute the class declares, or a
    contract comment that anchors to no attribute declaration.
``RSC701``
    A write to a declared-``shared`` plain attribute that is neither an
    atomics-helper operation nor inside the declared guard's
    ``with self.<guard>:`` block.
``RSC702``
    A cycle in the synchronisation-object acquisition graph — lexically
    nested ``with self.<lock>:`` statements plus one level of
    ``self.method()`` call propagation, per class. Two methods that
    acquire the same two locks in opposite orders deadlock under
    threads; no schedule makes that safe.
``RSC703``
    A declared domain the inferred access pattern contradicts:
    ``sim-loop-confined`` with a mutation outside handler-reachable
    code, or ``single-writer`` with two or more distinct writer
    methods. ``shared`` is the weakest claim and cannot be contradicted.
``RSC704``
    Misuse of a :mod:`repro.core.atomics` helper: poking its internals
    (``self.x._value = n``), calling a container mutator on it
    (``self.x.update(...)``), subscript-assigning through it, or
    rebinding the helper attribute outside init.

Everything is AST-only (analyzed code is never imported), findings
carry the same line-free ``CODE module:Class.method:attr`` keys as
Pass 6, and — like the ``thread-safe`` marker — the contract comments
are verified rather than trusted.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from repro.staticcheck.concurrency.accessmap import (
    MUTATORS,
    ClassAccessMap,
    MethodAccess,
    build_module_map,
    is_init_method,
    self_attr,
)
from repro.staticcheck.concurrency.contract import finding_key
from repro.staticcheck.concurrency.rules import (
    DEFAULT_CONCURRENCY_PACKAGES,
    _iter_python_files,
    _module_name,
    default_concurrency_paths,
)
from repro.staticcheck.diagnostics import Report
from repro.staticcheck.ownership.contract import (
    DOMAINS,
    OwnershipAnnotations,
)

#: Pass 7 analyzes the same surface as Pass 6: the packages the threads
#: backend will run.
DEFAULT_OWNERSHIP_PACKAGES: Tuple[str, ...] = DEFAULT_CONCURRENCY_PACKAGES

#: The :mod:`repro.core.atomics` helper types, by constructor name.
ATOMIC_HELPER_TYPES = frozenset(
    {
        "AtomicCounter",
        "LockedAtomicCounter",
        "PerWireCounters",
        "LockedPerWireCounters",
        "ToggleBit",
        "LockedToggleBit",
        "ThreadSafeToggle",
        "TokenLedger",
        "LockedTokenLedger",
        "GuardedMap",
        "LockedGuardedMap",
    }
)

#: Helper methods that mutate the helper's state. Calls to these are
#: *sanctioned* mutations (each is one atomic operation under the
#: locked flavor), but they still count as writes for domain inference.
ATOMIC_MUTATING_METHODS = frozenset(
    {
        "increment",
        "fetch_increment",
        "decrement",
        "set",
        "flip",
        "post",
        "fetch_post",
        "settle",
        "clear_balance",
        "put",
        "take",
        "ensure",
        "reset",
    }
)

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def default_ownership_paths() -> List[str]:
    """Directory paths of the default packages in this install."""
    return default_concurrency_paths()


# ----------------------------------------------------------------------
# declarations and contracts
# ----------------------------------------------------------------------
@dataclass
class AttrDeclaration:
    """One attribute declaration site inside a class."""

    attr: str
    #: Line of the declaring statement (the anchor for annotations).
    line: int
    #: Whether the initialiser constructs an atomics helper.
    helper: bool


@dataclass
class AttrContract:
    """The declared ownership contract of one attribute."""

    attr: str
    line: int
    helper: bool
    domain: Optional[str] = None
    guard: Optional[str] = None


def _is_helper_call(value: ast.expr) -> bool:
    """Whether ``value`` constructs a :mod:`repro.core.atomics` helper.

    Recognises direct calls (``AtomicCounter()``), module-qualified
    calls (``atomics.TokenLedger()``), subscripted generics
    (``TokenLedger[str]()``) and dataclass fields
    (``field(default_factory=AtomicCounter)``).
    """
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    if isinstance(func, ast.Subscript):
        func = func.value
    name: Optional[str] = None
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    if name in ATOMIC_HELPER_TYPES:
        return True
    if name == "field":
        for keyword in value.keywords:
            if keyword.arg == "default_factory":
                factory = keyword.value
                factory_name = None
                if isinstance(factory, ast.Name):
                    factory_name = factory.id
                elif isinstance(factory, ast.Attribute):
                    factory_name = factory.attr
                if factory_name in ATOMIC_HELPER_TYPES:
                    return True
    return False


def _declarations(class_map: ClassAccessMap) -> Dict[str, AttrDeclaration]:
    """Attribute declaration sites: init-method ``self.x = ...``
    statements plus class-body (dataclass-style) fields."""
    sites: Dict[str, AttrDeclaration] = {}

    def record(attr: str, line: int, value: Optional[ast.expr]) -> None:
        helper = value is not None and _is_helper_call(value)
        existing = sites.get(attr)
        if existing is None:
            sites[attr] = AttrDeclaration(attr, line, helper)
        else:
            existing.helper = existing.helper or helper

    for item in class_map.node.body:
        if isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name):
                    record(target.id, item.lineno, item.value)
        elif isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
            record(item.target.id, item.lineno, item.value)
        elif isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if not is_init_method(item.name):
                continue
            for sub in ast.walk(item):
                if isinstance(sub, ast.Assign):
                    for target in sub.targets:
                        attr = self_attr(target)
                        if attr is not None:
                            record(attr, sub.lineno, sub.value)
                elif isinstance(sub, ast.AnnAssign):
                    attr = self_attr(sub.target)
                    if attr is not None:
                        record(attr, sub.lineno, sub.value)
    return sites


def _collect_contracts(
    class_map: ClassAccessMap,
    declarations: Dict[str, AttrDeclaration],
    annotations: OwnershipAnnotations,
    module: str,
    report: Report,
    consumed: Set[int],
) -> Dict[str, AttrContract]:
    """Pair declarations with their contract comments; RSC700 for
    grammar errors (unknown domain, guard naming no attribute)."""
    contracts: Dict[str, AttrContract] = {}
    for declaration in sorted(declarations.values(), key=lambda d: d.line):
        anchored = annotations.at(declaration.line)
        if not anchored:
            continue
        contract = AttrContract(
            declaration.attr, declaration.line, declaration.helper
        )
        for annotation in anchored:
            consumed.add(annotation.line)
            if annotation.kind == "owned-by":
                if annotation.value not in DOMAINS:
                    report.add(
                        "RSC700",
                        "unknown ownership domain %r; the grammar is "
                        "'# repro: owned-by: <domain>' with domain one of %s"
                        % (annotation.value, ", ".join(DOMAINS)),
                        class_map.file,
                        line=annotation.line,
                        component=finding_key(
                            "RSC700", module, class_map.name, declaration.attr
                        ),
                    )
                else:
                    contract.domain = annotation.value
            else:  # guarded-by
                guard = annotation.value
                if not guard.isidentifier() or guard not in declarations:
                    report.add(
                        "RSC700",
                        "guarded-by names %r, which is not an attribute this "
                        "class declares; the guard must be a sync object "
                        "initialised by the class (e.g. a threading.Lock)"
                        % guard,
                        class_map.file,
                        line=annotation.line,
                        component=finding_key(
                            "RSC700", module, class_map.name, declaration.attr
                        ),
                    )
                else:
                    contract.guard = guard
        if contract.domain is not None or contract.guard is not None:
            contracts[declaration.attr] = contract
    return contracts


# ----------------------------------------------------------------------
# lock acquisitions and guarded ranges
# ----------------------------------------------------------------------
@dataclass
class LockAcquisition:
    """One ``with self.<lock>:`` statement inside a method."""

    lock: str
    node: Union[ast.With, ast.AsyncWith]
    line: int
    end_line: int


def _lock_acquisitions(method_node: _FunctionNode) -> List[LockAcquisition]:
    acquisitions: List[LockAcquisition] = []
    for node in ast.walk(method_node):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        for item in node.items:
            lock = self_attr(item.context_expr)
            if lock is not None:
                acquisitions.append(
                    LockAcquisition(
                        lock, node, node.lineno, node.end_lineno or node.lineno
                    )
                )
    return acquisitions


def _guarded(acquisitions: List[LockAcquisition], guard: str, line: int) -> bool:
    """Whether ``line`` falls inside a ``with self.<guard>:`` block."""
    return any(
        acq.lock == guard and acq.line <= line <= acq.end_line
        for acq in acquisitions
    )


# ----------------------------------------------------------------------
# mutation inventory (accessmap writes + sanctioned helper calls)
# ----------------------------------------------------------------------
def _helper_call_lines(method_node: _FunctionNode) -> Dict[str, List[int]]:
    """Lines where a sanctioned atomics-helper mutator is called on a
    ``self`` attribute (``self.x.increment()``, ``self.x.post(k)``…)."""
    lines: Dict[str, List[int]] = {}
    for node in ast.walk(method_node):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in ATOMIC_MUTATING_METHODS
        ):
            attr = self_attr(func.value)
            if attr is not None:
                lines.setdefault(attr, []).append(node.lineno)
    return lines


def _plain_write_lines(method: MethodAccess, attr: str) -> List[int]:
    """Accessmap write/compound lines of ``attr`` in ``method``."""
    return sorted(
        set(method.writes.get(attr, [])) | set(method.compound.get(attr, []))
    )


def _mutators(
    class_map: ClassAccessMap, attr: str
) -> Dict[str, List[int]]:
    """Non-init methods that mutate ``attr``, with the lines: plain
    writes and compound updates from the access map, plus sanctioned
    helper-mutator calls (which *are* writes for inference purposes)."""
    writers: Dict[str, List[int]] = {}
    for method in class_map.methods.values():
        if is_init_method(method.name):
            continue
        if not isinstance(
            method.node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):  # pragma: no cover - methods are always defs
            continue
        lines = _plain_write_lines(method, attr)
        lines.extend(_helper_call_lines(method.node).get(attr, []))
        if lines:
            writers[method.name] = sorted(set(lines))
    return writers


def infer_domain(class_map: ClassAccessMap, attr: str) -> str:
    """The ownership domain the access pattern supports.

    ``sim-loop-confined`` when every mutating method is reachable from
    handler context; ``single-writer`` when at most one method mutates
    the attribute; ``shared`` otherwise. Init methods never count —
    the object is unpublished while they run.
    """
    writers = _mutators(class_map, attr)
    if writers:
        reachable = class_map.handler_reachable()
        if all(name in reachable for name in writers):
            return "sim-loop-confined"
    if len(writers) <= 1:
        return "single-writer"
    return "shared"


# ----------------------------------------------------------------------
# per-rule checkers
# ----------------------------------------------------------------------
def _check_rsc701(
    class_map: ClassAccessMap,
    contracts: Dict[str, AttrContract],
    module: str,
    report: Report,
) -> None:
    """Unguarded write to a declared-shared plain attribute.

    Helper-typed attributes are exempt: their sanctioned operations are
    invisible to the access map, and everything else about them is
    RSC704's business.
    """
    for attr, contract in sorted(contracts.items()):
        if contract.helper:
            continue
        if contract.domain != "shared" and contract.guard is None:
            continue
        for name in sorted(class_map.methods):
            method = class_map.methods[name]
            if is_init_method(name):
                continue
            acquisitions = (
                _lock_acquisitions(method.node)
                if isinstance(method.node, (ast.FunctionDef, ast.AsyncFunctionDef))
                else []
            )
            for line in _plain_write_lines(method, attr):
                if contract.guard is not None and _guarded(
                    acquisitions, contract.guard, line
                ):
                    continue
                expected = (
                    "'with self.%s:'" % contract.guard
                    if contract.guard is not None
                    else "an atomics helper or a declared guard"
                )
                report.add(
                    "RSC701",
                    "write to '%s' (declared %s) outside %s — under threads "
                    "this mutation races with every other accessor"
                    % (
                        attr,
                        "owned-by: shared"
                        if contract.domain == "shared"
                        else "guarded-by: %s" % contract.guard,
                        expected,
                    ),
                    class_map.file,
                    line=line,
                    component=finding_key(
                        "RSC701",
                        module,
                        "%s.%s" % (class_map.name, name),
                        attr,
                    ),
                )


def _acquisition_edges(class_map: ClassAccessMap) -> Dict[str, Set[str]]:
    """The class's lock-acquisition graph: ``A -> B`` when ``with
    self.A:`` lexically contains ``with self.B:``, or contains a
    ``self.m()`` call and method ``m`` acquires ``B`` (one level)."""
    method_locks: Dict[str, Set[str]] = {}
    for name, method in class_map.methods.items():
        if isinstance(method.node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            method_locks[name] = {
                acq.lock for acq in _lock_acquisitions(method.node)
            }
    edges: Dict[str, Set[str]] = {}
    for name, method in class_map.methods.items():
        if not isinstance(method.node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for acq in _lock_acquisitions(method.node):
            held = acq.lock
            for sub in ast.walk(acq.node):
                if sub is acq.node:
                    continue
                if isinstance(sub, (ast.With, ast.AsyncWith)):
                    for item in sub.items:
                        inner = self_attr(item.context_expr)
                        if inner is not None and inner != held:
                            edges.setdefault(held, set()).add(inner)
                elif isinstance(sub, ast.Call):
                    func = sub.func
                    if (
                        isinstance(func, ast.Attribute)
                        and isinstance(func.value, ast.Name)
                        and func.value.id == "self"
                    ):
                        for inner in method_locks.get(func.attr, ()):
                            if inner != held:
                                edges.setdefault(held, set()).add(inner)
    return edges


def _find_cycles(edges: Dict[str, Set[str]]) -> List[List[str]]:
    """Distinct simple cycles in the acquisition graph (deduplicated by
    membership, reported from their lexicographically first lock)."""
    cycles: List[List[str]] = []
    seen: Set[FrozenSet[str]] = set()

    def dfs(node: str, path: List[str], on_path: Set[str]) -> None:
        for successor in sorted(edges.get(node, ())):
            if successor in on_path:
                start = path.index(successor)
                cycle = path[start:]
                key = frozenset(cycle)
                if key not in seen:
                    seen.add(key)
                    pivot = cycle.index(min(cycle))
                    cycles.append(cycle[pivot:] + cycle[:pivot])
                continue
            path.append(successor)
            on_path.add(successor)
            dfs(successor, path, on_path)
            on_path.discard(successor)
            path.pop()

    for root in sorted(edges):
        dfs(root, [root], {root})
    return cycles


def _check_rsc702(
    class_map: ClassAccessMap, module: str, report: Report
) -> None:
    for cycle in _find_cycles(_acquisition_edges(class_map)):
        order = " -> ".join(cycle + [cycle[0]])
        report.add(
            "RSC702",
            "lock-order cycle %s: two code paths acquire these sync objects "
            "in opposite orders, which deadlocks under threads" % order,
            class_map.file,
            line=class_map.line,
            component=finding_key(
                "RSC702", module, class_map.name, "->".join(cycle)
            ),
        )


def _check_rsc703(
    class_map: ClassAccessMap,
    contracts: Dict[str, AttrContract],
    module: str,
    report: Report,
) -> None:
    reachable = class_map.handler_reachable()
    for attr, contract in sorted(contracts.items()):
        if contract.domain is None or contract.domain == "shared":
            continue  # `shared` is the weakest claim; nothing refutes it
        writers = _mutators(class_map, attr)
        if contract.domain == "sim-loop-confined":
            outside = sorted(name for name in writers if name not in reachable)
            if outside:
                report.add(
                    "RSC703",
                    "declared owned-by: sim-loop-confined, but '%s' is "
                    "mutated outside handler-reachable code by %s"
                    % (attr, ", ".join(outside)),
                    class_map.file,
                    line=contract.line,
                    component=finding_key(
                        "RSC703", module, class_map.name, attr
                    ),
                )
        elif contract.domain == "single-writer" and len(writers) >= 2:
            report.add(
                "RSC703",
                "declared owned-by: single-writer, but '%s' is mutated by "
                "%d methods (%s)"
                % (attr, len(writers), ", ".join(sorted(writers))),
                class_map.file,
                line=contract.line,
                component=finding_key("RSC703", module, class_map.name, attr),
            )


def _root_self_attr(node: ast.expr) -> Optional[str]:
    """The ``X`` of the ``self.X`` at the base of an attribute or
    subscript chain (``self.X.y``, ``self.X[k].z`` …), else None."""
    current: ast.expr = node
    while isinstance(current, (ast.Attribute, ast.Subscript)):
        direct = self_attr(current)
        if direct is not None:
            return direct
        current = current.value
    return None


def _check_rsc704(
    class_map: ClassAccessMap,
    declarations: Dict[str, AttrDeclaration],
    module: str,
    report: Report,
) -> None:
    helpers = {
        attr for attr, decl in declarations.items() if decl.helper
    }
    if not helpers:
        return
    for name in sorted(class_map.methods):
        method = class_map.methods[name]
        if not isinstance(method.node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        qualifier = "%s.%s" % (class_map.name, name)
        for node in ast.walk(method.node):
            if isinstance(node, ast.Attribute) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                if self_attr(node) is not None:
                    continue  # plain rebinding, handled below
                base = _root_self_attr(node)
                if base in helpers:
                    report.add(
                        "RSC704",
                        "mutation of atomics-helper internals "
                        "('self.%s.%s'): helpers are opaque — use their "
                        "named operations" % (base, node.attr),
                        class_map.file,
                        line=node.lineno,
                        component=finding_key("RSC704", module, qualifier, base),
                    )
            elif isinstance(node, ast.Subscript) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                base = _root_self_attr(node)
                if base in helpers:
                    report.add(
                        "RSC704",
                        "subscript assignment through atomics helper "
                        "'self.%s': helpers deliberately have no __setitem__ "
                        "— use put()/post()/increment()" % base,
                        class_map.file,
                        line=node.lineno,
                        component=finding_key("RSC704", module, qualifier, base),
                    )
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) and func.attr in MUTATORS:
                    base = _root_self_attr(func.value)
                    if base is None:
                        base = self_attr(func.value)
                    if base in helpers:
                        report.add(
                            "RSC704",
                            "container mutator .%s() on atomics helper "
                            "'self.%s': helpers expose only their named "
                            "atomic operations" % (func.attr, base),
                            class_map.file,
                            line=node.lineno,
                            component=finding_key(
                                "RSC704", module, qualifier, base
                            ),
                        )
            elif isinstance(node, ast.Assign) and not is_init_method(name):
                for target in node.targets:
                    attr = self_attr(target)
                    if attr in helpers:
                        report.add(
                            "RSC704",
                            "rebinding atomics helper 'self.%s' outside init: "
                            "readers may hold the old object — mutate through "
                            "its operations or reset() it instead" % attr,
                            class_map.file,
                            line=node.lineno,
                            component=finding_key(
                                "RSC704", module, qualifier, attr
                            ),
                        )


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def check_source(
    source: str,
    filename: str = "<string>",
    module: Optional[str] = None,
    report: Optional[Report] = None,
) -> Report:
    """Run the Pass 7 ownership rules over one source buffer."""
    if report is None:
        report = Report()
    if module is None:
        module = _module_name(filename)
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        report.add(
            "RSC700",
            "syntax error: %s" % exc.msg,
            filename,
            line=exc.lineno or 1,
        )
        return report
    annotations = OwnershipAnnotations(source)
    module_map = build_module_map(tree, filename, module)
    consumed: Set[int] = set()
    for class_map in module_map.classes:
        declarations = _declarations(class_map)
        contracts = _collect_contracts(
            class_map, declarations, annotations, module, report, consumed
        )
        _check_rsc701(class_map, contracts, module, report)
        _check_rsc702(class_map, module, report)
        _check_rsc703(class_map, contracts, module, report)
        _check_rsc704(class_map, declarations, module, report)
    for annotation in annotations:
        if annotation.line not in consumed:
            report.add(
                "RSC700",
                "dangling ownership contract comment ('%s: %s') anchors to "
                "no attribute declaration; place it on the 'self.x = ...' "
                "line (or the line directly above it)"
                % (annotation.kind, annotation.value),
                filename,
                line=annotation.line,
                component=finding_key("RSC700", module, "<module>", "-"),
            )
    return report


def check_ownership(paths: Optional[Sequence[str]] = None) -> Report:
    """Run Pass 7 over ``paths`` (default: the four runtime packages)."""
    report = Report()
    if paths is None:
        paths = default_ownership_paths()
    # Re-key path errors under this pass's limitation code.
    path_errors = Report()
    files = _iter_python_files(paths, path_errors)
    for diagnostic in path_errors.diagnostics:
        report.add(
            "RSC700",
            diagnostic.message,
            diagnostic.source,
            line=diagnostic.line,
            severity=diagnostic.severity,
        )
    for filename in files:
        try:
            with open(filename, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            report.add("RSC700", "cannot read file: %s" % exc, filename)
            continue
        check_source(source, filename, report=report)
    return report
