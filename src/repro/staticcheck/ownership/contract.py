"""The ownership contract grammar: ``owned-by`` and ``guarded-by``.

Pass 7 reads two contract-comment forms, anchored to an attribute
*declaration* (the ``self.x = ...`` statement in an init method, or a
class-body field of a dataclass) — either trailing on the declaration
line or alone on the line directly above it:

``# repro: owned-by: <domain>``
    Declares who may mutate the attribute. The three domains:

    ``sim-loop-confined``
        Only handler-context code (message delivery and the methods it
        reaches) mutates the attribute; the event loop serialises it.
    ``single-writer``
        Exactly one method mutates the attribute; everyone else reads.
    ``shared``
        Mutated from several places — every mutation must go through an
        atomics helper (:mod:`repro.core.atomics`) or a declared guard.

``# repro: guarded-by: <sync-object>``
    Names the attribute holding the synchronisation object (e.g. a
    ``threading.Lock``) that must be held — ``with self.<sync-object>:``
    — around every mutation of the annotated attribute.

Like the Pass-6 ``thread-safe`` marker, these are **verified, not
trusted**: an unknown domain, a guard naming no attribute of the class,
or a comment anchoring to no declaration is RSC700; the declared domain
is cross-checked against the inferred access pattern (RSC703); and
declared-shared plain attributes with unguarded writes are RSC701.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

#: The two contract-comment markers, as they appear in source.
OWNED_BY_MARKER = "# repro: owned-by:"
GUARDED_BY_MARKER = "# repro: guarded-by:"

#: The closed set of ownership domains.
DOMAINS: Tuple[str, ...] = ("sim-loop-confined", "single-writer", "shared")


@dataclass(frozen=True)
class OwnershipAnnotation:
    """One parsed contract comment."""

    line: int
    #: ``"owned-by"`` or ``"guarded-by"``.
    kind: str
    #: The domain name or sync-object attribute, verbatim (unvalidated —
    #: the rules validate so they can report precise findings).
    value: str
    #: Whether the comment stands alone on its line (anchors to the
    #: statement *below*) rather than trailing code (anchors to its own
    #: line). The distinction keeps one declaration's trailing comment
    #: from leaking onto the next line's declaration.
    standalone: bool = False


class OwnershipAnnotations:
    """All ownership contract comments of one source buffer."""

    def __init__(self, source: str):
        #: line number -> annotations found on that physical line.
        self.by_line: Dict[int, List[OwnershipAnnotation]] = {}
        for index, text in enumerate(source.splitlines(), start=1):
            standalone = text.strip().startswith("#")
            for kind, marker in (
                ("owned-by", OWNED_BY_MARKER),
                ("guarded-by", GUARDED_BY_MARKER),
            ):
                position = text.find(marker)
                if position < 0:
                    continue
                value = text[position + len(marker):].strip()
                self.by_line.setdefault(index, []).append(
                    OwnershipAnnotation(index, kind, value, standalone)
                )

    def at(self, line: int) -> List[OwnershipAnnotation]:
        """Annotations anchored to a statement starting at ``line`` —
        trailing on the line itself, or standalone on the line above."""
        found: List[OwnershipAnnotation] = list(self.by_line.get(line, []))
        found.extend(
            annotation
            for annotation in self.by_line.get(line - 1, [])
            if annotation.standalone
        )
        return found

    def __iter__(self) -> Iterator[OwnershipAnnotation]:
        for line in sorted(self.by_line):
            yield from self.by_line[line]

    def __bool__(self) -> bool:
        return bool(self.by_line)
