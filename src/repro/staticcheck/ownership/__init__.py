"""Pass 7 — ownership & lock discipline: thread-readiness certified.

Pass 6 found the shared state and drained its triage baseline; Pass 7
certifies the result. It pairs every attribute declaration in the
runtime packages with its ownership contract comment
(``# repro: owned-by: <domain>`` / ``# repro: guarded-by: <sync>``,
see :mod:`.contract`), verifies the contracts against the inferred
access patterns instead of trusting them, builds a per-class
synchronisation-object acquisition graph with lock-order cycle
detection, and polices the :mod:`repro.core.atomics` helpers' opacity
(:mod:`.rules`, codes RSC700-RSC704).

Together with a clean Pass 6 (empty baseline, hard-failing RSC6xx) and
a green schedule-perturbation sanitizer, a clean Pass 7 is the
``repro check --thread-ready`` composite gate — the machine-checked
precondition of the ROADMAP's shared-memory threads backend.
"""

from repro.staticcheck.ownership.contract import (
    DOMAINS,
    GUARDED_BY_MARKER,
    OWNED_BY_MARKER,
    OwnershipAnnotation,
    OwnershipAnnotations,
)
from repro.staticcheck.ownership.rules import (
    ATOMIC_HELPER_TYPES,
    ATOMIC_MUTATING_METHODS,
    DEFAULT_OWNERSHIP_PACKAGES,
    check_ownership,
    check_source,
    default_ownership_paths,
    infer_domain,
)

__all__ = [
    "ATOMIC_HELPER_TYPES",
    "ATOMIC_MUTATING_METHODS",
    "DEFAULT_OWNERSHIP_PACKAGES",
    "DOMAINS",
    "GUARDED_BY_MARKER",
    "OWNED_BY_MARKER",
    "OwnershipAnnotation",
    "OwnershipAnnotations",
    "check_ownership",
    "check_source",
    "default_ownership_paths",
    "infer_domain",
]
