"""Pass 2 — cut validity and transition analysis (codes ``RSC2xx``).

Definition 2.1 calls a component set a *cut* of ``T_w`` when it is an
antichain crossed exactly once by every root-to-leaf path, and
Theorem 2.1 guarantees every cut counts. This pass decides, without
routing a single token:

* whether a proposed component set is a valid cut
  (:func:`check_cut`), reporting every violation — bad paths, ancestor
  overlaps, coverage holes — rather than just the first;
* whether a cut-to-cut transition preserves the token-conservation
  precondition (:func:`check_transition`): both endpoints must be valid
  cuts of the *same* tree, and the changed regions must decompose into
  subtree-aligned splits and merges — the only reconfiguration steps
  with an exact state transfer (Section 2.2);
* whether a single split or merge may be applied to the live component
  set right now (:func:`check_split` / :func:`check_merge`), which is
  what :class:`repro.runtime.reconfig.Reconfigurator` consults before
  touching any state. The raising wrappers :func:`validate_split` /
  :func:`validate_merge` turn failures into
  :class:`repro.errors.InvalidTransitionError`.

Error codes
-----------
``RSC201``
    Empty component set (a cut needs at least one member).
``RSC202``
    A member path does not denote a node of the tree.
``RSC203``
    Two members overlap (one is an ancestor of the other).
``RSC204``
    A root-to-leaf path crosses no member (coverage hole).
``RSC205``
    Transition endpoints belong to different trees/widths.
``RSC206``
    Transition (or split/merge) violates the token-conservation
    precondition: the change is not expressible as subtree-aligned
    splits and merges of live members.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.errors import InvalidTransitionError, StructureError
from repro.staticcheck.diagnostics import Report

Path = Tuple[int, ...]


def _normalise(paths: Iterable[Path]) -> List[Path]:
    return sorted({tuple(p) for p in paths})


def check_cut(tree, paths: Iterable[Path], source: Optional[str] = None) -> Report:
    """Whether ``paths`` is a valid cut of ``tree`` (Definition 2.1).

    Works for the bitonic :class:`~repro.core.decomposition
    .DecompositionTree` and any generic :mod:`repro.ext` tree.
    """
    if source is None:
        source = "cut(w=%d)" % tree.width
    report = Report()
    members = _normalise(paths)
    if not members:
        report.add("RSC201", "a cut must have at least one member", source)
        return report
    valid: List[Path] = []
    for path in members:
        try:
            tree.node(path)
        except StructureError as exc:
            report.add(
                "RSC202",
                "member %r is not a component of T_%d: %s" % (path, tree.width, exc),
                source,
            )
        else:
            valid.append(path)
    member_set = frozenset(valid)
    for first, second in zip(valid, valid[1:]):
        if second[: len(first)] == first:
            report.add(
                "RSC203",
                "members overlap: %r is an ancestor of %r" % (first, second),
                source,
            )
    if not report.ok:
        return report
    prefixes = {path[:end] for path in member_set for end in range(len(path) + 1)}
    stack = [tree.root]
    while stack:
        spec = stack.pop()
        if spec.path in member_set:
            continue
        if spec.path not in prefixes or spec.is_leaf:
            report.add(
                "RSC204",
                "root-to-leaf path through %s crosses no member" % (spec,),
                source,
                component=str(spec),
            )
            continue
        stack.extend(spec.children())
    return report


def is_valid_cut(tree, paths: Iterable[Path]) -> bool:
    """Convenience boolean form of :func:`check_cut`."""
    return check_cut(tree, paths).ok


# ----------------------------------------------------------------------
# transitions
# ----------------------------------------------------------------------
def _change_regions(old: FrozenSet[Path], new: FrozenSet[Path]) -> Dict[Path, str]:
    """Map each maximal changed subtree root to ``"split"``/``"merge"``.

    For two valid cuts the symmetric difference partitions into maximal
    regions: at region root ``r`` either the old cut has the single
    member ``r`` refined by the new cut (a split cascade) or vice versa
    (a merge cascade). Region roots are the shallowest changed members.
    """
    removed = old - new
    added = new - old
    regions: Dict[Path, str] = {}
    for path in removed:
        # r is a region root when no shallower changed member covers it.
        if not any(path[: len(a)] == a for a in added if len(a) < len(path)):
            regions[path] = "split"
    for path in added:
        if not any(path[: len(r)] == r for r in removed if len(r) < len(path)):
            regions[path] = "merge"
    return regions


def check_transition(
    tree,
    old_paths: Iterable[Path],
    new_paths: Iterable[Path],
    source: Optional[str] = None,
) -> Report:
    """Whether ``old -> new`` is a token-conserving reconfiguration.

    Both endpoints must be valid cuts of ``tree``; the changed regions
    must then be subtree-aligned (each region is one old member refined
    by new members, or one new member coarsening old members), which
    makes the transition a composition of the exact split/merge state
    transfers of Section 2.2. The clean report carries no diagnostics;
    callers wanting the decomposition use :func:`transition_plan`.
    """
    if source is None:
        source = "transition(w=%d)" % tree.width
    report = Report()
    old_report = check_cut(tree, old_paths, source="%s:old" % source)
    new_report = check_cut(tree, new_paths, source="%s:new" % source)
    report.extend(old_report).extend(new_report)
    if not report.ok:
        return report
    old = frozenset(_normalise(old_paths))
    new = frozenset(_normalise(new_paths))
    for root, kind in sorted(_change_regions(old, new).items()):
        inner = new if kind == "split" else old
        region_members = [p for p in inner if p[: len(root)] == root]
        sub_report = check_cut(_Subtree(tree, root), region_members, source)
        if not sub_report.ok:
            report.add(
                "RSC206",
                "%s region at %r is not subtree-aligned: members %r do not "
                "partition the subtree" % (kind, root, sorted(region_members)),
                source,
            )
    return report


def transition_plan(tree, old_paths: Iterable[Path], new_paths: Iterable[Path]) -> Dict[Path, str]:
    """The split/merge decomposition of a (pre-validated) transition."""
    old = frozenset(_normalise(old_paths))
    new = frozenset(_normalise(new_paths))
    return _change_regions(old, new)


class _Subtree:
    """A view of ``tree`` re-rooted at ``root_path`` (duck-typed for
    :func:`check_cut`: only ``width``, ``root`` and ``node`` are used —
    member paths stay absolute)."""

    def __init__(self, tree, root_path: Path):
        self._tree = tree
        self.root = tree.node(root_path)
        self.width = self.root.width

    def node(self, path: Path):
        return self._tree.node(path)


# ----------------------------------------------------------------------
# single-operation validators for the runtime
# ----------------------------------------------------------------------
def check_split(tree, live_paths: Iterable[Path], path: Path, source: Optional[str] = None) -> Report:
    """Whether splitting live member ``path`` is valid right now.

    The local preconditions (member live, not a leaf) are always
    checked. The global check — the post-split component set is a valid
    cut — runs only when the *current* set already is one: after a
    crash the live set legitimately has holes until stabilisation
    refills them, and reconfiguration of the surviving members must not
    be vetoed for that.
    """
    if source is None:
        source = "split%r" % (tuple(path),)
    report = Report()
    live = frozenset(_normalise(live_paths))
    path = tuple(path)
    if path not in live:
        report.add("RSC206", "cannot split %r: not a live member" % (path,), source)
        return report
    try:
        spec = tree.node(path)
    except StructureError as exc:
        report.add("RSC202", "split target %r is not a component: %s" % (path, exc), source)
        return report
    if spec.is_leaf:
        report.add("RSC206", "cannot split the balancer %s" % (spec,), source)
        return report
    if is_valid_cut(tree, live):
        target = (live - {path}) | {child.path for child in spec.children()}
        report.extend(check_transition(tree, live, target, source))
    return report


def check_merge(tree, live_paths: Iterable[Path], path: Path, source: Optional[str] = None) -> Report:
    """Whether merging the live subtree below ``path`` is valid now.

    Token conservation requires the live descendants of ``path`` to
    partition its subtree exactly — a missing descendant means part of
    the component's past token stream is unaccounted for, and the merged
    counter state would be wrong.
    """
    if source is None:
        source = "merge%r" % (tuple(path),)
    report = Report()
    live = frozenset(_normalise(live_paths))
    path = tuple(path)
    try:
        tree.node(path)
    except StructureError as exc:
        report.add("RSC202", "merge target %r is not a component: %s" % (path, exc), source)
        return report
    if path in live:
        return report  # already merged; a no-op is trivially valid
    descendants = [p for p in live if p[: len(path)] == path and p != path]
    if not descendants:
        report.add(
            "RSC206",
            "cannot merge %r: no live members below it" % (path,),
            source,
        )
        return report
    sub_report = check_cut(_Subtree(tree, path), descendants, source)
    if not sub_report.ok:
        report.add(
            "RSC206",
            "cannot merge %r: live members %r do not partition its subtree "
            "(token conservation would break)" % (path, sorted(descendants)),
            source,
        )
        report.extend(sub_report)
    return report


def validate_split(tree, live_paths: Iterable[Path], path: Path) -> None:
    """Raise :class:`~repro.errors.InvalidTransitionError` if
    :func:`check_split` finds any violation."""
    report = check_split(tree, live_paths, path)
    if not report.ok:
        raise InvalidTransitionError(report)


def validate_merge(tree, live_paths: Iterable[Path], path: Path) -> None:
    """Raise :class:`~repro.errors.InvalidTransitionError` if
    :func:`check_merge` finds any violation."""
    report = check_merge(tree, live_paths, path)
    if not report.ok:
        raise InvalidTransitionError(report)
