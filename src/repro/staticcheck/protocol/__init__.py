"""Protocol-layer verification: message-flow analysis + model checking.

Two cooperating passes over the *control plane* — the asynchronous RPC
protocol in :mod:`repro.chord.protocol`, the bus in
:mod:`repro.sim.node`, and the reconfiguration machinery in
:mod:`repro.runtime`:

* :mod:`repro.staticcheck.protocol.flow` — **Pass 4**, static
  message-flow analysis (codes ``RSC4xx``): extracts the send/handle
  graph from the ASTs (every ``call()`` site, every ``bus.send`` kind,
  every ``rpc_*`` endpoint reached via ``handle_message`` dispatch) and
  reports sends without handlers, unreachable handlers, RPCs without a
  timeout path, droppable replies, and unguarded state mutation in
  asynchronous continuations.
* :mod:`repro.staticcheck.protocol.model` — **Pass 5**, bounded model
  checking (codes ``RSC5xx``): exhaustively explores small-scope
  schedules of {join, crash, stabilize, fix_one_finger,
  check_predecessor} over Chord rings of ``n <= 4`` nodes and of
  {inject, split, merge, add, remove} over the adaptive runtime,
  checking Zave-style ring invariants and our token/step invariants
  after quiescence.
"""

from repro.staticcheck.protocol.flow import (
    DEFAULT_PROTOCOL_MODULES,
    MessageFlowGraph,
    check_message_flow,
    collect_flow_graph,
    default_protocol_paths,
)
from repro.staticcheck.protocol.model import (
    ModelCheckConfig,
    model_check,
    model_check_chord,
    model_check_runtime,
)

__all__ = [
    "DEFAULT_PROTOCOL_MODULES",
    "MessageFlowGraph",
    "check_message_flow",
    "collect_flow_graph",
    "default_protocol_paths",
    "ModelCheckConfig",
    "model_check",
    "model_check_chord",
    "model_check_runtime",
]
