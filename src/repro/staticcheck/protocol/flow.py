"""Pass 4 — static message-flow analysis of the protocol layer (``RSC4xx``).

The data-plane passes certify what the network *is*; this pass checks
what the protocol *does*. It walks the ASTs of the protocol-layer
modules and extracts a send/handle graph:

* every RPC initiation — ``call(target, "method", args, on_reply,
  on_timeout=...)`` sites;
* every ``rpc_*`` endpoint reachable through ``handle_message``
  dispatch (the ``getattr(self, "rpc_" + method)`` convention);
* every raw ``bus.send(..., kind=..., on_undeliverable=...)`` site;
* every *registered continuation* — a closure handed to ``call()`` /
  the scheduler / ``on_*`` keywords, i.e. code that runs later, in
  message-delivery context, against possibly changed node state.

Rules
-----
``RSC401``
    An RPC is sent whose method has no matching ``rpc_*`` handler in
    any analyzed class: the dispatch ``getattr`` would raise at the
    receiver, killing the handler mid-message.
``RSC402``
    An ``rpc_*`` handler is reachable from no send site and no direct
    reference: dead protocol surface, usually a renamed or obsolete
    message.
``RSC403``
    A ``call()`` site passes no ``on_timeout`` path. Without one, a
    crashed callee silently swallows the RPC: no reply, no failure
    signal, no dead-peer eviction.
``RSC404``
    A ``_pending`` reply-continuation entry is popped (or deleted, or
    cleared) with the popped handler discarded: the reply that entry
    was armed for can no longer be delivered *or* time out — it is
    dropped on the floor.
``RSC405``
    A registered continuation mutates shared (public) node state with
    no staleness guard. Between registration and execution, arbitrary
    messages may have been processed; a continuation must re-validate
    (any ``if``/``while`` test reading ``self``) before writing.

``RSC400`` marks analysis limitations: unparseable files and dynamic
RPC method names the analysis cannot resolve (warning).

Everything is :mod:`ast` only — no imports of the analyzed modules, so
broken protocol code can still be diagnosed.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.staticcheck.diagnostics import Report, Severity

#: Modules whose ASTs make up the default protocol layer.
DEFAULT_PROTOCOL_MODULES: Tuple[str, ...] = (
    "repro.chord.protocol",
    "repro.sim.node",
    "repro.runtime.reconfig",
    "repro.runtime.stabilization",
    "repro.runtime.membership",
    "repro.runtime.tokens",
)

#: Method-name prefix the RPC dispatcher maps message methods onto.
RPC_PREFIX = "rpc_"

#: Keyword arguments that register an asynchronous continuation.
CALLBACK_KEYWORDS: Tuple[str, ...] = (
    "on_reply",
    "on_timeout",
    "on_undeliverable",
    "on_found",
)

#: Mutating container methods counted as state writes by RSC405.
_MUTATORS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popleft",
        "remove",
        "update",
    }
)

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]
_ClosureNode = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]


def default_protocol_paths() -> List[str]:
    """File paths of :data:`DEFAULT_PROTOCOL_MODULES` in this install."""
    import repro

    root = os.path.dirname(os.path.abspath(repro.__file__))
    paths = []
    for module in DEFAULT_PROTOCOL_MODULES:
        parts = module.split(".")[1:]
        paths.append(os.path.join(root, *parts) + ".py")
    return paths


@dataclass(frozen=True)
class SendSite:
    """One ``call(target, "method", ...)`` RPC initiation site."""

    method: str
    file: str
    line: int
    has_timeout: bool


@dataclass(frozen=True)
class HandlerSite:
    """One ``rpc_*`` endpoint reachable through ``handle_message``."""

    method: str  # without the rpc_ prefix
    cls: str
    file: str
    line: int


@dataclass(frozen=True)
class BusSendSite:
    """One raw ``bus.send(...)`` site with its literal kind, if any."""

    kind: Optional[str]
    file: str
    line: int
    has_undeliverable: bool


@dataclass
class MessageFlowGraph:
    """The extracted send/handle graph of the analyzed files."""

    sends: List[SendSite] = field(default_factory=list)
    handlers: List[HandlerSite] = field(default_factory=list)
    bus_sends: List[BusSendSite] = field(default_factory=list)
    #: RPC methods referenced by direct attribute access (local calls
    #: like ``self.rpc_notify(...)`` — reachable, but not via the bus).
    direct_refs: Set[str] = field(default_factory=set)

    @property
    def sent_methods(self) -> Set[str]:
        return {site.method for site in self.sends}

    @property
    def handled_methods(self) -> Set[str]:
        return {site.method for site in self.handlers}

    @property
    def kinds(self) -> Set[str]:
        return {site.kind for site in self.bus_sends if site.kind is not None}


def _iter_scope(node: ast.AST) -> Iterator[ast.AST]:
    """Walk ``node`` without descending into nested function scopes."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        yield child
        if not isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            stack.extend(ast.iter_child_nodes(child))


def _is_protocol_class(node: ast.ClassDef) -> bool:
    """A class that participates in message dispatch."""
    return any(
        isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        and item.name == "handle_message"
        for item in node.body
    )


def _attribute_chain_tail(func: ast.expr) -> Optional[str]:
    """The object a method is called on: ``a.b.send`` -> ``"b"``."""
    if not isinstance(func, ast.Attribute):
        return None
    base = func.value
    if isinstance(base, ast.Name):
        return base.id
    if isinstance(base, ast.Attribute):
        return base.attr
    return None


def _is_pending_attribute(node: ast.expr) -> bool:
    """Whether ``node`` is an attribute access ending in ``._pending``."""
    return isinstance(node, ast.Attribute) and node.attr == "_pending"


def _self_write_target(node: ast.expr) -> Optional[str]:
    """The public ``self`` attribute written by an assignment target."""
    if isinstance(node, ast.Attribute):
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            return None if node.attr.startswith("_") else node.attr
        return None
    if isinstance(node, ast.Subscript):
        return _self_write_target(node.value)
    if isinstance(node, (ast.Tuple, ast.List)):
        for element in node.elts:
            attr = _self_write_target(element)
            if attr is not None:
                return attr
    return None


def _closure_mutations(closure: _ClosureNode) -> List[Tuple[str, int]]:
    """Public ``self`` state writes in a closure body (own scope only)."""
    mutations: List[Tuple[str, int]] = []
    body: Sequence[ast.AST]
    if isinstance(closure, ast.Lambda):
        body = [closure.body]
    else:
        body = closure.body
    for statement in body:
        for node in [statement, *_iter_scope(statement)]:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    attr = _self_write_target(target)
                    if attr is not None:
                        mutations.append((attr, node.lineno))
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                attr = _self_write_target(node.target)
                if attr is not None:
                    mutations.append((attr, node.lineno))
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                func = node.func
                if func.attr in _MUTATORS and isinstance(func.value, ast.Attribute):
                    owner = func.value
                    if (
                        isinstance(owner.value, ast.Name)
                        and owner.value.id == "self"
                        and not owner.attr.startswith("_")
                    ):
                        mutations.append((owner.attr, node.lineno))
    return mutations


def _closure_has_guard(closure: _ClosureNode) -> bool:
    """Whether the closure re-validates any ``self`` state before
    acting (an ``if``/``while`` whose test reads ``self``)."""
    if isinstance(closure, ast.Lambda):
        for node in ast.walk(closure.body):
            if isinstance(node, ast.IfExp):
                for leaf in ast.walk(node.test):
                    if isinstance(leaf, ast.Name) and leaf.id == "self":
                        return True
        return False
    for statement in closure.body:
        for node in [statement, *_iter_scope(statement)]:
            if isinstance(node, (ast.If, ast.While)):
                for leaf in ast.walk(node.test):
                    if isinstance(leaf, ast.Name) and leaf.id == "self":
                        return True
    return False


class _FlowVisitor(ast.NodeVisitor):
    """Collects the flow graph and site-local findings for one file."""

    def __init__(self, filename: str, graph: MessageFlowGraph, report: Report):
        self.filename = filename
        self.graph = graph
        self.report = report
        self.class_stack: List[ast.ClassDef] = []
        self.protocol_class_depth = 0

    # -- classes and handlers -------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        is_protocol = _is_protocol_class(node)
        self.class_stack.append(node)
        if is_protocol:
            self.protocol_class_depth += 1
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if item.name.startswith(RPC_PREFIX):
                        self.graph.handlers.append(
                            HandlerSite(
                                item.name[len(RPC_PREFIX):],
                                node.name,
                                self.filename,
                                item.lineno,
                            )
                        )
                    self._check_continuations(item)
        try:
            self.generic_visit(node)
        finally:
            self.class_stack.pop()
            if is_protocol:
                self.protocol_class_depth -= 1

    # -- RSC405: registered continuations --------------------------------
    def _check_continuations(self, method: _FunctionNode) -> None:
        nested: Dict[str, _FunctionNode] = {
            n.name: n
            for n in ast.walk(method)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef)) and n is not method
        }
        registered: List[Tuple[_ClosureNode, int]] = []
        seen: Set[int] = set()

        def mark(value: ast.expr, line: int) -> None:
            closure: Optional[_ClosureNode] = None
            if isinstance(value, ast.Lambda):
                closure = value
            elif isinstance(value, ast.Name) and value.id in nested:
                closure = nested[value.id]
            if closure is not None and id(closure) not in seen:
                seen.add(id(closure))
                registered.append((closure, line))

        for node in ast.walk(method):
            if not isinstance(node, ast.Call):
                continue
            for arg in node.args:
                mark(arg, node.lineno)
            for keyword in node.keywords:
                if keyword.arg is None or keyword.arg in CALLBACK_KEYWORDS:
                    mark(keyword.value, node.lineno)

        for closure, _line in registered:
            mutations = _closure_mutations(closure)
            if not mutations or _closure_has_guard(closure):
                continue
            name = getattr(closure, "name", "<lambda>")
            for attr, line in mutations:
                self.report.add(
                    "RSC405",
                    "continuation %s() in %s.%s mutates self.%s with no "
                    "staleness guard; re-validate state (an if reading "
                    "self) before writing — the node may have changed "
                    "since registration"
                    % (
                        name,
                        self.class_stack[-1].name if self.class_stack else "<module>",
                        method.name,
                        attr,
                    ),
                    self.filename,
                    line=line,
                )

    # -- calls -----------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "call" and len(node.args) >= 2:
            self._record_rpc_send(node)
        elif isinstance(func, ast.Attribute) and func.attr == "send":
            owner = _attribute_chain_tail(func)
            if owner == "bus":
                self._record_bus_send(node)
        self.generic_visit(node)

    def _record_rpc_send(self, node: ast.Call) -> None:
        method_arg = node.args[1]
        if not (isinstance(method_arg, ast.Constant) and isinstance(method_arg.value, str)):
            self.report.add(
                "RSC400",
                "dynamic RPC method name in call(); flow analysis cannot "
                "match it to a handler",
                self.filename,
                line=node.lineno,
                severity=Severity.WARNING,
            )
            return
        has_timeout = len(node.args) >= 5 or any(
            keyword.arg == "on_timeout" for keyword in node.keywords
        )
        self.graph.sends.append(
            SendSite(method_arg.value, self.filename, node.lineno, has_timeout)
        )
        if not has_timeout:
            self.report.add(
                "RSC403",
                'call(..., "%s", ...) has no on_timeout path: a crashed '
                "callee swallows the RPC with no failure signal and no "
                "dead-peer eviction" % method_arg.value,
                self.filename,
                line=node.lineno,
            )

    def _record_bus_send(self, node: ast.Call) -> None:
        kind: Optional[str] = None
        has_undeliverable = False
        for keyword in node.keywords:
            if keyword.arg == "kind" and isinstance(keyword.value, ast.Constant):
                if isinstance(keyword.value.value, str):
                    kind = keyword.value.value
            elif keyword.arg == "on_undeliverable":
                has_undeliverable = True
        self.graph.bus_sends.append(
            BusSendSite(kind, self.filename, node.lineno, has_undeliverable)
        )

    # -- RSC404: dropped reply continuations -----------------------------
    def visit_Expr(self, node: ast.Expr) -> None:
        value = node.value
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Attribute):
            func = value.func
            if func.attr in ("pop", "clear") and _is_pending_attribute(func.value):
                self.report.add(
                    "RSC404",
                    "_pending.%s() discards the reply continuation: the "
                    "reply it was armed for can now neither be delivered "
                    "nor time out" % func.attr,
                    self.filename,
                    line=node.lineno,
                )
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if isinstance(target, ast.Subscript) and _is_pending_attribute(target.value):
                self.report.add(
                    "RSC404",
                    "del on a _pending entry discards the reply "
                    "continuation without invoking or rearming it",
                    self.filename,
                    line=node.lineno,
                )
        self.generic_visit(node)

    # -- direct handler references ---------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr.startswith(RPC_PREFIX):
            self.graph.direct_refs.add(node.attr[len(RPC_PREFIX):])
        self.generic_visit(node)


def collect_flow_graph(
    paths: Optional[Sequence[str]] = None, report: Optional[Report] = None
) -> Tuple[MessageFlowGraph, Report]:
    """Parse ``paths`` (default: the protocol layer) and build the
    send/handle graph, recording site-local diagnostics as we go."""
    if report is None:
        report = Report()
    if paths is None:
        paths = default_protocol_paths()
    graph = MessageFlowGraph()
    seen: Set[str] = set()
    for path in paths:
        path = os.path.normpath(path)
        if path in seen:
            continue
        seen.add(path)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            report.add("RSC400", "cannot read file: %s" % exc, path)
            continue
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            report.add(
                "RSC400",
                "syntax error: %s" % exc.msg,
                path,
                line=exc.lineno or 1,
            )
            continue
        _FlowVisitor(path, graph, report).visit(tree)
    return graph, report


def check_message_flow(
    paths: Optional[Sequence[str]] = None, report: Optional[Report] = None
) -> Report:
    """Run the full Pass-4 analysis; returns (or extends) a report."""
    graph, report = collect_flow_graph(paths, report)
    handled = graph.handled_methods
    for site in graph.sends:
        if site.method not in handled:
            report.add(
                "RSC401",
                'RPC "%s" is sent but no class defines %s%s: dispatch '
                "raises AttributeError at the receiver"
                % (site.method, RPC_PREFIX, site.method),
                site.file,
                line=site.line,
            )
    sent = graph.sent_methods
    for handler in graph.handlers:
        if handler.method not in sent and handler.method not in graph.direct_refs:
            report.add(
                "RSC402",
                "handler %s.%s%s is reachable from no call() site and "
                "no direct reference: dead protocol surface"
                % (handler.cls, RPC_PREFIX, handler.method),
                handler.file,
                line=handler.line,
            )
    return report
