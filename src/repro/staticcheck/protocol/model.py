"""Pass 5 — bounded model checking of the live protocols (``RSC5xx``).

Zave showed that the published Chord maintenance protocol is incorrect
and that every one of its bugs is reachable on rings of at most four
nodes — small-scope exhaustive exploration is the cheapest oracle for
this class of protocol. This pass applies that method to *our*
implementations:

* the **Chord explorer** enumerates every schedule of
  ``{join, crash, stabilize, fix_one_finger, check_predecessor}`` up to
  a bounded depth over rings of ``n <= 4`` nodes. The simulator is
  deterministic, so each schedule is replayed exactly, twice — once
  with the operations back-to-back (maximal message interleaving) and
  once with a maintenance round between them — then driven to
  quiescence and checked against Zave-style ring invariants.
* the **runtime explorer** enumerates schedules of
  ``{inject, split, merge, add_node, remove_node}`` over a small
  :class:`~repro.runtime.system.AdaptiveCountingSystem` and checks the
  paper's safety properties at quiescence. Crashes are deliberately
  *not* in this alphabet: a crash may legitimately lose in-flight
  tokens, so "every token retires" is only an invariant of the
  crash-free protocol.

Rules
-----
``RSC501``
    Ring connectivity: after recovery, some live joined member's
    successor pointer leads outside the set of live joined members.
``RSC502``
    Ordered successors: a member's successor is a member, but not the
    *next* member in identifier order — the ring is connected yet
    misordered.
``RSC503``
    At most one ring: the successor graph of the live joined members
    splits into more than one cycle (the classic split-ring failure).
``RSC504``
    Token conservation: a schedule of crash-free operations left an
    issued token that was never assigned an output wire.
``RSC505``
    Step property: the quiescent output distribution violates the step
    property.

``RSC500`` marks explorer-level problems: an operation raised an
unexpected exception during replay (error — the protocol crashed), or
the schedule space was truncated by the exploration budget (warning).

The explorers run the *real* code — :mod:`repro.chord.protocol` and
:mod:`repro.runtime.system` — not an abstracted model, so a clean
report certifies the implementation, not a transcription of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.staticcheck.diagnostics import Report, Severity

if TYPE_CHECKING:  # pragma: no cover - import-time only
    from repro.chord.protocol import ChordProtocolNetwork
    from repro.runtime.system import AdaptiveCountingSystem

#: One scheduled operation: an op name followed by its arguments.
Op = Tuple[object, ...]
Schedule = Tuple[Op, ...]
Path = Tuple[int, ...]

#: The largest ring the Chord explorer will enumerate. Zave's analysis
#: found every known Chord bug within this scope.
MAX_MODEL_NODES = 4

#: Maintenance operations a live node can be asked to run.
_MAINTENANCE_OPS = ("stabilize", "fix_one_finger", "check_predecessor")


@dataclass
class ModelCheckConfig:
    """Knobs for both explorers.

    ``max_nodes`` bounds the Chord ring (2..4); ``depth`` is the number
    of operations per schedule; ``recovery_rounds`` is how much
    maintenance the ring gets to heal before invariants are judged
    (invariants are *eventual* — checking mid-recovery would report
    transients). ``network_factory`` / ``system_factory`` substitute
    the subject under test, which is how the negative fixtures inject
    deliberately broken protocols.
    """

    max_nodes: int = 3
    depth: int = 3
    recovery_rounds: int = 12
    seed: int = 0
    max_schedules: int = 20_000
    max_violations_per_code: int = 5
    network_factory: Optional[Callable[[], "ChordProtocolNetwork"]] = None
    system_factory: Optional[Callable[[], "AdaptiveCountingSystem"]] = None

    def __post_init__(self) -> None:
        if not 2 <= self.max_nodes <= MAX_MODEL_NODES:
            raise ValueError(
                "max_nodes must be in 2..%d (small-scope exploration), got %d"
                % (MAX_MODEL_NODES, self.max_nodes)
            )
        if self.depth < 1:
            raise ValueError("depth must be >= 1, got %d" % self.depth)


def _format_op(op: Op) -> str:
    name = str(op[0])
    if name == "join":
        return "join(%s via %s)" % (op[1], op[2])
    if len(op) == 1:
        return name
    return "%s(%s)" % (name, ", ".join(str(arg) for arg in op[1:]))


def _format_schedule(schedule: Schedule) -> str:
    return "; ".join(_format_op(op) for op in schedule) or "<empty>"


class _Emitter:
    """Adds diagnostics with a per-code cap so one systematic bug does
    not flood the report with thousands of equivalent schedules."""

    def __init__(self, report: Report, cap: int, source: str):
        self.report = report
        self.cap = cap
        self.source = source
        self.counts: Dict[str, int] = {}

    def emit(self, code: str, message: str) -> None:
        seen = self.counts.get(code, 0)
        self.counts[code] = seen + 1
        if seen < self.cap:
            self.report.add(code, message, self.source)
        elif seen == self.cap:
            self.report.add(
                code,
                "further %s violations suppressed (cap %d per code)"
                % (code, self.cap),
                self.source,
                severity=Severity.WARNING,
            )


# ----------------------------------------------------------------------
# Chord explorer
# ----------------------------------------------------------------------
def _default_network_factory(config: ModelCheckConfig) -> "ChordProtocolNetwork":
    from repro.chord.identifiers import IdentifierSpace
    from repro.chord.protocol import ChordProtocolNetwork

    return ChordProtocolNetwork(seed=config.seed, space=IdentifierSpace(bits=8))


def _id_pool(network: "ChordProtocolNetwork", max_nodes: int) -> List[int]:
    """``max_nodes`` identifiers spread evenly around the ring."""
    size = network.space.size
    return [(1 + index * (size // max_nodes)) % size for index in range(max_nodes)]


def _chord_schedules(config: ModelCheckConfig, pool: Sequence[int]) -> List[Schedule]:
    """Every schedule of length ``depth`` whose operations are enabled.

    Enabledness depends only on which nodes have been spawned and which
    are still alive — both change deterministically with the schedule —
    so the space is enumerated symbolically and each complete schedule
    is replayed exactly once (per timing variant). At least one node is
    always left alive, otherwise there is no ring to judge.
    """
    schedules: List[Schedule] = []
    prefix: List[Op] = []

    def extend(spawned: int, alive: FrozenSet[int]) -> None:
        if len(prefix) == config.depth or len(schedules) >= config.max_schedules:
            schedules.append(tuple(prefix))
            return
        if spawned < len(pool):
            joiner = pool[spawned]
            for bootstrap in sorted(alive):
                prefix.append(("join", joiner, bootstrap))
                extend(spawned + 1, alive | {joiner})
                prefix.pop()
        if len(alive) > 1:
            for victim in sorted(alive):
                prefix.append(("crash", victim))
                extend(spawned, alive - {victim})
                prefix.pop()
        for node_id in sorted(alive):
            for op_name in _MAINTENANCE_OPS:
                prefix.append((op_name, node_id))
                extend(spawned, alive)
                prefix.pop()

    extend(1, frozenset({pool[0]}))
    return schedules[: config.max_schedules]


def _replay_chord(
    config: ModelCheckConfig,
    pool: Sequence[int],
    schedule: Schedule,
    rounds_between: int,
) -> "ChordProtocolNetwork":
    """Deterministically re-execute one schedule from the initial state."""
    factory = config.network_factory or (lambda: _default_network_factory(config))
    network = factory()
    network.create_first(pool[0])
    for op in schedule:
        name = op[0]
        if name == "join":
            network.join(op[2], node_id=op[1])
        elif name == "crash":
            network.crash(op[1])
        else:
            getattr(network.nodes[op[1]], str(name))()
        if rounds_between:
            network.run_rounds(rounds_between)
    network.run_rounds(config.recovery_rounds)
    network.sim.run_until_idle()
    return network


def _check_ring_invariants(
    network: "ChordProtocolNetwork", label: str, emitter: _Emitter
) -> None:
    """Judge the quiescent ring; at most one finding per schedule."""
    members = {
        node_id: node
        for node_id, node in network.nodes.items()
        if node.alive and node.joined
    }
    if not members:
        return
    ids = sorted(members)
    for node_id in ids:
        successor = members[node_id].successor
        if successor not in members:
            emitter.emit(
                "RSC501",
                "ring connectivity: node %d's successor %d is not a live "
                "joined member after recovery [schedule: %s]"
                % (node_id, successor, label),
            )
            return
    # Walk the successor graph from the lowest member: one ring means
    # the walk returns to its start having visited every member.
    start = ids[0]
    visited = set()
    current = start
    for _ in range(len(ids)):
        visited.add(current)
        current = members[current].successor
    if current != start or visited != set(ids):
        emitter.emit(
            "RSC503",
            "at-most-one-ring: successor graph over members %s splits "
            "into %d+ cycles [schedule: %s]"
            % (ids, len(ids) - len(visited) + 1, label),
        )
        return
    for index, node_id in enumerate(ids):
        expected = ids[(index + 1) % len(ids)]
        actual = members[node_id].successor
        if actual != expected:
            emitter.emit(
                "RSC502",
                "ordered successors: node %d's successor is %d, but the "
                "next member in identifier order is %d [schedule: %s]"
                % (node_id, actual, expected, label),
            )
            return


def model_check_chord(
    config: Optional[ModelCheckConfig] = None, report: Optional[Report] = None
) -> Report:
    """Exhaustively explore Chord schedules and check ring invariants."""
    config = config or ModelCheckConfig()
    if report is None:
        report = Report()
    emitter = _Emitter(
        report, config.max_violations_per_code, "model-check/chord"
    )
    probe = (config.network_factory or (lambda: _default_network_factory(config)))()
    pool = _id_pool(probe, config.max_nodes)
    schedules = _chord_schedules(config, pool)
    if len(schedules) >= config.max_schedules:
        report.add(
            "RSC500",
            "schedule space truncated at %d schedules; raise max_schedules "
            "or lower depth for exhaustive coverage" % config.max_schedules,
            "model-check/chord",
            severity=Severity.WARNING,
        )
    for schedule in schedules:
        for rounds_between, variant in ((0, "burst"), (1, "spaced")):
            label = "%s [%s]" % (_format_schedule(schedule), variant)
            try:
                network = _replay_chord(config, pool, schedule, rounds_between)
            except Exception as exc:  # noqa: BLE001 - any crash is a finding
                emitter.emit(
                    "RSC500",
                    "replay raised %s: %s [schedule: %s]"
                    % (type(exc).__name__, exc, label),
                )
                continue
            _check_ring_invariants(network, label, emitter)
    return report


# ----------------------------------------------------------------------
# Runtime explorer
# ----------------------------------------------------------------------
def _default_system_factory(config: ModelCheckConfig) -> "AdaptiveCountingSystem":
    from repro.runtime.system import AdaptiveCountingSystem

    return AdaptiveCountingSystem(width=4, seed=config.seed)


def _runtime_schedules(
    config: ModelCheckConfig, system: "AdaptiveCountingSystem"
) -> List[Schedule]:
    """Enabled runtime schedules, tracked symbolically.

    Splits and merges change the live cut deterministically (a split
    replaces a component by its children; a merge collapses the whole
    live subtree), so the enabled set follows the schedule exactly.
    """
    tree = system.tree

    def splittable(path: Path) -> bool:
        return tree.node(path).width > 2

    def children(path: Path) -> FrozenSet[Path]:
        return frozenset(child.path for child in tree.node(path).children())

    schedules: List[Schedule] = []
    prefix: List[Op] = []

    def extend(paths: FrozenSet[Path], nodes: int) -> None:
        if len(prefix) == config.depth or len(schedules) >= config.max_schedules:
            schedules.append(tuple(prefix))
            return
        prefix.append(("inject",))
        extend(paths, nodes)
        prefix.pop()
        for path in sorted(paths):
            if splittable(path):
                prefix.append(("split", path))
                extend(paths - {path} | children(path), nodes)
                prefix.pop()
        parents = {path[:-1] for path in paths if path}
        for parent in sorted(parents):
            subtree = frozenset(
                p for p in paths if p[: len(parent)] == parent and p != parent
            )
            prefix.append(("merge", parent))
            extend(paths - subtree | {parent}, nodes)
            prefix.pop()
        prefix.append(("add_node",))
        extend(paths, nodes + 1)
        prefix.pop()
        if nodes > 1:
            prefix.append(("remove_node",))
            extend(paths, nodes - 1)
            prefix.pop()

    extend(frozenset({()}), system.num_nodes)
    return schedules[: config.max_schedules]


def _replay_runtime(
    config: ModelCheckConfig, schedule: Schedule
) -> "AdaptiveCountingSystem":
    """Re-execute one runtime schedule; operations are deliberately not
    separated by quiescence, so tokens are in flight across
    reconfigurations and membership changes."""
    factory = config.system_factory or (lambda: _default_system_factory(config))
    system = factory()
    # Warm-up: one token per wire, so the invariants are not vacuous.
    for _ in range(system.width):
        system.inject_token()
    for op in schedule:
        name = op[0]
        if name == "inject":
            system.inject_token()
        elif name == "split":
            system.reconfig.split(op[1])
        elif name == "merge":
            initiator = system.hosts[sorted(system.hosts)[0]]
            system.reconfig.merge(op[1], initiator)
        elif name == "add_node":
            system.add_node()
        elif name == "remove_node":
            system.remove_node(sorted(system.hosts)[-1])
    system.run_until_quiescent()
    return system


def _check_runtime_invariants(
    system: "AdaptiveCountingSystem", label: str, emitter: _Emitter
) -> None:
    from repro.core.verification import step_violation

    stats = system.token_stats
    if stats.retired != stats.issued:
        emitter.emit(
            "RSC504",
            "token conservation: %d token(s) issued but only %d assigned "
            "an output wire under a crash-free schedule [schedule: %s]"
            % (stats.issued, stats.retired, label),
        )
        return
    violation = step_violation(system.output_counts)
    if violation is not None:
        emitter.emit(
            "RSC505",
            "step property: quiescent output counts %r violate the step "
            "property at wires %r [schedule: %s]"
            % (system.output_counts, violation, label),
        )


def model_check_runtime(
    config: Optional[ModelCheckConfig] = None, report: Optional[Report] = None
) -> Report:
    """Exhaustively explore runtime schedules and check token/step
    invariants at quiescence."""
    config = config or ModelCheckConfig()
    if report is None:
        report = Report()
    emitter = _Emitter(
        report, config.max_violations_per_code, "model-check/runtime"
    )
    probe = (config.system_factory or (lambda: _default_system_factory(config)))()
    schedules = _runtime_schedules(config, probe)
    if len(schedules) >= config.max_schedules:
        report.add(
            "RSC500",
            "schedule space truncated at %d schedules" % config.max_schedules,
            "model-check/runtime",
            severity=Severity.WARNING,
        )
    for schedule in schedules:
        label = _format_schedule(schedule)
        try:
            system = _replay_runtime(config, schedule)
        except Exception as exc:  # noqa: BLE001 - any crash is a finding
            emitter.emit(
                "RSC500",
                "replay raised %s: %s [schedule: %s]"
                % (type(exc).__name__, exc, label),
            )
            continue
        _check_runtime_invariants(system, label, emitter)
    return report


def model_check(
    config: Optional[ModelCheckConfig] = None, report: Optional[Report] = None
) -> Report:
    """Run both explorers; returns (or extends) a combined report."""
    config = config or ModelCheckConfig()
    if report is None:
        report = Report()
    model_check_chord(config, report)
    model_check_runtime(config, report)
    return report
