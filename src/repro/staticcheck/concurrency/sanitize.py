"""The schedule-perturbation sanitizer (``repro check --sanitize``).

The static rules (:mod:`.rules`) predict which state goes wrong when
event-loop atomicity disappears. This module *demonstrates* schedule
sensitivity today, without threads: it re-executes the seeded bench
scenarios with a :class:`~repro.sim.events.PerturbedPolicy` installed,
so same-timestamp events run in a seeded-random order instead of FIFO
— every perturbed order is still a *legal* schedule (time order is
preserved; only ties break differently), so anything that breaks was
relying on incidental FIFO tie-breaking.

Two failure modes, two codes:

``RSC610`` — a perturbed schedule broke the run: an invariant check
    failed (token conservation / step property / ``verify()`` — the
    end-to-end scenarios verify internally and raise) or the scenario
    crashed outright.

``RSC611`` — the same perturbation seed produced two different result
    fingerprints, i.e. the run is not even deterministic *given* the
    schedule. That is a deeper defect than schedule sensitivity (it
    usually means iteration over an unordered container or leaked
    global state) and is reported at error severity too.

The *fingerprint* of a run is the scenario's seed-stable output: its
``events`` count and every metric that is a pure function of simulated
time, excluding the wall-clock rates. Two different sanitizer seeds
legitimately produce different fingerprints (different tie-breaks lead
to different hop counts); one seed must reproduce its own exactly.

On divergence the sanitizer writes a JSON artifact per failure (both
fingerprints, diffed keys) for CI upload.
"""

from __future__ import annotations

import json
import os
import random
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.harness import PROFILES, run_bench
from repro.bench.result import WALL_CLOCK_METRIC_KEYS, ScenarioResult
from repro.sim.events import PerturbedPolicy, schedule_policy
from repro.staticcheck.diagnostics import Report

#: Metric keys measured in wall-clock time — excluded from fingerprints
#: because they legitimately vary run to run on the same machine. The
#: authoritative set lives next to ``ScenarioResult`` so scenarios and
#: the sanitizer cannot drift apart.
WALL_CLOCK_METRICS = WALL_CLOCK_METRIC_KEYS

#: Default perturbation seeds for ``--sanitize`` with no explicit list.
DEFAULT_SANITIZE_SEEDS: Tuple[int, ...] = (1, 2, 3)

#: Where divergence artifacts land unless overridden (CI uploads this).
DEFAULT_ARTIFACT_DIR = "sanitizer-artifacts"


@dataclass
class SanitizerConfig:
    """One sanitizer invocation's knobs."""

    profile: str = "smoke"
    seeds: Sequence[int] = DEFAULT_SANITIZE_SEEDS
    #: Workload seed handed to the scenarios themselves (the bench
    #: default), independent of the perturbation seeds.
    bench_seed: int = 0
    #: Upper bound on extra per-message delivery delay. 0.0 keeps the
    #: perturbation to pure same-timestamp tie-breaking, which every
    #: correct implementation must tolerate; positive values also
    #: stretch transit times (still deterministic per seed).
    max_jitter: float = 0.0
    scenarios: Optional[Sequence[str]] = None
    artifact_dir: str = DEFAULT_ARTIFACT_DIR


@dataclass
class SanitizerOutcome:
    """What happened, beyond the diagnostics: run counts for the CLI
    summary and the artifact files written."""

    runs: int = 0
    failures: int = 0
    artifacts: List[str] = field(default_factory=list)


def fingerprint(result: ScenarioResult) -> Dict[str, object]:
    """The seed-stable identity of one scenario run."""
    return {
        "name": result.name,
        "events": result.events,
        "metrics": {
            key: value
            for key, value in sorted(result.metrics.items())
            if key not in WALL_CLOCK_METRICS
        },
    }


def _diff_keys(first: Dict[str, object], second: Dict[str, object]) -> List[str]:
    first_metrics = dict(first.get("metrics", {}))  # type: ignore[arg-type]
    second_metrics = dict(second.get("metrics", {}))  # type: ignore[arg-type]
    diffs = []
    if first.get("events") != second.get("events"):
        diffs.append("events")
    for key in sorted(set(first_metrics) | set(second_metrics)):
        if first_metrics.get(key) != second_metrics.get(key):
            diffs.append("metrics.%s" % key)
    return diffs


def _run_one(
    config: SanitizerConfig, scenario: str, perturbation_seed: int
) -> ScenarioResult:
    """One scenario execution under a fresh perturbed policy."""
    policy_rng = random.Random(perturbation_seed)
    with schedule_policy(
        lambda: PerturbedPolicy(policy_rng, max_jitter=config.max_jitter)
    ):
        results = run_bench(config.profile, config.bench_seed, only=[scenario])
    return results[0]


def _write_artifact(config: SanitizerConfig, name: str, payload: Dict) -> Optional[str]:
    try:
        os.makedirs(config.artifact_dir, exist_ok=True)
        path = os.path.join(config.artifact_dir, name)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path
    except OSError:
        return None  # artifact emission must never mask the finding


def run_sanitizer(
    config: Optional[SanitizerConfig] = None,
    report: Optional[Report] = None,
) -> Tuple[Report, SanitizerOutcome]:
    """Execute every selected scenario under every perturbation seed.

    Each (scenario, seed) pair runs **twice**: once to observe behaviour
    under the perturbed schedule (RSC610 on crash/invariant failure),
    once more to check the perturbed run reproduces its own fingerprint
    (RSC611 on mismatch). Findings are appended to ``report``.
    """
    if config is None:
        config = SanitizerConfig()
    if report is None:
        report = Report()
    outcome = SanitizerOutcome()
    scenarios = (
        list(config.scenarios)
        if config.scenarios is not None
        else list(PROFILES[config.profile])
    )
    source = "sanitizer:%s" % config.profile
    for scenario in scenarios:
        for seed in config.seeds:
            outcome.runs += 1
            component = "RSC610 %s:%s:seed%d" % (config.profile, scenario, seed)
            try:
                first = _run_one(config, scenario, seed)
            except Exception as exc:
                outcome.failures += 1
                artifact = _write_artifact(
                    config,
                    "divergence_%s_seed%d_crash.json" % (scenario, seed),
                    {
                        "scenario": scenario,
                        "profile": config.profile,
                        "perturbation_seed": seed,
                        "bench_seed": config.bench_seed,
                        "error": repr(exc),
                        "traceback": traceback.format_exc(),
                    },
                )
                if artifact:
                    outcome.artifacts.append(artifact)
                report.add(
                    "RSC610",
                    "scenario %r failed under perturbation seed %d: %s — a "
                    "legal reordering of same-timestamp events broke an "
                    "invariant, so the code depends on FIFO tie-breaking"
                    % (scenario, seed, exc),
                    source,
                    component=component,
                )
                continue
            second = _run_one(config, scenario, seed)
            first_print = fingerprint(first)
            second_print = fingerprint(second)
            if first_print != second_print:
                outcome.failures += 1
                diffs = _diff_keys(first_print, second_print)
                artifact = _write_artifact(
                    config,
                    "divergence_%s_seed%d.json" % (scenario, seed),
                    {
                        "scenario": scenario,
                        "profile": config.profile,
                        "perturbation_seed": seed,
                        "bench_seed": config.bench_seed,
                        "first": first_print,
                        "second": second_print,
                        "diverged_keys": diffs,
                    },
                )
                if artifact:
                    outcome.artifacts.append(artifact)
                report.add(
                    "RSC611",
                    "scenario %r is nondeterministic under perturbation seed "
                    "%d: two identical runs diverged on %s — same-schedule "
                    "divergence usually means unordered-container iteration "
                    "or leaked global state"
                    % (scenario, seed, ", ".join(diffs) or "unknown keys"),
                    source,
                    component="RSC611 %s:%s:seed%d" % (config.profile, scenario, seed),
                )
    return report, outcome
