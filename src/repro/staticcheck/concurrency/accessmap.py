"""Shared-state access maps: who touches which attribute, from where.

The concurrency pass (``rules``) needs one structured view of a module:
for every class, which ``self.`` attributes each method reads, writes
and read-modify-writes; which methods run in *handler context* (message
delivery) — directly or transitively through ``self.method()`` calls;
which attributes were initialised to fresh mutable containers; and
which closures are registered as asynchronous continuations. This
module builds that view with :mod:`ast` only — analyzed code is never
imported, so a broken module can still be mapped.

Handler context matters because it is exactly the code that will run on
*worker* threads in the planned shared-memory backend: a method only
ever called from ``__init__`` keeps single-threaded discipline, while a
method reachable from ``handle_message`` will race. The reachability
computation is a fixpoint over the intra-class ``self.x()`` call graph.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple, Union

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]
_ClosureNode = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]

#: Method names that *are* handler context by definition (the bus calls
#: them during message delivery), matching the Pass-3 scoping rules.
HANDLER_NAME_PREFIXES: Tuple[str, ...] = ("_handle", "rpc_")
HANDLER_NAMES: Tuple[str, ...] = ("handle_message", "arrive", "deliver")

#: Keyword arguments that register a closure as a continuation.
CALLBACK_KWARGS: Tuple[str, ...] = (
    "on_reply",
    "on_timeout",
    "on_undeliverable",
    "on_found",
)

#: Callees whose positional closure arguments run later, in event /
#: message-delivery context.
DEFERRING_CALLEES: Tuple[str, ...] = ("schedule", "schedule_at", "call", "on_retire")

#: Container methods that mutate their receiver.
MUTATORS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popleft",
        "popitem",
        "remove",
        "setdefault",
        "update",
    }
)

#: Calls whose result is a fresh mutable container.
_MUTABLE_BUILTINS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter"}
)
_MUTABLE_LITERALS = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)


def is_mutable_initialiser(value: ast.expr) -> bool:
    """Whether ``value`` evaluates to a fresh mutable container."""
    if isinstance(value, _MUTABLE_LITERALS):
        return True
    if isinstance(value, ast.BinOp) and isinstance(value.op, ast.Mult):
        # ``[0] * width`` — the repo's per-wire counter idiom.
        return is_mutable_initialiser(value.left) or is_mutable_initialiser(value.right)
    if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
        return value.func.id in _MUTABLE_BUILTINS
    return False


def self_attr(node: ast.expr) -> Optional[str]:
    """``X`` when ``node`` is exactly ``self.X``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _base_self_attr(node: ast.expr) -> Optional[str]:
    """``X`` for ``self.X``, ``self.X[...]`` or chains rooted there."""
    while isinstance(node, ast.Subscript):
        node = node.value
    return self_attr(node)


@dataclass
class RegisteredClosure:
    """A closure that will run later, in event/message context."""

    node: _ClosureNode
    line: int
    #: How it was registered: ``_pending``, an ``on_*`` keyword, or the
    #: deferring callee name (``schedule``/``call``/...).
    via: str


@dataclass
class MethodAccess:
    """One method's shared-state footprint."""

    name: str
    node: _ClosureNode
    reads: Dict[str, List[int]] = field(default_factory=dict)
    writes: Dict[str, List[int]] = field(default_factory=dict)
    #: Read-modify-write sites: augmented assigns (``self.x += 1``,
    #: ``self.x[k] += 1``), self-referencing rebinding
    #: (``self.x = self.x + 1``) and mutator calls (``self.x.append``).
    compound: Dict[str, List[int]] = field(default_factory=dict)
    #: ``self.method()`` call targets (intra-class call graph edges).
    calls_self: Set[str] = field(default_factory=set)
    closures: List[RegisteredClosure] = field(default_factory=list)
    handler: bool = False


@dataclass
class ClassAccessMap:
    """Per-class attribute access map."""

    name: str
    node: ast.ClassDef
    file: str
    line: int
    methods: Dict[str, MethodAccess] = field(default_factory=dict)
    #: Attributes assigned in the init path, and whether the assigned
    #: value is a fresh mutable container.
    init_attrs: Dict[str, bool] = field(default_factory=dict)
    #: Attribute names containing an epoch/version fragment — the
    #: class has an ABA/staleness guard convention RSC605 can check.
    epoch_attrs: Set[str] = field(default_factory=set)

    def shared_attrs(self) -> Set[str]:
        """Attributes touched by two or more distinct methods."""
        touched: Dict[str, Set[str]] = {}
        for method in self.methods.values():
            for attr in set(method.reads) | set(method.writes) | set(method.compound):
                touched.setdefault(attr, set()).add(method.name)
        return {attr for attr, users in touched.items() if len(users) >= 2}

    def handler_reachable(self) -> Set[str]:
        """Methods reachable from handler context via ``self.x()`` calls."""
        reachable = {m.name for m in self.methods.values() if m.handler}
        changed = True
        while changed:
            changed = False
            for method in self.methods.values():
                if method.name in reachable:
                    for callee in method.calls_self:
                        if callee in self.methods and callee not in reachable:
                            reachable.add(callee)
                            changed = True
        return reachable


#: Init-path method names: writes here establish state, they do not race
#: (the object is not yet published when they run).
def is_init_method(name: str) -> bool:
    return name == "__init__" or name.startswith("_init") or name == "__post_init__"


class _MethodVisitor(ast.NodeVisitor):
    """Collects one method's accesses; nested closures get their own
    sub-visit (their accesses are *not* merged into the method's — the
    rules reason about closure bodies separately)."""

    def __init__(self, access: MethodAccess, root: _ClosureNode):
        self.access = access
        self.root = root

    def _record(self, table: Dict[str, List[int]], attr: str, line: int) -> None:
        table.setdefault(attr, []).append(line)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if node is not self.root:
            return  # nested def: separate scope
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        if node is not self.root:
            return
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        if node is not self.root:
            return
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = self_attr(node)
        if attr is not None:
            if isinstance(node.ctx, ast.Store):
                self._record(self.access.writes, attr, node.lineno)
            elif isinstance(node.ctx, ast.Del):
                self._record(self.access.compound, attr, node.lineno)
            else:
                self._record(self.access.reads, attr, node.lineno)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        attr = _base_self_attr(node.target)
        if attr is not None:
            self._record(self.access.compound, attr, node.lineno)
            self._record(self.access.writes, attr, node.lineno)
        self.generic_visit(node.value)
        if isinstance(node.target, ast.Subscript):
            self.generic_visit(node.target.slice)
            # The read of the container itself:
            self.generic_visit(node.target.value)

    def visit_Assign(self, node: ast.Assign) -> None:
        # ``self.x = <expr reading self.x>`` is a read-modify-write
        # spelled longhand; ``self.x[k] = v`` mutates the container.
        value_reads = {
            self_attr(sub)
            for sub in ast.walk(node.value)
            if self_attr(sub) is not None
        }
        for target in node.targets:
            attr = self_attr(target)
            if attr is not None and attr in value_reads:
                self._record(self.access.compound, attr, node.lineno)
            sub_attr = None
            if isinstance(target, ast.Subscript):
                sub_attr = _base_self_attr(target)
            if sub_attr is not None:
                self._record(self.access.compound, sub_attr, node.lineno)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            # self.method(...) — intra-class call-graph edge.
            if isinstance(func.value, ast.Name) and func.value.id == "self":
                self.access.calls_self.add(func.attr)
            # self.x.append(...) — container mutation through the attr.
            if func.attr in MUTATORS:
                attr = _base_self_attr(func.value)
                if attr is not None:
                    self._record(self.access.compound, attr, node.lineno)
                    self._record(self.access.writes, attr, node.lineno)
        self.generic_visit(node)


def _collect_closures(method: MethodAccess) -> None:
    """Find closures registered as continuations inside ``method``."""
    root = method.node
    nested: Dict[str, _ClosureNode] = {
        fn.name: fn
        for fn in ast.walk(root)
        if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)) and fn is not root
    }

    def resolve(value: ast.expr) -> Optional[_ClosureNode]:
        if isinstance(value, ast.Lambda):
            return value
        if isinstance(value, ast.Name):
            return nested.get(value.id)
        return None

    for node in ast.walk(root):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Attribute)
                    and target.value.attr == "_pending"
                ):
                    closure = resolve(node.value)
                    if closure is not None:
                        method.closures.append(
                            RegisteredClosure(closure, node.lineno, "_pending")
                        )
        elif isinstance(node, ast.Call):
            callee = node.func
            callee_name = None
            if isinstance(callee, ast.Name):
                callee_name = callee.id
            elif isinstance(callee, ast.Attribute):
                callee_name = callee.attr
            for keyword in node.keywords:
                if keyword.arg in CALLBACK_KWARGS:
                    closure = resolve(keyword.value)
                    if closure is not None:
                        method.closures.append(
                            RegisteredClosure(closure, node.lineno, keyword.arg)
                        )
            if callee_name in DEFERRING_CALLEES:
                for arg in node.args:
                    closure = resolve(arg)
                    if closure is not None:
                        method.closures.append(
                            RegisteredClosure(closure, node.lineno, callee_name)
                        )


def closure_access(closure: _ClosureNode) -> MethodAccess:
    """The shared-state footprint of one registered closure body."""
    name = getattr(closure, "name", "<lambda>")
    access = MethodAccess(name=name, node=closure)
    _MethodVisitor(access, closure).visit(closure)
    return access


_EPOCH_FRAGMENTS = ("epoch", "version", "incarnation", "generation")


def _is_epoch_name(name: str) -> bool:
    lowered = name.lower()
    return any(fragment in lowered for fragment in _EPOCH_FRAGMENTS)


def build_class_map(node: ast.ClassDef, filename: str) -> ClassAccessMap:
    """Build the access map of one class definition."""
    class_map = ClassAccessMap(node.name, node, filename, node.lineno)
    defines_handler = any(
        isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        and item.name == "handle_message"
        for item in node.body
    )
    for item in node.body:
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        access = MethodAccess(name=item.name, node=item)
        _MethodVisitor(access, item).visit(item)
        _collect_closures(access)
        access.handler = item.name in HANDLER_NAMES or (
            defines_handler
            and any(item.name.startswith(p) for p in HANDLER_NAME_PREFIXES)
        ) or item.name.startswith("rpc_")
        class_map.methods[item.name] = access
        if is_init_method(item.name):
            for sub in ast.walk(item):
                if isinstance(sub, ast.Assign):
                    mutable = is_mutable_initialiser(sub.value)
                    for target in sub.targets:
                        attr = self_attr(target)
                        if attr is not None:
                            class_map.init_attrs[attr] = mutable or (
                                class_map.init_attrs.get(attr, False)
                            )
                elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
                    attr = self_attr(sub.target)
                    if attr is not None:
                        class_map.init_attrs[attr] = is_mutable_initialiser(sub.value)
        for attr_table in (access.reads, access.writes):
            for attr in attr_table:
                if _is_epoch_name(attr):
                    class_map.epoch_attrs.add(attr)
    for attr in class_map.init_attrs:
        if _is_epoch_name(attr):
            class_map.epoch_attrs.add(attr)
    return class_map


@dataclass
class ModuleMap:
    """Everything the rules need to know about one module."""

    filename: str
    module: str
    tree: ast.Module
    classes: List[ClassAccessMap]
    #: Module-level names bound to mutable containers, with bind line.
    module_mutables: Dict[str, int]
    #: Module-level names (any value) assigned at module scope.
    module_names: Set[str]


def build_module_map(tree: ast.Module, filename: str, module: str) -> ModuleMap:
    classes = [
        build_class_map(node, filename)
        for node in tree.body
        if isinstance(node, ast.ClassDef)
    ]
    module_mutables: Dict[str, int] = {}
    module_names: Set[str] = set()
    for stmt in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if isinstance(target, ast.Name):
                module_names.add(target.id)
                if value is not None and is_mutable_initialiser(value):
                    module_mutables[target.id] = stmt.lineno
    return ModuleMap(filename, module, tree, classes, module_mutables, module_names)
