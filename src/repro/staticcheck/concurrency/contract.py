"""The thread-readiness contract: annotations and the triage baseline.

Two suppression mechanisms, with different semantics:

``# repro: thread-safe: <justification>``
    A *contract comment* on a class definition line (or the line
    directly above it), or on an individual mutation statement. It
    asserts the annotated subject is safe under concurrent execution —
    a module-state swap point that only runs between simulations, a
    class whose shared state is immutable after init, a documented
    single-writer discipline. The pass **verifies rather than trusts**
    the annotation: a bare marker with no justification is flagged
    (RSC600), and an annotated class that *leaks* its mutable state to
    other objects (RSC604) is reported anyway — the contract cannot
    hold when aliases escape, so the annotation is judged violated.

``CONCURRENCY_BASELINE.txt``
    The checked-in triage ledger for findings that are *real* under
    threads but acceptable today, because the code only runs inside the
    single-threaded event loop. Each line is a finding key
    (``CODE module:qualifier:attr``). Baselined findings are demoted to
    warnings tagged ``[baseline]`` — unless the dynamic sanitizer
    failed in the same invocation, in which case the demotion is
    revoked (:func:`promote_baseline_suppressed`): a confirmed
    schedule-sensitivity means "the event loop saves us" stopped being
    an excuse. Stale entries (keys matching no current finding) are
    reported so the ledger cannot rot.
"""

from __future__ import annotations

import os
from typing import Dict, List, Set, Tuple

from repro.staticcheck.diagnostics import Report, Severity

#: The contract-comment marker, as it appears in source.
THREAD_SAFE_MARKER = "# repro: thread-safe"

#: Default baseline file name, resolved against the working directory
#: (the repo root in CI), like the bench baselines.
DEFAULT_BASELINE_NAME = "CONCURRENCY_BASELINE.txt"

#: Message tag carried by baseline-demoted findings.
BASELINE_TAG = "[baseline]"


class ThreadSafeAnnotations:
    """Parsed ``# repro: thread-safe`` markers of one source buffer."""

    def __init__(self, source: str):
        #: line number -> justification text ("" when bare).
        self.lines: Dict[int, str] = {}
        for index, text in enumerate(source.splitlines(), start=1):
            position = text.find(THREAD_SAFE_MARKER)
            if position < 0:
                continue
            remainder = text[position + len(THREAD_SAFE_MARKER):].strip()
            if remainder.startswith(":"):
                remainder = remainder[1:].strip()
            self.lines[index] = remainder

    def annotation_at(self, line: int) -> Tuple[bool, str]:
        """Whether ``line`` (or the comment line above it) is annotated,
        and the justification text."""
        for candidate in (line, line - 1):
            if candidate in self.lines:
                return True, self.lines[candidate]
        return False, ""

    def bare_markers(self) -> List[int]:
        """Marker lines with an empty justification (contract without a
        reason is not a contract)."""
        return sorted(line for line, text in self.lines.items() if not text)


def finding_key(code: str, module: str, qualifier: str, attr: str) -> str:
    """The stable identity of one finding, line-number free.

    ``module`` is the dotted module, ``qualifier`` the enclosing
    ``Class.method`` (or function, or ``<module>``), ``attr`` the
    attribute/name the finding is about (``-`` when not applicable).
    Line numbers are deliberately excluded so the baseline survives
    unrelated edits to the same file.
    """
    return "%s %s:%s:%s" % (code, module, qualifier, attr or "-")


def load_baseline(path: str) -> Set[str]:
    """Read a baseline file into a set of finding keys."""
    keys: Set[str] = set()
    with open(path, "r", encoding="utf-8") as handle:
        for raw in handle:
            line = raw.strip()
            if line and not line.startswith("#"):
                keys.add(line)
    return keys


def default_baseline_path() -> str:
    return os.path.join(os.getcwd(), DEFAULT_BASELINE_NAME)


def format_baseline(report: Report) -> str:
    """Render a report's concurrency findings as baseline file content.

    Keys come from the diagnostics' ``component`` field (the concurrency
    pass stores the finding key there); already-suppressed findings are
    included too, so regeneration is idempotent.
    """
    keys = sorted(
        {
            d.component
            for d in report.diagnostics
            if d.code.startswith("RSC6") and d.component
        }
    )
    lines = [
        "# CONCURRENCY_BASELINE.txt — triaged Pass-6 (RSC6xx) findings.",
        "#",
        "# Each key is `CODE module:Class.method:attr`. A listed finding is",
        "# demoted to a warning: it is real under threads but tolerated while",
        "# the code runs only inside the single-threaded event loop. The",
        "# demotion is revoked whenever the schedule-perturbation sanitizer",
        "# fails in the same `repro check` invocation. Regenerate with:",
        "#   repro check --concurrency --update-concurrency-baseline",
        "",
    ]
    lines.extend(keys)
    return "\n".join(lines) + "\n"


def apply_baseline(report: Report, baseline: Set[str]) -> Tuple[Report, List[str]]:
    """Demote baselined findings to warnings; returns the new report and
    the stale (unmatched) baseline keys."""
    matched: Set[str] = set()
    demoted = Report()
    for diagnostic in report.diagnostics:
        key = diagnostic.component or ""
        if diagnostic.severity is Severity.ERROR and key in baseline:
            matched.add(key)
            demoted.add(
                diagnostic.code,
                "%s %s" % (diagnostic.message, BASELINE_TAG),
                diagnostic.source,
                line=diagnostic.line,
                component=diagnostic.component,
                severity=Severity.WARNING,
            )
        else:
            demoted.diagnostics.append(diagnostic)
    return demoted, sorted(baseline - matched)


def promote_baseline_suppressed(report: Report) -> Tuple[Report, int]:
    """Re-promote ``[baseline]``-tagged warnings to errors.

    Called by the runner when the dynamic sanitizer failed: a finding
    that was tolerated because "the event loop serialises everything"
    loses that defence the moment a legal schedule breaks an invariant.
    Returns the rewritten report and the number of promotions.
    """
    promoted = Report()
    count = 0
    for diagnostic in report.diagnostics:
        if (
            diagnostic.severity is Severity.WARNING
            and diagnostic.message.endswith(BASELINE_TAG)
        ):
            count += 1
            promoted.add(
                diagnostic.code,
                diagnostic.message
                + " — promoted to error: the schedule-perturbation sanitizer "
                "failed, so event-loop atomicity no longer justifies the "
                "suppression",
                diagnostic.source,
                line=diagnostic.line,
                component=diagnostic.component,
                severity=Severity.ERROR,
            )
        else:
            promoted.diagnostics.append(diagnostic)
    return promoted, count


def live_rule_findings(report: Report) -> int:
    """Findings from the RSC6xx *rules* (not RSC600 hygiene) in a
    report, demoted or not — the debt the baseline exists to triage."""
    return sum(
        1
        for d in report.diagnostics
        if d.code.startswith("RSC6") and d.code != "RSC600"
    )


def report_stale_keys(report: Report, stale: List[str], baseline_path: str) -> None:
    """Report baseline keys no current finding matches.

    While live RSC6xx findings remain, a stale entry is a warning (the
    ledger is mid-drain and someone paid down a finding without
    deleting its key). Once the surface is clean — zero live findings —
    the baseline's job is done and any remaining entry is an **error**:
    the drained-to-empty state is a ratchet, and a file that silently
    re-grows entries would re-open the triage door the thread-readiness
    contract closed.
    """
    severity = (
        Severity.WARNING if live_rule_findings(report) else Severity.ERROR
    )
    for key in stale:
        suffix = (
            ""
            if severity is Severity.WARNING
            else " — the baseline is drained, so leftover entries are errors"
        )
        report.add(
            "RSC600",
            "stale baseline entry %r matches no current finding; remove it "
            "from %s%s" % (key, os.path.basename(baseline_path), suffix),
            baseline_path,
            severity=severity,
        )
