"""Pass 6 — shared-state and atomicity analysis (codes ``RSC6xx``).

Everything in ``repro.core`` / ``repro.sim`` / ``repro.runtime`` /
``repro.chord`` currently assumes single-threaded event-loop atomicity:
a handler runs to completion before the next one starts, so a
check-then-act, a ``+= 1``, or a module-global swap is safe *by
accident of the execution model*. The planned shared-memory backend
(ROADMAP: OS threads through real balancers) removes that accident.
This pass finds the code that depends on it:

``RSC601`` — stale read across a continuation boundary.
    A method reads ``self.X`` in a branch test, then registers a
    continuation (a ``_pending`` reply handler, an ``on_*`` callback, a
    scheduled closure) that acts on ``self.X`` without re-reading it in
    a test of its own. Between registration and execution, arbitrary
    events run; the captured decision is stale — the async flavour of
    check-then-act.

``RSC602`` — compound read-modify-write on shared counter state.
    ``self.count += 1``, ``self.stats.update(...)``,
    ``self.x = self.x + ...``, ``del self.pending[k]`` on
    counter/ledger-flavoured attributes outside the init path. Each is
    a load-modify-store that interleaves under threads; under the event
    loop it only *looks* atomic.

``RSC603`` — module-level mutable state mutated outside a designated
    swap point. ``global NAME`` rebinding, mutation of a module-level
    container, or ``module.CONST = ...`` from function scope. Swap
    points in the style of ``repro.obs.recorder.ACTIVE`` carry a
    ``# repro: thread-safe: <why>`` annotation on the mutation line.

``RSC604`` — escaping mutable alias.
    A mutable container created in ``__init__`` (``self.x = {}``) is
    handed to another object (constructor argument, method argument on
    a non-self receiver, or ``other.attr = self.x``). Two objects now
    share one unlocked structure; on an annotated thread-safe class
    this is reported as a contract violation, never suppressed.

``RSC605`` — epoch/ABA-guard coverage gap.
    In a class that maintains an epoch/version/incarnation attribute, a
    registered continuation touches instance state without comparing
    any epoch-flavoured value — generalizing the ``Envelope.sent_epoch``
    guard: the continuation may run against a different incarnation of
    the state it captured.

``RSC600`` marks analysis limitations and contract hygiene: unreadable
files (error), bare ``# repro: thread-safe`` markers with no
justification, and stale baseline entries (warnings).

Each finding's ``component`` field carries its stable *finding key*
(``CODE module:Class.method:attr``) — the currency of the baseline
suppression file (see :mod:`.contract`).
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.staticcheck.concurrency.accessmap import (
    ClassAccessMap,
    MethodAccess,
    ModuleMap,
    build_module_map,
    closure_access,
    is_init_method,
    self_attr,
)
from repro.staticcheck.concurrency.contract import (
    ThreadSafeAnnotations,
    apply_baseline,
    finding_key,
    report_stale_keys,
)
from repro.staticcheck.diagnostics import Report, Severity

#: Packages the pass analyzes by default — the thread-readiness surface:
#: everything the shared-memory backend (repro.threads) runs, plus the
#: backend itself.
DEFAULT_CONCURRENCY_PACKAGES: Tuple[str, ...] = (
    "repro.core",
    "repro.sim",
    "repro.runtime",
    "repro.chord",
    "repro.threads",
)

#: Attribute-name fragments that mark counter/ledger/balancer state —
#: the state the paper's data structures are *made of*, and exactly
#: what must become atomic (or sharded) under threads.
SHARED_STATE_FRAGMENTS: Tuple[str, ...] = (
    "count",
    "total",
    "stat",
    "pending",
    "owed",
    "inflight",
    "in_flight",
    "issued",
    "retired",
    "dropped",
    "toggle",
    "busy",
    "messages",
    "tokens",
    "balancer",
    "splits",
    "merges",
    "hops",
    "reroutes",
    "seq",
    "epoch",
    "cancelled",
    "events_run",
)

#: Callees through which a mutable argument does *not* escape (pure
#: readers/copiers).
_SAFE_CALLEES = frozenset(
    {
        "len",
        "list",
        "dict",
        "set",
        "tuple",
        "frozenset",
        "sorted",
        "sum",
        "min",
        "max",
        "any",
        "all",
        "enumerate",
        "iter",
        "next",
        "zip",
        "map",
        "filter",
        "repr",
        "str",
        "print",
        "copy",
        "deepcopy",
        "id",
        "isinstance",
        "bool",
        "reversed",
        "join",
        "get",
        "index",
        "extend",
        "update",
        "format",
        "fromkeys",
        "heappush",
        "heappop",
        "heapify",
        "insort",
        "insort_left",
        "insort_right",
        "bisect_left",
        "bisect_right",
    }
)

#: Receiver names that are stdlib modules/builtins, not objects that
#: could retain an alias (``bisect.insort(self._ids, x)`` mutates in
#: place but keeps no reference).
_SAFE_RECEIVERS = frozenset(
    {"dict", "list", "set", "tuple", "str", "heapq", "bisect", "math", "json", "os"}
)

_EPOCH_FRAGMENTS = ("epoch", "version", "incarnation", "generation")


def is_shared_state_name(attr: str) -> bool:
    lowered = attr.lower()
    return any(fragment in lowered for fragment in SHARED_STATE_FRAGMENTS)


def _mentions_epoch(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        name = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        if name is not None:
            lowered = name.lower()
            if any(fragment in lowered for fragment in _EPOCH_FRAGMENTS):
                return True
    return False


def default_concurrency_paths() -> List[str]:
    """Directory paths of the default packages in this install."""
    import repro

    root = os.path.dirname(os.path.abspath(repro.__file__))
    return [
        os.path.join(root, *package.split(".")[1:])
        for package in DEFAULT_CONCURRENCY_PACKAGES
    ]


def _module_name(filename: str) -> str:
    parts = os.path.normpath(filename).split(os.sep)
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    stem = [p for p in parts if p]
    if stem and stem[-1].endswith(".py"):
        stem[-1] = stem[-1][:-3]
    return ".".join(stem)


def _iter_python_files(paths: Iterable[str], report: Report) -> List[str]:
    files: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
            continue
        if not os.path.isdir(path):
            report.add("RSC600", "no such file or directory", path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d
                for d in dirnames
                if d not in ("__pycache__", "fixtures") and not d.startswith(".")
            )
            for name in sorted(filenames):
                if name.endswith(".py"):
                    files.append(os.path.join(dirpath, name))
    return files


# ----------------------------------------------------------------------
# per-rule checkers
# ----------------------------------------------------------------------
def _branch_test_reads(method: MethodAccess, before_line: int) -> Dict[str, int]:
    """``self`` attributes read inside if/while tests lexically before
    ``before_line`` (the check half of a check-then-act)."""
    reads: Dict[str, int] = {}
    for node in ast.walk(method.node):
        if isinstance(node, (ast.If, ast.While)) and node.lineno <= before_line:
            for sub in ast.walk(node.test):
                attr = self_attr(sub)
                if attr is not None and attr not in reads:
                    reads[attr] = node.lineno
    return reads


def _closure_revalidates(closure_node: ast.AST, attr: str) -> bool:
    """Whether the closure re-reads ``attr`` inside a test of its own."""
    for node in ast.walk(closure_node):
        if isinstance(node, (ast.If, ast.While)):
            for sub in ast.walk(node.test):
                if self_attr(sub) == attr:
                    return True
        # ``x = self.attr == captured`` style guards count too.
        if isinstance(node, ast.Compare):
            for sub in ast.walk(node):
                if self_attr(sub) == attr:
                    return True
    return False


def _check_rsc601(
    class_map: ClassAccessMap, module: str, report: Report, annotated: bool
) -> None:
    if annotated:
        return
    for method in class_map.methods.values():
        for registered in method.closures:
            checked = _branch_test_reads(method, registered.line)
            if not checked:
                continue
            inner = closure_access(registered.node)
            acted = set(inner.writes) | set(inner.compound)
            for attr in sorted(acted & set(checked)):
                if _closure_revalidates(registered.node, attr):
                    continue
                qualifier = "%s.%s" % (class_map.name, method.name)
                report.add(
                    "RSC601",
                    "continuation registered via %r writes self.%s, which "
                    "the enclosing method tested at line %d — the check is "
                    "stale by the time the continuation runs; re-validate "
                    "self.%s inside the continuation"
                    % (registered.via, attr, checked[attr], attr),
                    class_map.file,
                    line=registered.line,
                    component=finding_key("RSC601", module, qualifier, attr),
                )


def _check_rsc602(
    class_map: ClassAccessMap, module: str, report: Report, annotated: bool
) -> None:
    if annotated:
        return
    shared = class_map.shared_attrs()
    for method in class_map.methods.values():
        if is_init_method(method.name):
            continue
        for attr, lines in sorted(method.compound.items()):
            if not is_shared_state_name(attr):
                continue
            qualifier = "%s.%s" % (class_map.name, method.name)
            shared_note = (
                " (touched by %d methods)"
                % sum(
                    1
                    for m in class_map.methods.values()
                    if attr in m.reads or attr in m.writes or attr in m.compound
                )
                if attr in shared
                else ""
            )
            report.add(
                "RSC602",
                "compound read-modify-write on shared state self.%s%s is "
                "not atomic under threads; a lock, an atomic primitive, or "
                "a per-thread shard is needed before the threads backend "
                "can touch this class" % (attr, shared_note),
                class_map.file,
                line=lines[0],
                component=finding_key("RSC602", module, qualifier, attr),
            )


class _ModuleStateVisitor(ast.NodeVisitor):
    """RSC603: mutations of module-level state from function scope."""

    def __init__(
        self,
        module_map: ModuleMap,
        annotations: ThreadSafeAnnotations,
        imported_modules: Set[str],
        report: Report,
    ):
        self.module_map = module_map
        self.annotations = annotations
        self.imported_modules = imported_modules
        self.report = report
        self._function_stack: List[str] = []
        self._globals_declared: List[Set[str]] = []
        self._allowed_globals: List[Set[str]] = []

    # -- scope tracking -------------------------------------------------
    def _enter(self, name: str) -> None:
        self._function_stack.append(name)
        self._globals_declared.append(set())
        self._allowed_globals.append(set())

    def _exit(self) -> None:
        self._function_stack.pop()
        self._globals_declared.pop()
        self._allowed_globals.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter(node.name)
        try:
            self.generic_visit(node)
        finally:
            self._exit()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter(node.name)
        try:
            self.generic_visit(node)
        finally:
            self._exit()

    def visit_Global(self, node: ast.Global) -> None:
        if self._globals_declared:
            self._globals_declared[-1].update(node.names)
            # A justified annotation on the ``global`` declaration
            # blesses every rebinding of those names in this function —
            # the natural place to document a swap point once.
            allowed, justification = self.annotations.annotation_at(node.lineno)
            if allowed and justification:
                self._allowed_globals[-1].update(node.names)

    # -- findings -------------------------------------------------------
    def _qualifier(self) -> str:
        return ".".join(self._function_stack) if self._function_stack else "<module>"

    def _flag(self, line: int, name: str, how: str) -> None:
        allowed, justification = self.annotations.annotation_at(line)
        if allowed and justification:
            return
        if self._allowed_globals and name in set().union(*self._allowed_globals):
            return
        self.report.add(
            "RSC603",
            "%s mutates module-level state %r outside a designated init/"
            "swap path; under threads every reader races this write — "
            "annotate a deliberate swap point with '# repro: thread-safe: "
            "<why>' on the mutation line" % (how, name),
            self.module_map.filename,
            line=line,
            component=finding_key(
                "RSC603", self.module_map.module, self._qualifier(), name
            ),
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._function_stack:
            declared = set().union(*self._globals_declared)
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id in declared:
                    self._flag(node.lineno, target.id, "global rebinding")
                elif isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ):
                    name = target.value.id
                    if name in self.module_map.module_mutables:
                        self._flag(node.lineno, name, "subscript assignment")
                elif isinstance(target, ast.Attribute) and isinstance(
                    target.value, ast.Name
                ):
                    owner = target.value.id
                    if owner in self.imported_modules and target.attr.isupper():
                        self._flag(
                            node.lineno,
                            "%s.%s" % (owner, target.attr),
                            "cross-module attribute assignment",
                        )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if self._function_stack:
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in self.module_map.module_mutables
                and func.attr
                in ("append", "add", "update", "clear", "pop", "extend", "remove", "setdefault")
            ):
                self._flag(node.lineno, func.value.id, "container mutation")
        self.generic_visit(node)


def _check_rsc604(
    class_map: ClassAccessMap,
    module: str,
    report: Report,
    annotated: bool,
    justification: str,
    imported_modules: Set[str],
) -> None:
    mutable_attrs = {
        attr for attr, mutable in class_map.init_attrs.items() if mutable
    }
    if not mutable_attrs:
        return
    for method in class_map.methods.values():
        for node in ast.walk(method.node):
            escapes: List[Tuple[str, str]] = []  # (attr, how)
            if isinstance(node, ast.Call):
                func = node.func
                callee: Optional[str] = None
                receiver_retains = False
                if isinstance(func, ast.Name):
                    # A bare function call retains nothing unless it is a
                    # constructor building an object around the argument.
                    callee = func.id
                    receiver_retains = callee[:1].isupper()
                elif isinstance(func, ast.Attribute):
                    callee = func.attr
                    base = func.value
                    if isinstance(base, ast.Name) and base.id == "self":
                        receiver_retains = callee[:1].isupper()
                    elif self_attr(base) is not None:
                        receiver_retains = False  # self.x.method(self.y): intra-object
                    elif isinstance(base, ast.Name) and (
                        base.id in _SAFE_RECEIVERS or base.id in imported_modules
                    ):
                        # module.function(self.x) / dict.fromkeys(self.x):
                        # only a constructor access retains the alias.
                        receiver_retains = callee[:1].isupper()
                    else:
                        # another object's method receives the alias.
                        receiver_retains = True
                if (
                    callee is None
                    or callee in _SAFE_CALLEES
                    or not receiver_retains
                ):
                    continue
                constructor = callee[:1].isupper()
                for arg in node.args:
                    attr = self_attr(arg)
                    if attr in mutable_attrs:
                        assert attr is not None
                        how = (
                            "passed to constructor %s()" % callee
                            if constructor
                            else "passed to %s()" % callee
                        )
                        escapes.append((attr, how))
            elif isinstance(node, ast.Assign):
                value_attr = self_attr(node.value)
                if value_attr is not None and value_attr in mutable_attrs:
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and not (
                                isinstance(target.value, ast.Name)
                                and target.value.id == "self"
                            )
                        ):
                            escapes.append(
                                (value_attr, "aliased into %s" % ast.unparse(target))
                            )
            for attr, how in escapes:
                qualifier = "%s.%s" % (class_map.name, method.name)
                if annotated:
                    message = (
                        "thread-safe contract violated (%r): mutable "
                        "self.%s %s — an escaping alias can be mutated "
                        "outside this class's discipline, so the annotation "
                        "cannot hold" % (justification, attr, how)
                    )
                else:
                    message = (
                        "mutable container self.%s %s; two objects now share "
                        "one unlocked structure — pass a copy, an immutable "
                        "view, or move ownership" % (attr, how)
                    )
                report.add(
                    "RSC604",
                    message,
                    class_map.file,
                    line=node.lineno,
                    component=finding_key("RSC604", module, qualifier, attr),
                )


def _check_rsc605(
    class_map: ClassAccessMap, module: str, report: Report, annotated: bool
) -> None:
    if annotated or not class_map.epoch_attrs:
        return
    for method in class_map.methods.values():
        for registered in method.closures:
            inner = closure_access(registered.node)
            touched = set(inner.reads) | set(inner.writes) | set(inner.compound)
            state_touched = sorted(
                attr
                for attr in touched
                if attr not in class_map.epoch_attrs
            )
            if not state_touched:
                continue
            if _mentions_epoch(registered.node):
                continue
            qualifier = "%s.%s" % (class_map.name, method.name)
            report.add(
                "RSC605",
                "continuation registered via %r touches instance state "
                "(%s) without comparing a captured epoch, but the class "
                "maintains %s — the continuation may run against a "
                "different incarnation; capture the epoch at registration "
                "and compare before acting (the Envelope.sent_epoch "
                "pattern)"
                % (
                    registered.via,
                    ", ".join("self.%s" % a for a in state_touched[:3]),
                    ", ".join(sorted("self.%s" % a for a in class_map.epoch_attrs)),
                ),
                class_map.file,
                line=registered.line,
                component=finding_key(
                    "RSC605", module, qualifier, state_touched[0]
                ),
            )


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def check_source(
    source: str,
    filename: str = "<string>",
    module: Optional[str] = None,
    report: Optional[Report] = None,
) -> Report:
    """Run the static concurrency rules over one source buffer."""
    if report is None:
        report = Report()
    if module is None:
        module = _module_name(filename)
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        report.add(
            "RSC600", "syntax error: %s" % exc.msg, filename, line=exc.lineno or 1
        )
        return report
    annotations = ThreadSafeAnnotations(source)
    for line in annotations.bare_markers():
        report.add(
            "RSC600",
            "bare '# repro: thread-safe' marker with no justification; a "
            "contract needs a reason — write '# repro: thread-safe: <why>'",
            filename,
            line=line,
            component=finding_key("RSC600", module, "<module>", "-"),
            severity=Severity.WARNING,
        )
    module_map = build_module_map(tree, filename, module)
    imported_modules: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                imported_modules.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                # ``from x import y as z`` may bind a module object too;
                # treat any lowercase bare import as a candidate module.
                bound = alias.asname or alias.name
                if bound.islower():
                    imported_modules.add(bound)
    for class_map in module_map.classes:
        annotated, justification = annotations.annotation_at(class_map.line)
        annotated = annotated and bool(justification)
        _check_rsc601(class_map, module, report, annotated)
        _check_rsc602(class_map, module, report, annotated)
        _check_rsc604(
            class_map, module, report, annotated, justification, imported_modules
        )
        _check_rsc605(class_map, module, report, annotated)
    _ModuleStateVisitor(module_map, annotations, imported_modules, report).visit(tree)
    return report


def check_concurrency(
    paths: Optional[Sequence[str]] = None,
    baseline: Optional[Set[str]] = None,
    baseline_path: str = "",
) -> Report:
    """Run Pass 6 over ``paths`` (default: the four runtime packages).

    With a ``baseline`` set, matching findings are demoted to tagged
    warnings and stale keys are reported (see :mod:`.contract`).
    """
    report = Report()
    if paths is None:
        paths = default_concurrency_paths()
    for filename in _iter_python_files(paths, report):
        try:
            with open(filename, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            report.add("RSC600", "cannot read file: %s" % exc, filename)
            continue
        check_source(source, filename, report=report)
    if baseline is not None:
        report, stale = apply_baseline(report, baseline)
        report_stale_keys(report, stale, baseline_path or "<baseline>")
    return report
