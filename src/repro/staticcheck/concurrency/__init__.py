"""Pass 6 — concurrency: static race rules + schedule-perturbation sanitizer.

Static half (:mod:`.rules`): AST access maps over the runtime packages
flag check-then-act across continuations (RSC601), non-atomic compound
updates to shared counter state (RSC602), module-global mutation outside
designated swap points (RSC603), escaping mutable aliases (RSC604), and
epoch-guard coverage gaps (RSC605) — the debt the single-threaded event
loop currently hides, due before the threads backend (ROADMAP).

Dynamic half (:mod:`.sanitize`): re-runs the seeded bench scenarios
under adversarial same-timestamp reordering and reports invariant
breaks (RSC610) and schedule-given nondeterminism (RSC611).

The two halves meet in the triage contract (:mod:`.contract`):
``# repro: thread-safe`` annotations are verified rather than trusted,
and baseline-suppressed static findings lose their suppression when the
sanitizer fails in the same invocation.
"""

from repro.staticcheck.concurrency.contract import (
    DEFAULT_BASELINE_NAME,
    THREAD_SAFE_MARKER,
    ThreadSafeAnnotations,
    apply_baseline,
    default_baseline_path,
    finding_key,
    format_baseline,
    load_baseline,
    promote_baseline_suppressed,
)
from repro.staticcheck.concurrency.rules import (
    DEFAULT_CONCURRENCY_PACKAGES,
    check_concurrency,
    check_source,
    default_concurrency_paths,
)
from repro.staticcheck.concurrency.sanitize import (
    DEFAULT_SANITIZE_SEEDS,
    SanitizerConfig,
    SanitizerOutcome,
    fingerprint,
    run_sanitizer,
)

__all__ = [
    "DEFAULT_BASELINE_NAME",
    "DEFAULT_CONCURRENCY_PACKAGES",
    "DEFAULT_SANITIZE_SEEDS",
    "SanitizerConfig",
    "SanitizerOutcome",
    "THREAD_SAFE_MARKER",
    "ThreadSafeAnnotations",
    "apply_baseline",
    "check_concurrency",
    "check_source",
    "default_baseline_path",
    "default_concurrency_paths",
    "finding_key",
    "fingerprint",
    "format_baseline",
    "load_baseline",
    "promote_baseline_suppressed",
    "run_sanitizer",
]
