"""An adaptive *periodic* counting network, via the generic framework.

Structure
---------
``PERIODIC[w]`` is ``log w`` identical ``BLOCK[w]`` networks in series
(see :mod:`repro.core.periodic`). The recursive decomposition:

* ``P[w]`` (the whole network) -> ``log w`` ``BLOCK[w]`` children, wired
  in series;
* ``BLOCK[k]`` -> one reflection layer ``R[k]`` feeding a top and a
  bottom ``BLOCK[k/2]``; ``BLOCK[2]`` is a balancer leaf;
* ``R[k]`` (the layer pairing wire ``i`` with ``k-1-i``) -> two
  ``R[k/2]`` pieces: balancers ``0..k/4-1`` (outer quarter wires) and
  ``k/4..k/2-1`` (inner quarter wires); ``R[2]`` is a balancer leaf.

Unlike the bitonic tree, children are not always half the parent's
width (a block's reflection layer spans all ``k`` wires) and leaves sit
at non-uniform depths — both are exercised deliberately, since the
paper's closing claim is that the technique applies to *any* recursive
decomposition.

Empirical finding (validating the paper's claim)
------------------------------------------------
The analogue of Theorem 2.1 holds empirically for the periodic
decomposition too: *every* cut of the periodic tree, with
single-counter components, produced step-property (indeed perfectly
balanced) outputs in exhaustive enumeration at width 4 (all 10 cuts x
all workloads), randomised cut/workload sweeps at widths 8-32, skewed
single-wire loads, and random split/merge histories — zero violations.
The fully-split cut is wire-for-wire the classic periodic network of
:mod:`repro.core.periodic`. We emphasise this is an *empirical*
validation: the paper's Theorem 2.1 proof technique would need to be
redone per structure (the bench ``benchmarks/test_ext_periodic.py``
records the evidence).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.wiring import BoundaryRef, PortRef, WiringBase
from repro.errors import StructureError
from repro.ext.recursive import GenericSpec, GenericTree, RecursiveStructure

PERIODIC = "P"
BLOCK = "B"
REFLECT = "R"


class PeriodicStructure(RecursiveStructure):
    """The recursive decomposition of ``PERIODIC[w]``."""

    def __init__(self, width: int):
        if width < 2 or width & (width - 1):
            raise StructureError("width must be a power of two >= 2, got %d" % width)
        self.width = width

    def root_kind(self) -> str:
        return PERIODIC

    def child_kinds(self, kind: str, width: int) -> List[Tuple[str, int]]:
        if kind == PERIODIC:
            if width == 2:
                return []  # PERIODIC[2] is a single balancer
            blocks = width.bit_length() - 1
            return [(BLOCK, width)] * blocks
        if kind == BLOCK:
            if width == 2:
                return []
            return [(REFLECT, width), (BLOCK, width // 2), (BLOCK, width // 2)]
        if kind == REFLECT:
            if width == 2:
                return []
            return [(REFLECT, width // 2), (REFLECT, width // 2)]
        raise StructureError("unknown periodic component kind %r" % (kind,))


class PeriodicWiring(WiringBase):
    """Local wiring of the periodic decomposition."""

    def parent_input_dest(self, parent: GenericSpec, port: int) -> PortRef:
        k = parent.width
        if not 0 <= port < k:
            raise StructureError("input port %d out of range for %s" % (port, parent))
        if parent.kind == PERIODIC:
            return PortRef(child=0, port=port)  # into the first block
        if parent.kind == BLOCK:
            return PortRef(child=0, port=port)  # into the reflection layer
        # REFLECT[k]: outer quarter wires to child 0, inner to child 1.
        quarter = k // 4
        if port < quarter:
            return PortRef(child=0, port=port)
        if port < 2 * quarter:
            return PortRef(child=1, port=port - quarter)
        if port < 3 * quarter:
            return PortRef(child=1, port=port - quarter)
        return PortRef(child=0, port=port - k // 2)

    def child_output_dest(self, parent: GenericSpec, child_index: int, port: int):
        k = parent.width
        if parent.kind == PERIODIC:
            if not 0 <= port < k:
                raise StructureError("port %d out of range" % port)
            if child_index < parent.num_children() - 1:
                return PortRef(child=child_index + 1, port=port)
            return BoundaryRef(port=port)
        if parent.kind == BLOCK:
            if child_index == 0:  # the reflection layer, width k
                if not 0 <= port < k:
                    raise StructureError("port %d out of range" % port)
                if port < k // 2:
                    return PortRef(child=1, port=port)
                return PortRef(child=2, port=port - k // 2)
            if not 0 <= port < k // 2:
                raise StructureError("port %d out of range" % port)
            if child_index == 1:
                return BoundaryRef(port=port)
            if child_index == 2:
                return BoundaryRef(port=k // 2 + port)
        if parent.kind == REFLECT:
            half = k // 2
            if not 0 <= port < half:
                raise StructureError("port %d out of range" % port)
            if child_index == 0:  # outer wires: first and last quarters
                if port < half // 2:
                    return BoundaryRef(port=port)
                return BoundaryRef(port=port + half)
            if child_index == 1:  # inner wires: middle two quarters
                return BoundaryRef(port=half // 2 + port)
        raise StructureError("invalid child index %d for %s" % (child_index, parent))

    def parent_input_source(self, parent: GenericSpec, child_index: int, port: int):
        k = parent.width
        if parent.kind == PERIODIC:
            return port if child_index == 0 else None
        if parent.kind == BLOCK:
            return port if child_index == 0 else None
        # REFLECT
        quarter = k // 4
        if child_index == 0:
            return port if port < quarter else port + k // 2
        if child_index == 1:
            return port + quarter
        raise StructureError("invalid child index %d for %s" % (child_index, parent))


def periodic_tree(width: int) -> GenericTree:
    """The decomposition tree of ``PERIODIC[width]``."""
    return GenericTree(PeriodicStructure(width))


def block_level_cut_paths(tree: GenericTree) -> List[Tuple[int, ...]]:
    """The cut deploying each ``BLOCK[w]`` as one component."""
    return [child.path for child in tree.root.children()]
