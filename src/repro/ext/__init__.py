"""Extensions beyond the paper's core construction.

The paper closes its abstract with: *"our technique could be applied to
build an adaptive implementation of any distributed data structure
which can be decomposed in a recursive way."* This subpackage takes
that claim seriously:

* :mod:`repro.ext.recursive` — a generic recursive-decomposition
  framework: declare a structure's component kinds, children and local
  wiring, and get trees, cuts, counter-component networks, split/merge
  state transfer and effective metrics for free (the same machinery the
  bitonic core uses);
* :mod:`repro.ext.periodic_adaptive` — the framework instantiated for
  the *periodic* counting network; every cut of it counted in our
  (exhaustive-at-small-width) experiments, empirically extending
  Theorem 2.1 beyond the bitonic case.
"""

from repro.ext.recursive import GenericSpec, GenericTree, RecursiveStructure
from repro.ext.periodic_adaptive import (
    PeriodicStructure,
    PeriodicWiring,
    periodic_tree,
)

__all__ = [
    "GenericSpec",
    "GenericTree",
    "RecursiveStructure",
    "PeriodicStructure",
    "PeriodicWiring",
    "periodic_tree",
]
