"""A generic recursive-decomposition framework (the paper's last claim).

The bitonic machinery in :mod:`repro.core` needs surprisingly little
from the bitonic network specifically: a tree of components with widths
and child lists, plus three local wiring maps per internal node. This
module packages exactly that contract:

* subclass :class:`RecursiveStructure` to declare the component kinds
  and their children;
* subclass :class:`~repro.core.wiring.WiringBase` to declare the local
  wiring (``parent_input_dest`` / ``child_output_dest`` /
  ``parent_input_source``);
* everything else — :class:`~repro.core.cut.Cut` validation,
  :class:`~repro.core.cut.CutNetwork` execution with single-counter
  components, exact split/merge state transfer, and the effective
  width/depth metrics — is inherited unchanged.

Unlike the bitonic tree, generic trees may have children of arbitrary
widths (not only half the parent's) and leaves at non-uniform depths.
The only ordering requirement is that each node's child list is
topologically ordered with respect to its internal wiring (child ``i``
never feeds child ``j < i``), which the split replay relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.errors import StructureError

Path = Tuple[int, ...]


class RecursiveStructure:
    """Declares a recursively decomposable network structure."""

    #: The network width (input wires == output wires).
    width: int

    def root_kind(self) -> str:  # pragma: no cover - interface
        raise NotImplementedError

    def child_kinds(self, kind: str, width: int) -> List[Tuple[str, int]]:
        """(kind, width) of each child; empty list for leaves.

        Must be topologically ordered w.r.t. the local wiring.
        """
        raise NotImplementedError  # pragma: no cover - interface


@dataclass(frozen=True)
class GenericSpec:
    """A node of a generic decomposition tree.

    Equality and hashing use (kind, width, path) only, so specs behave
    like :class:`~repro.core.decomposition.ComponentSpec` values.
    """

    kind: str
    width: int
    path: Path
    structure: RecursiveStructure = field(compare=False, repr=False)

    @property
    def level(self) -> int:
        return len(self.path)

    @property
    def is_leaf(self) -> bool:
        return not self.structure.child_kinds(self.kind, self.width)

    def num_children(self) -> int:
        return len(self.structure.child_kinds(self.kind, self.width))

    def child(self, index: int) -> "GenericSpec":
        kinds = self.structure.child_kinds(self.kind, self.width)
        if not 0 <= index < len(kinds):
            raise StructureError(
                "child index %d out of range for %s (%d children)"
                % (index, self, len(kinds))
            )
        kind, width = kinds[index]
        return GenericSpec(kind, width, self.path + (index,), self.structure)

    def children(self) -> List["GenericSpec"]:
        return [self.child(i) for i in range(self.num_children())]

    def label(self) -> str:
        return "%s[%d]@%s" % (
            self.kind,
            self.width,
            ",".join(map(str, self.path)) or "root",
        )

    def __str__(self):
        return self.label()


class GenericTree:
    """The virtual decomposition tree of a :class:`RecursiveStructure`.

    Duck-type compatible with
    :class:`~repro.core.decomposition.DecompositionTree` for everything
    :class:`~repro.core.cut.Cut` and
    :class:`~repro.core.cut.CutNetwork` need.
    """

    def __init__(self, structure: RecursiveStructure):
        self.structure = structure
        self.width = structure.width
        self.root = GenericSpec(structure.root_kind(), structure.width, (), structure)

    def node(self, path: Path) -> GenericSpec:
        spec = self.root
        for index in path:
            spec = spec.child(index)
        return spec

    def parent(self, spec: GenericSpec) -> Optional[GenericSpec]:
        if not spec.path:
            return None
        return self.node(spec.path[:-1])

    def ancestors(self, spec: GenericSpec) -> Iterator[GenericSpec]:
        path = spec.path
        while path:
            path = path[:-1]
            yield self.node(path)

    def iter_preorder(self) -> Iterator[GenericSpec]:
        stack = [self.root]
        while stack:
            spec = stack.pop()
            yield spec
            if not spec.is_leaf:
                stack.extend(reversed(spec.children()))

    def iter_level(self, level: int) -> Iterator[GenericSpec]:
        for spec in self.iter_preorder():
            if spec.level == level:
                yield spec

    @property
    def max_level(self) -> int:
        """Deepest leaf level (leaves may sit at different levels)."""
        return max(spec.level for spec in self.iter_preorder() if spec.is_leaf)

    def size(self) -> int:
        return sum(1 for _ in self.iter_preorder())

    def phi(self, level: int) -> int:
        """Number of components at ``level`` (by traversal, cached).

        The generic analogue of the bitonic ``phi`` the splitting and
        merging rules consume; computed lazily because generic trees are
        small enough to enumerate.
        """
        if not hasattr(self, "_phi_cache"):
            census: dict = {}
            for spec in self.iter_preorder():
                census[spec.level] = census.get(spec.level, 0) + 1
            self._phi_cache = census
        if level not in self._phi_cache:
            raise StructureError("level %d beyond the tree depth" % level)
        return self._phi_cache[level]

    def preorder_index(self, spec: GenericSpec) -> int:
        """Pre-order name of a component (by traversal; generic trees
        are small enough that arithmetic shortcuts are not needed)."""
        for index, candidate in enumerate(self.iter_preorder()):
            if candidate == spec:
                return index
        raise StructureError("%s is not a node of this tree" % (spec,))
