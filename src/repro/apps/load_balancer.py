"""Load balancing through the counting network (Section 1.1).

Jobs are tokens; output wire ``j`` is bound to server ``j mod
num_servers``. The step property guarantees that in any quiescent state
the per-wire (hence per-server) job counts differ by at most one —
balance that holds *regardless of which clients submitted how many
jobs*, which is the property a hash-based balancer does not give.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import ProtocolError
from repro.runtime.system import AdaptiveCountingSystem
from repro.runtime.tokens import Token


class LoadBalancer:
    """Assigns submitted jobs to servers via the network's output wires."""

    def __init__(self, system: AdaptiveCountingSystem, num_servers: Optional[int] = None):
        if num_servers is None:
            num_servers = system.width
        if not 1 <= num_servers <= system.width:
            raise ProtocolError(
                "num_servers must be in [1, width=%d], got %d"
                % (system.width, num_servers)
            )
        self.system = system
        self.num_servers = num_servers
        self.assignments: Dict[int, int] = {}  # job id -> server
        self.server_loads: List[int] = [0] * num_servers
        self._job_names: Dict[int, str] = {}  # token id -> job name
        self._callbacks: Dict[int, Callable[[str, int], None]] = {}
        system.on_retire(self._on_retire)

    def _on_retire(self, token: Token) -> None:
        name = self._job_names.pop(token.token_id, None)
        if name is None:
            return  # not one of ours
        server = token.exit_wire % self.num_servers
        self.assignments[token.token_id] = server
        self.server_loads[server] += 1
        callback = self._callbacks.pop(token.token_id, None)
        if callback is not None:
            callback(name, server)

    def submit(
        self,
        job_name: str,
        wire: Optional[int] = None,
        on_assigned: Optional[Callable[[str, int], None]] = None,
    ) -> Token:
        """Submit a job from any client; it will be assigned a server."""
        token = self.system.inject_token(wire)
        self._job_names[token.token_id] = job_name
        if on_assigned is not None:
            self._callbacks[token.token_id] = on_assigned
        return token

    def settle(self) -> List[int]:
        """Run to quiescence; returns per-server loads."""
        self.system.run_until_quiescent()
        return list(self.server_loads)

    def imbalance(self) -> int:
        """Max minus min server load (0 or 1 when ``num_servers`` divides
        the width and the system is quiescent)."""
        return max(self.server_loads) - min(self.server_loads)
