"""Applications built on the adaptive counting network (Section 1.1).

* :mod:`repro.apps.counter` — a scalable distributed counter;
* :mod:`repro.apps.load_balancer` — spreading jobs over servers through
  the network's balanced output wires;
* :mod:`repro.apps.producer_consumer` — matching supply and request
  tokens with two back-to-back counting networks, as in [AHS94].
"""

from repro.apps.counter import DistributedCounter
from repro.apps.load_balancer import LoadBalancer
from repro.apps.producer_consumer import ProducerConsumerMatcher

__all__ = ["DistributedCounter", "LoadBalancer", "ProducerConsumerMatcher"]
