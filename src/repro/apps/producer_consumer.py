"""Producer-consumer matching with two back-to-back counting networks.

Section 1.1: "consumers may asynchronously generate *request tokens* ...
producers may asynchronously generate *supply tokens* ... this
producer-consumer matching problem can be solved by using two back to
back counting networks, one for producers and the other for consumers."

Supply token number ``i`` (the value the producers' network assigns) is
matched with request token number ``i`` from the consumers' network: the
two networks implement a pair of distributed counters, and equal counter
values rendezvous at a mailbox ``i mod width``. The step property of
both networks guarantees every request is matched with exactly one
supply (in order of counter values) no matter how production and
consumption interleave.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.runtime.system import AdaptiveCountingSystem
from repro.runtime.tokens import Token


@dataclass(frozen=True)
class Match:
    """One supply-request rendezvous."""

    rank: int  # the shared counter value
    producer: str
    consumer: str


class ProducerConsumerMatcher:
    """Matches producers' supply with consumers' requests."""

    def __init__(
        self,
        supply_system: AdaptiveCountingSystem,
        request_system: AdaptiveCountingSystem,
    ):
        if supply_system is request_system:
            raise ValueError("supply and request networks must be distinct")
        self.supply_system = supply_system
        self.request_system = request_system
        self._supply_names: Dict[int, str] = {}
        self._request_names: Dict[int, str] = {}
        self._waiting_supply: Dict[int, str] = {}  # rank -> producer
        self._waiting_request: Dict[int, str] = {}  # rank -> consumer
        self.matches: List[Match] = []
        supply_system.on_retire(self._supply_retired)
        request_system.on_retire(self._request_retired)

    # ------------------------------------------------------------------
    # token plumbing
    # ------------------------------------------------------------------
    def _supply_retired(self, token: Token) -> None:
        name = self._supply_names.pop(token.token_id, None)
        if name is None:
            return
        rank = token.value
        consumer = self._waiting_request.pop(rank, None)
        if consumer is None:
            self._waiting_supply[rank] = name
        else:
            self.matches.append(Match(rank, name, consumer))

    def _request_retired(self, token: Token) -> None:
        name = self._request_names.pop(token.token_id, None)
        if name is None:
            return
        rank = token.value
        producer = self._waiting_supply.pop(rank, None)
        if producer is None:
            self._waiting_request[rank] = name
        else:
            self.matches.append(Match(rank, producer, name))

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def offer(self, producer: str, wire: Optional[int] = None) -> Token:
        """A producer announces one unit of supply."""
        token = self.supply_system.inject_token(wire)
        self._supply_names[token.token_id] = producer
        return token

    def request(self, consumer: str, wire: Optional[int] = None) -> Token:
        """A consumer requests one unit."""
        token = self.request_system.inject_token(wire)
        self._request_names[token.token_id] = consumer
        return token

    def settle(self) -> Tuple[int, int, int]:
        """Run both systems to quiescence; returns
        ``(matches, unmatched_supply, unmatched_requests)``."""
        self.supply_system.run_until_quiescent()
        self.request_system.run_until_quiescent()
        return len(self.matches), len(self._waiting_supply), len(self._waiting_request)
