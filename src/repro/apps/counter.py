"""A scalable distributed counter (Section 1.1, first application).

"In a large scale distributed system, a counting network can be used to
generate consecutive token numbers on demand in a parallel and
distributed manner." The counter wraps a running
:class:`~repro.runtime.system.AdaptiveCountingSystem`: each ``next()``
call injects a token; the value the token retires with is the counter
value. Batched asynchronous use (many outstanding requests) is the mode
the network is built for — values return out of order but form a
gap-free range once quiescent.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ProtocolError
from repro.runtime.system import AdaptiveCountingSystem
from repro.runtime.tokens import Token


class DistributedCounter:
    """Consecutive token numbers on demand, on top of the network."""

    def __init__(self, system: AdaptiveCountingSystem):
        self.system = system
        self._values: List[int] = []
        self._pending: Dict[int, Token] = {}
        system.on_retire(self._on_retire)

    def _on_retire(self, token: Token) -> None:
        if token.token_id in self._pending:
            del self._pending[token.token_id]
            self._values.append(token.value)

    # ------------------------------------------------------------------
    # synchronous API
    # ------------------------------------------------------------------
    def next(self) -> int:
        """Get the next counter value (runs the system to quiescence)."""
        token = self.system.inject_token()
        self._pending[token.token_id] = token
        self.system.run_until_quiescent()
        if token.value is None:
            raise ProtocolError("counter token %d lost" % token.token_id)
        return token.value

    # ------------------------------------------------------------------
    # asynchronous (batched) API
    # ------------------------------------------------------------------
    def request(self, wire: Optional[int] = None) -> Token:
        """Issue a counter request without waiting; the value appears on
        the token once it retires."""
        token = self.system.inject_token(wire)
        self._pending[token.token_id] = token
        return token

    def settle(self) -> List[int]:
        """Run to quiescence and return all values obtained so far."""
        self.system.run_until_quiescent()
        return sorted(self._values)

    @property
    def outstanding(self) -> int:
        """Requests issued but not yet retired."""
        return len(self._pending)
