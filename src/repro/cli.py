"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``
    Run the grow/converge/shrink lifecycle and print what happens.
``tree``
    Print the decomposition tree ``T_w`` (optionally with a cut).
``run``
    Build a system, converge it, push tokens, print metrics and the
    output histogram.
``estimate``
    Show the Section 3.1 size-estimation accuracy for a given N.
``check``
    Static invariant analysis (``repro.staticcheck``): certify network
    structure and the step property for small widths, validate cuts,
    lint the codebase (``--lint``), verify protocol message flow
    (``--protocol``), bounded-model-check the Chord/runtime protocols
    over all small-scope schedules (``--model-check``), run the Pass-6
    shared-state/atomicity rules (``--concurrency``) and the
    schedule-perturbation sanitizer (``--sanitize[=N]``), or print the
    long-form explanation of any diagnostic code (``--explain``).
``bench``
    Seeded performance scenarios (``repro.bench``): token routing
    (table fast path vs linear scan), batch counts, inject-to-retire
    under churn, and convergence; emits ``BENCH_*.json`` and gates
    against a committed baseline (``--baseline``). ``--trace`` /
    ``--metrics-out`` install a ``repro.obs`` recorder for the run and
    export a Chrome trace / metrics JSONL.
``trace``
    Record one fully traced inject-under-churn run (``repro.obs``) and
    export it as Chrome ``trace_event`` JSON (Perfetto-loadable) plus
    optional metrics JSONL.
``smoke``
    Run the declarative scenario library (``repro.scenarios``) as a
    parallel matrix of worker processes — per-scenario CPU and wall
    budgets, crashes and verify-failures reported distinctly — and
    check every scenario's trace-hash fingerprint against the
    committed ``SCENARIO_FINGERPRINTS.json``
    (``--update-fingerprints`` regenerates it).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.render import render_network, render_step_histogram, render_tree
from repro.chord.estimation import SizeEstimator
from repro.chord.ring import ChordRing
from repro.core.cut import Cut, CutNetwork
from repro.core.decomposition import DecompositionTree
from repro.errors import StructureError
from repro.runtime.system import AdaptiveCountingSystem


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--width", type=int, default=64, help="network width (power of two)")
    parser.add_argument("--seed", type=int, default=0, help="random seed")


def cmd_demo(args) -> int:
    system = AdaptiveCountingSystem(width=args.width, seed=args.seed)
    print("start: 1 node, 1 component (the whole BITONIC[%d])" % args.width)
    for target in (args.nodes // 4 or 2, args.nodes):
        while system.num_nodes < target:
            system.add_node()
        system.converge()
        metrics = system.metrics()
        print(
            "N=%-4d components=%-4d effective width=%-3d depth=%-3d splits=%d merges=%d"
            % (
                system.num_nodes,
                metrics.num_components,
                metrics.effective_width,
                metrics.effective_depth,
                system.stats.splits,
                system.stats.merges,
            )
        )
    values = [system.next_value() for _ in range(10)]
    print("ten counter values:", values)
    while system.num_nodes > 2:
        system.remove_node()
    system.converge()
    print(
        "shrunk to N=%d: components=%d merges=%d"
        % (system.num_nodes, len(system.directory), system.stats.merges)
    )
    system.verify()
    print("invariants verified")
    return 0


def cmd_tree(args) -> int:
    tree = DecompositionTree(args.width)
    cut = None
    if args.level is not None:
        cut = Cut.level(tree, args.level)
    print(render_tree(tree, cut, max_depth=args.depth))
    if cut is not None:
        print()
        print(render_network(CutNetwork(cut)))
    return 0


def cmd_run(args) -> int:
    system = AdaptiveCountingSystem(
        width=args.width, seed=args.seed, initial_nodes=args.nodes
    )
    system.converge()
    for _ in range(args.tokens):
        system.inject_token()
    system.run_until_quiescent()
    metrics = system.metrics()
    print(
        "N=%d components=%d effective width=%d depth=%d"
        % (system.num_nodes, metrics.num_components, metrics.effective_width, metrics.effective_depth)
    )
    print(
        "tokens=%d mean hops=%.2f mean latency=%.2f messages=%d"
        % (
            system.token_stats.retired,
            system.token_stats.mean_hops,
            system.token_stats.mean_latency,
            system.bus.messages_sent,
        )
    )
    print(render_step_histogram(system.output_counts))
    system.verify()
    return 0


def cmd_estimate(args) -> int:
    ring = ChordRing(seed=args.seed)
    for _ in range(args.nodes):
        ring.join()
    estimator = SizeEstimator(ring)
    estimates = [estimator.size_estimate(node.node_id) for node in ring.nodes()]
    inside = sum(1 for e in estimates if args.nodes / 10 <= e <= 10 * args.nodes)
    print("N=%d  estimates: min=%.1f max=%.1f" % (args.nodes, min(estimates), max(estimates)))
    print(
        "within [N/10, 10N]: %d/%d (%.2f%%)"
        % (inside, len(estimates), 100.0 * inside / len(estimates))
    )
    return 0


def _load_mc_module(spec: str):
    """Import the module supplying model-check factories.

    Accepts a dotted module name or a ``.py`` file path; the module may
    define ``network_factory`` and/or ``system_factory`` callables that
    build the subject under test (used by the negative fixtures).
    """
    import importlib
    import importlib.util

    if spec.endswith(".py"):
        module_spec = importlib.util.spec_from_file_location("repro_mc_subject", spec)
        if module_spec is None or module_spec.loader is None:
            raise StructureError("cannot load model-check module %r" % spec)
        module = importlib.util.module_from_spec(module_spec)
        sys.modules["repro_mc_subject"] = module
        module_spec.loader.exec_module(module)
        return module
    return importlib.import_module(spec)


def cmd_check(args) -> int:
    from repro.core.wiring import MergerConvention
    from repro.staticcheck.runner import run_check

    if args.explain is not None:
        from repro.staticcheck.explain import explain

        rendered = explain(args.explain)
        if rendered is None:
            print(
                "repro check: error: unknown diagnostic code %r (see "
                "repro.staticcheck.diagnostics.KNOWN_CODES)" % args.explain,
                file=sys.stderr,
            )
            return 2
        print(rendered)
        return 0

    sanitize_seeds = None
    if args.sanitize_seeds is not None:
        sanitize_seeds = args.sanitize_seeds
    elif args.sanitize is not None:
        if args.sanitize < 1:
            print(
                "repro check: error: --sanitize needs at least 1 seed",
                file=sys.stderr,
            )
            return 2
        sanitize_seeds = list(range(1, args.sanitize + 1))

    convention = (
        MergerConvention.PAPER_PROSE
        if args.convention == "paper-prose"
        else MergerConvention.AHS94
    )
    model_config = None
    if args.model_check:
        from repro.staticcheck.protocol.model import ModelCheckConfig

        factories = {}
        if args.mc_module:
            try:
                subject = _load_mc_module(args.mc_module)
            except Exception as exc:
                print("repro check: error: %s" % exc, file=sys.stderr)
                return 2
            for name in ("network_factory", "system_factory"):
                factory = getattr(subject, name, None)
                if factory is not None:
                    factories[name] = factory
        try:
            model_config = ModelCheckConfig(
                max_nodes=args.max_nodes, depth=args.mc_depth, **factories
            )
        except ValueError as exc:
            print("repro check: error: %s" % exc, file=sys.stderr)
            return 2
    try:
        run = run_check(
            widths=args.width,
            convention=convention,
            lint=args.lint,
            certify=not args.no_certify,
            protocol=args.protocol,
            protocol_paths=args.protocol_paths,
            model_check=args.model_check,
            model_config=model_config,
            concurrency=args.concurrency,
            concurrency_paths=args.concurrency_paths,
            concurrency_baseline=args.concurrency_baseline,
            update_concurrency_baseline=args.update_concurrency_baseline,
            allow_baseline_growth=args.allow_baseline_growth,
            ownership=args.ownership,
            ownership_paths=args.ownership_paths,
            thread_ready=args.thread_ready,
            sanitize_seeds=sanitize_seeds,
            sanitize_profile=args.sanitize_profile,
            sanitize_jitter=args.sanitize_jitter,
            sanitize_scenarios=args.sanitize_scenarios,
        )
    except StructureError as exc:
        print("repro check: error: %s" % exc, file=sys.stderr)
        return 2
    if args.json:
        import json

        print(json.dumps(run.to_json_payload(), indent=2))
    else:
        if run.report.diagnostics:
            print(run.report.format())
        print(run.summary())
    return run.exit_code


def cmd_bench(args) -> int:
    import json
    from contextlib import nullcontext

    from repro.bench import (
        compare_to_baseline,
        format_results,
        run_bench,
        to_json_payload,
    )
    from repro.errors import BenchmarkError

    if args.backend == "threads":
        return _bench_threads(args)
    if args.scenario:
        # Validate the selection up front against everything this
        # backend can actually run — the hand-coded bench scenarios
        # plus the declarative library — so a typo exits immediately
        # with the full valid set instead of failing mid-run.
        from repro.bench.scenarios import SCENARIOS
        from repro.scenarios.registry import library_names

        dsl_names = library_names()
        unknown = sorted(set(args.scenario) - set(SCENARIOS) - set(dsl_names))
        if unknown:
            print(
                "repro bench: error: unknown scenario(s) %s\n"
                "  bench scenarios: %s\n"
                "  library scenarios: %s"
                % (
                    ", ".join(unknown),
                    ", ".join(sorted(SCENARIOS)),
                    ", ".join(dsl_names),
                ),
                file=sys.stderr,
            )
            return 2
    recorder = None
    if args.trace or args.metrics_out:
        from repro.obs import Recorder
        from repro.obs.recorder import recording

        try:
            recorder = Recorder(
                trace=bool(args.trace), sample_every=args.trace_sample
            )
        except ValueError as exc:
            print("repro bench: error: %s" % exc, file=sys.stderr)
            return 2
    scope = recording(recorder) if recorder is not None else nullcontext()
    try:
        with scope:
            results = run_bench(
                profile=args.profile, seed=args.seed, only=args.scenario
            )
    except BenchmarkError as exc:
        print("repro bench: error: %s" % exc, file=sys.stderr)
        return 2
    if recorder is not None:
        from repro.obs import write_chrome_trace, write_metrics_jsonl

        if args.trace:
            write_chrome_trace(recorder.trace, args.trace, metrics=recorder.metrics)
            print("trace written to %s" % args.trace, file=sys.stderr)
        if args.metrics_out:
            write_metrics_jsonl(recorder.metrics, args.metrics_out)
            print("metrics written to %s" % args.metrics_out, file=sys.stderr)
    payload = to_json_payload(results, args.profile, args.seed)
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(format_results(results))
    exit_code = 0
    if args.baseline:
        try:
            with open(args.baseline) as handle:
                baseline = json.load(handle)
            ok, lines, missing = compare_to_baseline(
                results, baseline, max_regression=args.max_regression
            )
        except (OSError, ValueError, BenchmarkError) as exc:
            print("repro bench: error: %s" % exc, file=sys.stderr)
            return 2
        report = "baseline %s:\n%s" % (args.baseline, "\n".join(lines))
        # With --json, stdout stays machine-readable; the comparison
        # report goes to stderr instead.
        print(report, file=sys.stderr if args.json else sys.stdout)
        # A full (unfiltered) run must cover every baseline scenario: a
        # scenario silently vanishing from the run would otherwise slip
        # past the regression gate unmeasured. Explicit --scenario
        # selection is exempt — the caller asked for a subset.
        if missing and not args.scenario:
            print(
                "repro bench: error: baseline scenario(s) missing from "
                "this run: %s" % ", ".join(missing),
                file=sys.stderr,
            )
            return 2
        if not ok:
            exit_code = 1
    return exit_code


def _bench_threads(args) -> int:
    """``repro bench --backend threads``: the contended fetch-and-inc
    sweep. Every cell is verified (zero lost tokens, step property at
    quiescence) before its numbers are reported; a violated invariant
    is exit 2, not a payload. ``--baseline`` gates against a committed
    ``BENCH_THREADS_*.json`` the same way the simulator backend does —
    wall-clock numbers are machine-dependent, so the CI gate pairs it
    with a generous ``--max-regression``."""
    import json

    from repro.bench import compare_to_baseline
    from repro.errors import BenchmarkError
    from repro.threads.bench import (
        format_threads_results,
        run_threads_bench,
        to_threads_json_payload,
    )

    unsupported = [
        (flag, value)
        for flag, value in (
            ("--scenario", args.scenario),
            ("--trace", args.trace),
            ("--metrics-out", args.metrics_out),
        )
        if value
    ]
    if unsupported:
        print(
            "repro bench: error: %s not supported with --backend threads "
            "(the sweep is wall-clock and unrecorded)"
            % ", ".join(flag for flag, _ in unsupported),
            file=sys.stderr,
        )
        return 2
    try:
        results = run_threads_bench(profile=args.profile, seed=args.seed)
    except BenchmarkError as exc:
        print("repro bench: error: %s" % exc, file=sys.stderr)
        return 2
    payload = to_threads_json_payload(results, args.profile, args.seed)
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(format_threads_results(results))
    exit_code = 0
    if args.baseline:
        try:
            with open(args.baseline) as handle:
                baseline = json.load(handle)
            ok, lines, missing = compare_to_baseline(
                results, baseline, max_regression=args.max_regression
            )
        except (OSError, ValueError, BenchmarkError) as exc:
            print("repro bench: error: %s" % exc, file=sys.stderr)
            return 2
        report = "baseline %s:\n%s" % (args.baseline, "\n".join(lines))
        print(report, file=sys.stderr if args.json else sys.stdout)
        # The sweep always runs every cell of its profile, so a baseline
        # scenario missing from this run means the profiles diverged —
        # fail loudly rather than gate on a partial grid.
        if missing:
            print(
                "repro bench: error: baseline scenario(s) missing from "
                "this run: %s" % ", ".join(missing),
                file=sys.stderr,
            )
            return 2
        if not ok:
            exit_code = 1
    return exit_code


def cmd_smoke(args) -> int:
    from repro.errors import ReproError
    from repro.scenarios.smoke import run_smoke

    try:
        report = run_smoke(
            names=args.scenario,
            jobs=args.jobs,
            wall_budget=args.wall_budget,
            cpu_budget=args.cpu_budget,
            fingerprints_path=args.fingerprints,
            update=args.update_fingerprints,
            artifacts_dir=args.artifacts,
            library_dir=args.library,
        )
    except ReproError as exc:
        print("repro smoke: error: %s" % exc, file=sys.stderr)
        return 2
    print("\n".join(report.format_lines()))
    if report.updated:
        print("fingerprints written to %s" % args.fingerprints)
    return 0 if report.ok else 1


def cmd_trace(args) -> int:
    from repro.obs import Recorder, write_chrome_trace, write_metrics_jsonl
    from repro.obs.recorder import recording

    try:
        recorder = Recorder(trace=True, sample_every=args.sample_every)
    except ValueError as exc:
        print("repro trace: error: %s" % exc, file=sys.stderr)
        return 2
    with recording(recorder):
        recorder.begin_section("trace")
        system = AdaptiveCountingSystem(
            width=args.width, seed=args.seed, initial_nodes=args.nodes
        )
        system.converge()
        churn_flip = True
        for index in range(args.tokens):
            system.inject_token()
            if args.churn_every and index and index % args.churn_every == 0:
                if churn_flip:
                    system.add_node()
                else:
                    system.crash_node()
                churn_flip = not churn_flip
        system.run_until_quiescent()
        system.verify()
    write_chrome_trace(recorder.trace, args.out, metrics=recorder.metrics)
    latency = recorder.latency_histogram()
    buffer = recorder.trace
    assert buffer is not None
    print(
        "trace: %d events recorded (%d dropped by the ring) -> %s"
        % (buffer.recorded_events, buffer.dropped_events, args.out)
    )
    print(
        "tokens: retired=%d latency p50=%.3f p99=%.3f max=%.3f (sim units)"
        % (
            latency.count,
            latency.p50,
            latency.p99,
            latency.max if latency.max is not None else 0.0,
        )
    )
    if args.metrics_out:
        write_metrics_jsonl(recorder.metrics, args.metrics_out)
        print("metrics: %d instruments -> %s" % (len(recorder.metrics), args.metrics_out))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Adaptive Counting Networks (ICDCS 2005) - reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="grow/converge/shrink lifecycle demo")
    _add_common(demo)
    demo.add_argument("--nodes", type=int, default=40, help="nodes to grow to")
    demo.set_defaults(func=cmd_demo)

    tree = sub.add_parser("tree", help="print the decomposition tree T_w")
    _add_common(tree)
    tree.add_argument("--level", type=int, default=None, help="also show the level-k cut")
    tree.add_argument("--depth", type=int, default=2, help="tree depth to print")
    tree.set_defaults(func=cmd_tree)

    run = sub.add_parser("run", help="converge a system and push tokens")
    _add_common(run)
    run.add_argument("--nodes", type=int, default=30)
    run.add_argument("--tokens", type=int, default=200)
    run.set_defaults(func=cmd_run)

    estimate = sub.add_parser("estimate", help="size-estimation accuracy (Section 3.1)")
    estimate.add_argument("--nodes", type=int, default=256)
    estimate.add_argument("--seed", type=int, default=0)
    estimate.set_defaults(func=cmd_estimate)

    check = sub.add_parser("check", help="static invariant analysis (repro.staticcheck)")
    check.add_argument(
        "--width",
        type=int,
        nargs="+",
        default=[2, 4, 8],
        help="network widths to certify (powers of two)",
    )
    check.add_argument(
        "--convention",
        choices=["ahs94", "paper-prose"],
        default="ahs94",
        help="merger wiring convention to check (paper-prose is the known-bad typo)",
    )
    check.add_argument(
        "--lint",
        nargs="+",
        metavar="PATH",
        default=None,
        help="run only the AST lint pass over the given files/directories",
    )
    check.add_argument(
        "--no-certify",
        action="store_true",
        help="skip the exhaustive 0-1-principle certification",
    )
    check.add_argument(
        "--protocol",
        action="store_true",
        help="run the Pass-4 message-flow analysis of the protocol layer",
    )
    check.add_argument(
        "--protocol-paths",
        nargs="+",
        metavar="PATH",
        default=None,
        help="files to flow-analyze instead of the default protocol modules",
    )
    check.add_argument(
        "--model-check",
        action="store_true",
        help="run the Pass-5 bounded model checker (small-scope schedules)",
    )
    check.add_argument(
        "--max-nodes",
        type=int,
        default=3,
        help="ring size bound for the model checker (2..4)",
    )
    check.add_argument(
        "--mc-depth",
        type=int,
        default=3,
        help="operations per model-check schedule",
    )
    check.add_argument(
        "--mc-module",
        metavar="MODULE",
        default=None,
        help="module (dotted name or .py path) providing network_factory/"
        "system_factory for the model checker's subject",
    )
    check.add_argument(
        "--concurrency",
        action="store_true",
        help="run the Pass-6 static shared-state/atomicity rules (RSC60x)",
    )
    check.add_argument(
        "--concurrency-paths",
        nargs="+",
        metavar="PATH",
        default=None,
        help="files/directories to analyze instead of the default runtime packages",
    )
    check.add_argument(
        "--concurrency-baseline",
        metavar="PATH",
        default=None,
        help="triage baseline file (default: CONCURRENCY_BASELINE.txt in "
        "the working directory, when present)",
    )
    check.add_argument(
        "--update-concurrency-baseline",
        action="store_true",
        help="rewrite the baseline from this run's findings, then apply it",
    )
    check.add_argument(
        "--allow-baseline-growth",
        action="store_true",
        help="let --update-concurrency-baseline add new entries (the "
        "drained baseline refuses to grow back without this)",
    )
    check.add_argument(
        "--ownership",
        action="store_true",
        help="run the Pass-7 ownership/lock-discipline rules (RSC70x)",
    )
    check.add_argument(
        "--ownership-paths",
        nargs="+",
        metavar="PATH",
        default=None,
        help="files/directories for Pass 7 instead of the default runtime packages",
    )
    check.add_argument(
        "--thread-ready",
        action="store_true",
        help="composite thread-readiness gate: strict Pass 6 (no baseline "
        "demotion, non-empty baseline is an error) + Pass 7 + the "
        "schedule-perturbation sanitizer",
    )
    check.add_argument(
        "--sanitize",
        nargs="?",
        const=1,
        type=int,
        default=None,
        metavar="N",
        help="run the schedule-perturbation sanitizer over the bench "
        "scenarios with N perturbation seeds (default 1)",
    )
    check.add_argument(
        "--sanitize-seeds",
        nargs="+",
        type=int,
        metavar="SEED",
        default=None,
        help="explicit perturbation seeds (overrides --sanitize's count)",
    )
    check.add_argument(
        "--sanitize-profile",
        choices=["smoke", "small", "large", "huge_smoke"],
        default="smoke",
        help="bench profile the sanitizer re-executes (default smoke)",
    )
    check.add_argument(
        "--sanitize-scenarios",
        nargs="+",
        metavar="NAME",
        default=None,
        help="restrict the sanitizer to these bench scenarios (default: "
        "every scenario of the profile)",
    )
    check.add_argument(
        "--sanitize-jitter",
        type=float,
        default=0.0,
        metavar="J",
        help="also stretch message transit by up to J seeded sim-time "
        "units (default 0.0: pure same-timestamp reordering)",
    )
    check.add_argument(
        "--explain",
        metavar="CODE",
        default=None,
        help="print description, rationale, and a minimal example for a "
        "diagnostic code (e.g. RSC601), then exit",
    )
    check.add_argument("--json", action="store_true", help="machine-readable output")
    check.set_defaults(func=cmd_check)

    bench = sub.add_parser("bench", help="seeded performance scenarios (repro.bench)")
    bench.add_argument(
        "--profile",
        default="small",
        # No argparse choices= here: each backend owns its own profile
        # registry (repro.bench.PROFILES vs repro.threads THREADS_PROFILES),
        # so validation happens up front in the runner, which exits 2
        # listing the valid set for the selected backend.
        help="workload size (smoke is the CI gate, small the committed "
        "baseline, huge/huge_smoke the scale profiles; valid names depend "
        "on --backend)",
    )
    bench.add_argument(
        "--backend",
        choices=["sim", "threads"],
        default="sim",
        help="execution backend: the discrete-event simulator (default) or "
        "real OS threads through the shared-memory counting network "
        "(contended fetch-and-inc sweep, repro.threads)",
    )
    bench.add_argument("--seed", type=int, default=0, help="workload random seed")
    bench.add_argument(
        "--scenario",
        action="append",
        metavar="NAME",
        default=None,
        help="run only this scenario (repeatable)",
    )
    bench.add_argument(
        "--output",
        metavar="PATH",
        default=None,
        help="also write the JSON document to PATH (e.g. BENCH_3.json)",
    )
    bench.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="compare against a committed BENCH_*.json; exit 1 on regression",
    )
    bench.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        help="fractional ops/sec regression tolerated per scenario (default 0.30)",
    )
    bench.add_argument("--json", action="store_true", help="print the JSON document")
    bench.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record a token trace during the run and export Chrome "
        "trace_event JSON (Perfetto-loadable) to PATH",
    )
    bench.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="record metrics during the run and write them as JSONL to PATH",
    )
    bench.add_argument(
        "--trace-sample",
        type=int,
        default=1,
        metavar="N",
        help="trace every N-th token by id (default 1 = all; metrics "
        "always cover every token)",
    )
    bench.set_defaults(func=cmd_bench)

    smoke = sub.add_parser(
        "smoke",
        help="run the scenario library in parallel and check fingerprints",
    )
    smoke.add_argument(
        "--scenario",
        action="append",
        metavar="NAME",
        default=None,
        help="run only this library scenario (repeatable; default: all)",
    )
    smoke.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes (default: min(scenarios, cores - 1))",
    )
    smoke.add_argument(
        "--wall-budget",
        type=float,
        default=120.0,
        metavar="SEC",
        help="per-scenario wall-clock budget; exceeding it is a "
        "distinct 'timeout' outcome (default 120)",
    )
    smoke.add_argument(
        "--cpu-budget",
        type=float,
        default=60.0,
        metavar="SEC",
        help="per-scenario CPU budget enforced in the worker via "
        "RLIMIT_CPU where available (default 60)",
    )
    smoke.add_argument(
        "--fingerprints",
        metavar="PATH",
        default="SCENARIO_FINGERPRINTS.json",
        help="committed fingerprint pin file (default "
        "SCENARIO_FINGERPRINTS.json in the working directory)",
    )
    smoke.add_argument(
        "--update-fingerprints",
        action="store_true",
        help="regenerate the pin file from this run (refuses if any "
        "scenario is not verify-green)",
    )
    smoke.add_argument(
        "--artifacts",
        metavar="DIR",
        default=None,
        help="write smoke_report.json plus one JSON artifact per "
        "failing scenario into DIR (for CI upload)",
    )
    smoke.add_argument(
        "--library",
        metavar="DIR",
        default=None,
        help="scenario spec directory (default: the committed library)",
    )
    smoke.set_defaults(func=cmd_smoke)

    trace = sub.add_parser(
        "trace", help="record a traced run (repro.obs) and export it"
    )
    _add_common(trace)
    trace.add_argument("--nodes", type=int, default=16, help="initial node count")
    trace.add_argument("--tokens", type=int, default=300, help="tokens to inject")
    trace.add_argument(
        "--churn-every",
        type=int,
        default=60,
        help="join/crash a node every N tokens (0 disables churn)",
    )
    trace.add_argument(
        "--sample-every",
        type=int,
        default=1,
        metavar="N",
        help="trace every N-th token by id (metrics always cover every token)",
    )
    trace.add_argument(
        "--out",
        metavar="PATH",
        default="trace.json",
        help="Chrome trace_event output path (default trace.json)",
    )
    trace.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help="also write the metrics registry as JSONL to PATH",
    )
    trace.set_defaults(func=cmd_trace)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
