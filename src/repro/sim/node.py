"""Simulated processes and the message bus.

A :class:`SimulatedProcess` is anything that handles messages (the
runtime's node hosts). The :class:`MessageBus` delivers messages between
processes with sampled network latency and models a single-server
processing queue per process: each message occupies its destination for
``service_time`` simulated units, so a node that receives the whole
token stream (e.g. the one hosting the root component, or a central
counter) becomes a measurable throughput bottleneck — the effect
Section 2's motivating example is about.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Optional

from repro.errors import SimulationError
from repro.sim.events import Simulator
from repro.sim.latency import ConstantLatency, LatencyModel


class SimulatedProcess:
    """Base class for message handlers attached to the bus."""

    def handle_message(self, message) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class MessageBus:
    """Routes messages between registered processes.

    ``service_time`` is the per-message processing cost at the receiver
    (a single-server FIFO queue per process); ``latency`` is the network
    transit model. Both default to values that make unit tests
    deterministic.
    """

    def __init__(
        self,
        simulator: Simulator,
        latency: Optional[LatencyModel] = None,
        service_time: float = 0.0,
    ):
        if service_time < 0:
            raise SimulationError("service time cannot be negative")
        self.simulator = simulator
        self.latency = latency or ConstantLatency(1.0)
        self.service_time = service_time
        self._processes: Dict[Hashable, SimulatedProcess] = {}
        self._busy_until: Dict[Hashable, float] = {}
        #: Monotonic per-address registration count. A message captures
        #: the destination's epoch at send time; if the address was
        #: unregistered and re-registered while the message was in
        #: flight, the new incarnation must not receive mail addressed
        #: to the old one (the classic re-registration ABA hazard).
        self._epochs: Dict[Hashable, int] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self._in_flight_by_kind: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, address: Hashable, process: SimulatedProcess) -> None:
        if address in self._processes:
            raise SimulationError("address %r already registered" % (address,))
        self._processes[address] = process
        self._epochs[address] = self._epochs.get(address, 0) + 1

    def unregister(self, address: Hashable) -> None:
        # The epoch entry deliberately survives: it must keep growing
        # across re-registrations of the same address.
        self._processes.pop(address, None)
        self._busy_until.pop(address, None)

    def is_registered(self, address: Hashable) -> bool:
        return address in self._processes

    # ------------------------------------------------------------------
    # messaging
    # ------------------------------------------------------------------
    def in_flight(self, kind: str) -> int:
        """Messages of a given kind sent but not yet handled."""
        return self._in_flight_by_kind.get(kind, 0)

    def send(
        self,
        to_address: Hashable,
        message,
        kind: str = "message",
        on_undeliverable: Optional[Callable[[], None]] = None,
    ) -> None:
        """Deliver ``message`` to ``to_address`` after latency + queueing.

        If the destination is gone at delivery time (crash), the message
        is dropped and ``on_undeliverable`` (if given) runs instead —
        this is how neighbours notice lost components.
        """
        self.messages_sent += 1
        self._in_flight_by_kind[kind] = self._in_flight_by_kind.get(kind, 0) + 1
        transit = self.latency.sample()
        # None when the destination is not registered yet: such mail may
        # be picked up by whoever registers first (existing semantics).
        sent_epoch = self._epochs.get(to_address) if self.is_registered(to_address) else None

        def addressee() -> Optional[SimulatedProcess]:
            process = self._processes.get(to_address)
            if process is None:
                return None
            if sent_epoch is not None and self._epochs.get(to_address) != sent_epoch:
                return None  # same address, different incarnation
            return process

        def arrive() -> None:
            if addressee() is None:
                self._finish(kind)
                self.messages_dropped += 1
                if on_undeliverable is not None:
                    on_undeliverable()
                return
            start = max(self.simulator.now, self._busy_until.get(to_address, 0.0))
            finish = start + self.service_time
            self._busy_until[to_address] = finish

            def process_it() -> None:
                current = addressee()
                self._finish(kind)
                if current is None:
                    self.messages_dropped += 1
                    if on_undeliverable is not None:
                        on_undeliverable()
                    return
                self.messages_delivered += 1
                current.handle_message(message)

            self.simulator.schedule_at(finish, process_it)

        self.simulator.schedule(transit, arrive)

    def _finish(self, kind: str) -> None:
        self._in_flight_by_kind[kind] -= 1
        if self._in_flight_by_kind[kind] == 0:
            del self._in_flight_by_kind[kind]
