"""Simulated processes and the message bus.

A :class:`SimulatedProcess` is anything that handles messages (the
runtime's node hosts). The :class:`MessageBus` delivers messages between
processes with sampled network latency and models a single-server
processing queue per process: each message occupies its destination for
``service_time`` simulated units, so a node that receives the whole
token stream (e.g. the one hosting the root component, or a central
counter) becomes a measurable throughput bottleneck — the effect
Section 2's motivating example is about.

Delivery is driven by one slotted :class:`Envelope` record per message
(it replaced three nested per-message closures): the bus schedules the
envelope's ``arrive`` trampoline after network transit, and ``arrive``
either queues ``deliver`` behind the destination's service queue or —
when the destination is idle, costs no service time, and the delivery
would provably be the very next event anyway — runs it inline via
:meth:`Simulator.claim_inline_slot`, skipping the heap push/pop
round-trip without perturbing event order or accounting.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Optional

from repro.core.atomics import AtomicCounter, GuardedMap, TokenLedger
from repro.errors import SimulationError
from repro.obs import recorder as _obs
from repro.sim.events import Simulator
from repro.sim.latency import ConstantLatency, LatencyModel


class SimulatedProcess:
    """Base class for message handlers attached to the bus."""

    def handle_message(self, message) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class Envelope:
    """One in-flight message: destination, payload, and delivery state.

    A single slotted record carries everything the two delivery stages
    need; its bound methods ``arrive`` and ``deliver`` are the event
    callbacks (the *delivery trampoline*), so sending a message costs
    one envelope instead of three closures with captured cells.
    """

    __slots__ = ("bus", "to_address", "message", "kind", "on_undeliverable", "sent_epoch")

    def __init__(
        self,
        bus: "MessageBus",
        to_address: Hashable,
        message,
        kind: str,
        on_undeliverable: Optional[Callable[[], None]],
        sent_epoch: Optional[int],
    ):
        self.bus = bus
        self.to_address = to_address
        self.message = message
        self.kind = kind
        self.on_undeliverable = on_undeliverable
        self.sent_epoch = sent_epoch

    def addressee(self) -> Optional[SimulatedProcess]:
        """The live destination process, or None (gone or re-registered)."""
        bus = self.bus
        process = bus._processes.get(self.to_address)
        if process is None:
            return None
        if self.sent_epoch is not None and bus._epoch_of(self.to_address) != self.sent_epoch:
            return None  # same address, different incarnation
        return process

    def arrive(self) -> None:
        """Network transit ended: enter the destination's service queue."""
        bus = self.bus
        current = self.addressee()
        if current is None:
            bus._finish(self.kind)
            bus.messages_dropped.increment()
            obs = _obs.ACTIVE
            if obs.enabled:
                obs.bus_dropped(bus.simulator.now, self.kind)
            if self.on_undeliverable is not None:
                self.on_undeliverable()
            return
        simulator = bus.simulator
        now = simulator.now
        busy = bus._busy_of(self.to_address)
        finish = (busy if busy is not None and busy > now else now) + bus.service_time
        bus._busy_until.put(self.to_address, finish)
        obs = _obs.ACTIVE
        if obs.enabled:
            obs.bus_queued(now, self.kind, finish - now)
        # Same-timestamp fast path: an idle destination with zero
        # service cost processes the message in this very event when the
        # simulator certifies that is order- and accounting-identical.
        if finish == now and simulator.claim_inline_slot(finish):
            # Nothing ran between the addressee check above and this
            # call, so the resolution cannot have gone stale.
            self._deliver_to(current)
            return
        simulator.schedule_at(finish, self.deliver)

    def deliver(self) -> None:
        """Service slot reached: hand the payload to the process."""
        self._deliver_to(self.addressee())

    def _deliver_to(self, current: Optional[SimulatedProcess]) -> None:
        bus = self.bus
        bus._finish(self.kind)
        obs = _obs.ACTIVE
        if current is None:
            bus.messages_dropped.increment()
            if obs.enabled:
                obs.bus_dropped(bus.simulator.now, self.kind)
            if self.on_undeliverable is not None:
                self.on_undeliverable()
            return
        bus.messages_delivered.increment()
        if obs.enabled:
            obs.bus_delivered(bus.simulator.now, self.kind)
        current.handle_message(self.message)


class MessageBus:
    """Routes messages between registered processes.

    ``service_time`` is the per-message processing cost at the receiver
    (a single-server FIFO queue per process); ``latency`` is the network
    transit model. Both default to values that make unit tests
    deterministic.
    """

    def __init__(
        self,
        simulator: Simulator,
        latency: Optional[LatencyModel] = None,
        service_time: float = 0.0,
    ):
        if service_time < 0:
            raise SimulationError("service time cannot be negative")
        self.simulator = simulator
        self.latency = latency or ConstantLatency(1.0)
        self.service_time = service_time
        self._processes: Dict[Hashable, SimulatedProcess] = {}
        self._busy_until: GuardedMap[Hashable, float] = GuardedMap()  # repro: owned-by: shared
        #: Monotonic per-address registration count. A message captures
        #: the destination's epoch at send time; if the address was
        #: unregistered and re-registered while the message was in
        #: flight, the new incarnation must not receive mail addressed
        #: to the old one (the classic re-registration ABA hazard).
        self._epochs: TokenLedger[Hashable] = TokenLedger()  # repro: owned-by: shared
        #: Hoisted lock-free readers (C-level ``dict.get``) for the two
        #: per-message lookups; neither ledger is ever reset(), so the
        #: readers stay valid for the bus's lifetime.
        self._epoch_of = self._epochs.reader()
        self._busy_of = self._busy_until.reader()
        self.messages_sent = AtomicCounter()  # repro: owned-by: shared
        self.messages_delivered = AtomicCounter()  # repro: owned-by: shared
        self.messages_dropped = AtomicCounter()  # repro: owned-by: shared
        self._in_flight_by_kind: TokenLedger[str] = TokenLedger()  # repro: owned-by: shared

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, address: Hashable, process: SimulatedProcess) -> None:
        if address in self._processes:
            raise SimulationError("address %r already registered" % (address,))
        self._processes[address] = process
        self._epochs.post(address)

    def unregister(self, address: Hashable) -> None:
        # The epoch entry deliberately survives: it must keep growing
        # across re-registrations of the same address.
        self._processes.pop(address, None)
        self._busy_until.take(address)

    def is_registered(self, address: Hashable) -> bool:
        return address in self._processes

    # ------------------------------------------------------------------
    # messaging
    # ------------------------------------------------------------------
    def in_flight(self, kind: str) -> int:
        """Messages of a given kind sent but not yet handled."""
        return self._in_flight_by_kind.balance(kind)

    def send(
        self,
        to_address: Hashable,
        message,
        kind: str = "message",
        on_undeliverable: Optional[Callable[[], None]] = None,
    ) -> None:
        """Deliver ``message`` to ``to_address`` after latency + queueing.

        If the destination is gone at delivery time (crash), the message
        is dropped and ``on_undeliverable`` (if given) runs instead —
        this is how neighbours notice lost components.
        """
        self.messages_sent.increment()
        self._in_flight_by_kind.post(kind)
        obs = _obs.ACTIVE
        if obs.enabled:
            obs.bus_sent(self.simulator.now, kind)
        # None when the destination is not registered yet: such mail may
        # be picked up by whoever registers first (existing semantics).
        sent_epoch = self._epochs.get(to_address) if to_address in self._processes else None
        envelope = Envelope(self, to_address, message, kind, on_undeliverable, sent_epoch)
        transit = self.latency.sample()
        # Schedule-perturbation sanitizer hook: an installed policy may
        # stretch network transit by bounded jitter (0.0 by default).
        policy = self.simulator.policy
        if policy is not None:
            transit += policy.delivery_jitter()
        self.simulator.schedule(transit, envelope.arrive)

    def _finish(self, kind: str) -> None:
        self._in_flight_by_kind.settle(kind)
