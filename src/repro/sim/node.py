"""Simulated processes and the message bus.

A :class:`SimulatedProcess` is anything that handles messages (the
runtime's node hosts). The :class:`MessageBus` delivers messages between
processes with sampled network latency and models a single-server
processing queue per process: each message occupies its destination for
``service_time`` simulated units, so a node that receives the whole
token stream (e.g. the one hosting the root component, or a central
counter) becomes a measurable throughput bottleneck — the effect
Section 2's motivating example is about.

Delivery is driven by one slotted :class:`Envelope` record per message
(it replaced three nested per-message closures): the bus schedules the
envelope's ``arrive`` trampoline after network transit, and ``arrive``
either queues ``deliver`` behind the destination's service queue or —
when the destination is idle, costs no service time, and the delivery
would provably be the very next event anyway — runs it inline via
:meth:`Simulator.claim_inline_slot`, skipping the queue round-trip
without perturbing event order or accounting.

Envelope pooling
----------------
Envelopes are drawn from a per-bus freelist and recycled the moment
their delivery (or drop) completes, making the send→deliver hot path
allocation-free in steady state. Recycling is safe because the delivery
paths extract every field they need into locals *before* releasing, so
an envelope re-acquired by a re-entrant send inside the message handler
cannot corrupt the delivery in progress. Each release bumps the
envelope's ``generation`` stamp; anything that holds an envelope
reference across events (the coalescing map below) captures the stamp
at hold time and treats a mismatch as "this is a different message now"
— the same epoch-style ABA discipline the bus already applies to
re-registered addresses.

Same-edge coalescing
--------------------
With ``coalesce=True`` the bus merges same-destination messages that
would arrive at the same instant into one trampoline event: the first
send schedules its envelope's ``arrive`` normally and parks it in
``_parked_primaries`` keyed by ``(destination, arrival time)``; later
sends matching the key chain their envelopes onto the parked one
instead of scheduling anything, and the single ``arrive`` drains the
chain in send order. Per-message accounting (service queueing, in-flight
ledger, obs hooks) is unchanged — only the number of *events* shrinks —
but because event counts and interleaving with other same-timestamp
events do change, coalescing is opt-in and off everywhere the committed
golden fingerprints apply (the ``huge`` bench profile turns it on).
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional, Tuple

from repro.core.atomics import AtomicCounter, GuardedMap, TokenLedger
from repro.errors import SimulationError
from repro.obs import recorder as _obs
from repro.sim.events import Simulator
from repro.sim.latency import ConstantLatency, LatencyModel

#: The coalescing park: (destination, arrival time) -> (primary
#: envelope, its generation stamp at parking time).
ParkedMap = Dict[Tuple[Hashable, float], Tuple["Envelope", int]]


class SimulatedProcess:
    """Base class for message handlers attached to the bus."""

    def handle_message(self, message) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class Envelope:
    """One in-flight message: destination, payload, and delivery state.

    A single slotted record carries everything the two delivery stages
    need; its bound methods ``arrive`` and ``deliver`` are the event
    callbacks (the *delivery trampoline*), so sending a message costs
    one envelope instead of three closures with captured cells.
    Envelopes are pool-owned: construct them only through
    :meth:`MessageBus._acquire_envelope` (the RSC307 lint enforces
    this), and ``generation`` counts how many times this record has
    been recycled — the ABA stamp for anything holding a reference
    across events.
    """

    __slots__ = (
        "bus",
        "to_address",
        "message",
        "kind",
        "on_undeliverable",
        "sent_epoch",
        "generation",
        "chained",
    )

    def __init__(
        self,
        bus: "MessageBus",
        to_address: Hashable,
        message,
        kind: str,
        on_undeliverable: Optional[Callable[[], None]],
        sent_epoch: Optional[int],
    ):
        self.bus = bus
        self.to_address = to_address
        self.message = message
        self.kind = kind
        self.on_undeliverable = on_undeliverable
        self.sent_epoch = sent_epoch
        self.generation = 0
        #: Same-edge envelopes coalesced behind this one (send order),
        #: or None. Only ever non-None on a parked primary envelope.
        self.chained: Optional[List["Envelope"]] = None

    def addressee(self) -> Optional[SimulatedProcess]:
        """The live destination process, or None (gone or re-registered)."""
        bus = self.bus
        process = bus._processes.get(self.to_address)
        if process is None:
            return None
        if self.sent_epoch is not None and bus._epoch_of(self.to_address) != self.sent_epoch:
            return None  # same address, different incarnation
        return process

    def arrive(self) -> None:
        """Network transit ended: enter the destination's service queue.

        When coalescing is on, this is also where a parked primary
        unparks itself and drains its chained same-edge envelopes —
        one event, N message deliveries, identical per-message
        accounting.
        """
        bus = self.bus
        if bus.coalesce:
            bus._parked_primaries.pop((self.to_address, bus.simulator.now), None)
            chained = self.chained
            if chained is not None:
                self.chained = None
                self._arrive_one()
                for envelope in chained:
                    envelope._arrive_one()
                return
        self._arrive_one()

    def _arrive_one(self) -> None:
        bus = self.bus
        current = self.addressee()
        if current is None:
            kind = self.kind
            on_undeliverable = self.on_undeliverable
            bus._finish(kind)
            bus.messages_dropped.increment()
            obs = _obs.ACTIVE
            if obs.enabled:
                obs.bus_dropped(bus.simulator.now, kind)
            bus._release_envelope(self)
            if on_undeliverable is not None:
                on_undeliverable()
            return
        simulator = bus.simulator
        now = simulator.now
        busy = bus._busy_of(self.to_address)
        finish = (busy if busy is not None and busy > now else now) + bus.service_time
        if finish != now:
            bus._busy_until.put(self.to_address, finish)
        # else: an idle destination with zero service cost stays "busy
        # until now", which any existing entry already implies — skipping
        # the write keeps the zero-service hot path free of map traffic.
        obs = _obs.ACTIVE
        if obs.enabled:
            obs.bus_queued(now, self.kind, finish - now)
        # Same-timestamp fast path: an idle destination with zero
        # service cost processes the message in this very event when the
        # simulator certifies that is order- and accounting-identical.
        if finish == now and simulator.claim_inline_slot(finish):
            # Nothing ran between the addressee check above and this
            # call, so the resolution cannot have gone stale.
            self._deliver_to(current)
            return
        simulator.schedule_at_pooled(finish, self.deliver)

    def deliver(self) -> None:
        """Service slot reached: hand the payload to the process."""
        self._deliver_to(self.addressee())

    def _deliver_to(self, current: Optional[SimulatedProcess]) -> None:
        # Extract everything before releasing: the released envelope may
        # be re-acquired by a send issued inside the handler below.
        bus = self.bus
        kind = self.kind
        message = self.message
        on_undeliverable = self.on_undeliverable
        bus._finish(kind)
        obs = _obs.ACTIVE
        if current is None:
            bus.messages_dropped.increment()
            if obs.enabled:
                obs.bus_dropped(bus.simulator.now, kind)
            bus._release_envelope(self)
            if on_undeliverable is not None:
                on_undeliverable()
            return
        bus.messages_delivered.increment()
        if obs.enabled:
            obs.bus_delivered(bus.simulator.now, kind)
        bus._release_envelope(self)
        current.handle_message(message)


class MessageBus:
    """Routes messages between registered processes.

    ``service_time`` is the per-message processing cost at the receiver
    (a single-server FIFO queue per process); ``latency`` is the network
    transit model. Both default to values that make unit tests
    deterministic. ``coalesce`` turns on same-edge arrival coalescing
    (see the module docstring) — it changes event counts, so leave it
    off wherever bit-identical event order is pinned.
    """

    def __init__(
        self,
        simulator: Simulator,
        latency: Optional[LatencyModel] = None,
        service_time: float = 0.0,
        coalesce: bool = False,
    ):
        if service_time < 0:
            raise SimulationError("service time cannot be negative")
        self.simulator = simulator
        self.latency = latency or ConstantLatency(1.0)
        self.service_time = service_time
        self.coalesce = coalesce
        self._processes: Dict[Hashable, SimulatedProcess] = {}
        self._busy_until: GuardedMap[Hashable, float] = GuardedMap()  # repro: owned-by: shared
        #: Monotonic per-address registration count. A message captures
        #: the destination's epoch at send time; if the address was
        #: unregistered and re-registered while the message was in
        #: flight, the new incarnation must not receive mail addressed
        #: to the old one (the classic re-registration ABA hazard).
        self._epochs: TokenLedger[Hashable] = TokenLedger()  # repro: owned-by: shared
        #: Hoisted lock-free readers (C-level ``dict.get``) for the two
        #: per-message lookups; neither ledger is ever reset(), so the
        #: readers stay valid for the bus's lifetime.
        self._epoch_of = self._epochs.reader()
        self._busy_of = self._busy_until.reader()
        self.messages_sent = AtomicCounter()  # repro: owned-by: shared
        self.messages_delivered = AtomicCounter()  # repro: owned-by: shared
        self.messages_dropped = AtomicCounter()  # repro: owned-by: shared
        self._in_flight_by_kind: TokenLedger[str] = TokenLedger()  # repro: owned-by: shared
        #: Hoisted ledger mutators for the per-message hot path.
        self._post_kind = self._in_flight_by_kind.post
        self._settle_kind = self._in_flight_by_kind.settle
        #: Envelope freelist and its traffic counters (sim-loop work
        #: only — acquire in send, release at delivery/drop).
        self._envelope_pool: List[Envelope] = []  # repro: owned-by: single-writer
        self._envelopes_created = 0  # repro: owned-by: single-writer
        self._envelopes_reused = 0  # repro: owned-by: single-writer
        #: Parked primaries for same-edge coalescing:
        #: (destination, arrival time) -> (envelope, generation stamp).
        #: The stamp guards against a recycled envelope masquerading as
        #: the parked one. Only ``send`` writes; the primary's
        #: ``arrive`` unparks (pops) its own entry.
        self._parked_primaries: ParkedMap = {}  # repro: owned-by: single-writer

    # ------------------------------------------------------------------
    # envelope pool
    # ------------------------------------------------------------------
    def _acquire_envelope(
        self,
        to_address: Hashable,
        message,
        kind: str,
        on_undeliverable: Optional[Callable[[], None]],
        sent_epoch: Optional[int],
    ) -> Envelope:
        pool = self._envelope_pool
        if pool:
            envelope = pool.pop()
            envelope.to_address = to_address
            envelope.message = message
            envelope.kind = kind
            envelope.on_undeliverable = on_undeliverable
            envelope.sent_epoch = sent_epoch
            self._envelopes_reused += 1
            return envelope
        self._envelopes_created += 1
        return Envelope(self, to_address, message, kind, on_undeliverable, sent_epoch)

    def _release_envelope(self, envelope: Envelope) -> None:
        # The generation bump invalidates any stamp captured while the
        # envelope was live (see ``_parked_primaries``).
        envelope.generation += 1
        envelope.message = None
        envelope.on_undeliverable = None
        envelope.chained = None
        self._envelope_pool.append(envelope)

    def pool_stats(self) -> Dict[str, int]:
        """Envelope-freelist traffic: constructed, recycled, and idle."""
        return {
            "created": self._envelopes_created,
            "reused": self._envelopes_reused,
            "free": len(self._envelope_pool),
        }

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register(self, address: Hashable, process: SimulatedProcess) -> None:
        if address in self._processes:
            raise SimulationError("address %r already registered" % (address,))
        self._processes[address] = process
        self._epochs.post(address)

    def unregister(self, address: Hashable) -> None:
        # The epoch entry deliberately survives: it must keep growing
        # across re-registrations of the same address.
        self._processes.pop(address, None)
        self._busy_until.take(address)

    def is_registered(self, address: Hashable) -> bool:
        return address in self._processes

    # ------------------------------------------------------------------
    # messaging
    # ------------------------------------------------------------------
    def in_flight(self, kind: str) -> int:
        """Messages of a given kind sent but not yet handled."""
        return self._in_flight_by_kind.balance(kind)

    def send(
        self,
        to_address: Hashable,
        message,
        kind: str = "message",
        on_undeliverable: Optional[Callable[[], None]] = None,
    ) -> None:
        """Deliver ``message`` to ``to_address`` after latency + queueing.

        If the destination is gone at delivery time (crash), the message
        is dropped and ``on_undeliverable`` (if given) runs instead —
        this is how neighbours notice lost components.
        """
        self.messages_sent.increment()
        self._post_kind(kind)
        obs = _obs.ACTIVE
        if obs.enabled:
            obs.bus_sent(self.simulator.now, kind)
        # None when the destination is not registered yet: such mail may
        # be picked up by whoever registers first (existing semantics —
        # a registered address always has an epoch entry, so the hoisted
        # raw reader is equivalent to the ledger get here).
        sent_epoch = self._epoch_of(to_address) if to_address in self._processes else None
        envelope = self._acquire_envelope(
            to_address, message, kind, on_undeliverable, sent_epoch
        )
        transit = self.latency.sample()
        # Schedule-perturbation sanitizer hook: an installed policy may
        # stretch network transit by bounded jitter (0.0 by default).
        simulator = self.simulator
        policy = simulator.policy
        if policy is not None:
            transit += policy.delivery_jitter()
        if self.coalesce:
            arrive_at = simulator.now + transit
            key = (to_address, arrive_at)
            entry = self._parked_primaries.get(key)
            if entry is not None:
                primary, stamp = entry
                # Generation check: a stale entry whose envelope was
                # recycled since parking must not absorb new mail.
                if primary.generation == stamp:
                    chained = primary.chained
                    if chained is None:
                        primary.chained = [envelope]
                    else:
                        chained.append(envelope)
                    return
            self._parked_primaries[key] = (envelope, envelope.generation)
            simulator.schedule_at_pooled(arrive_at, envelope.arrive)
            return
        simulator.schedule_pooled(transit, envelope.arrive)

    def _finish(self, kind: str) -> None:
        self._settle_kind(kind)
