"""Arrival processes: when (and on which wire) client tokens show up.

The scenario DSL (:mod:`repro.scenarios`) describes workloads as an
*arrival process* — a schedule of injection instants over simulated
time — plus a *wire-selection policy* (which input wire each client
uses). This module is the simulation-level vocabulary both compile to:
plain, seeded functions returning sorted lists of times, so a schedule
is a pure function of its parameters and (where applicable) its
``random.Random`` seed.

Processes
---------
``uniform_arrivals``
    Tokens evenly spaced over a duration — the pacing the
    ``large_churn`` bench uses, and the steady-state baseline.
``poisson_arrivals``
    Memoryless arrivals at a fixed rate: the classic open-system
    client model (cf. the anonymous-dynamic-network counting
    literature's arrival assumptions).
``burst_arrivals``
    Everything lands in a few same-instant bursts — the configuration
    the calendar queue's same-timestamp buckets are built for.
``onoff_arrivals``
    A repeating phase program (duration, rate) — quiet/loud on-off
    sources, flash crowds (long quiet phase, short extreme phase), and
    diurnal ramps (staircase of rates) are all phase programs.

Wire selection
--------------
``wire_schedule`` maps a policy name to one wire choice per arrival:
``round_robin`` (``None`` — the runtime's default round-robin),
``uniform`` (seeded random wire), or ``hot`` (a hot set of wires
receives a configured fraction of the traffic — hot-key skew).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.errors import SimulationError

__all__ = [
    "uniform_arrivals",
    "poisson_arrivals",
    "burst_arrivals",
    "onoff_arrivals",
    "wire_schedule",
    "WIRE_POLICIES",
]

#: Wire-selection policy names ``wire_schedule`` understands.
WIRE_POLICIES = ("round_robin", "uniform", "hot")


def uniform_arrivals(tokens: int, duration: float) -> List[float]:
    """``tokens`` arrivals evenly spaced over ``(0, duration]``.

    The i-th token arrives at ``(i+1) * duration / tokens`` — the same
    pacing the time-paced bench scenarios use, so a steady scenario's
    event stream is directly comparable to theirs.
    """
    if tokens < 0:
        raise SimulationError("tokens must be nonnegative")
    if duration <= 0:
        raise SimulationError("duration must be positive")
    if tokens == 0:
        return []
    step = duration / tokens
    return [(index + 1) * step for index in range(tokens)]


def poisson_arrivals(
    rng: random.Random, tokens: int, rate: float
) -> List[float]:
    """``tokens`` arrivals from a Poisson process of the given rate.

    Inter-arrival gaps are exponential with mean ``1/rate``; the
    schedule runs until the token budget is spent (an open system with
    a fixed injection budget, not a fixed horizon).
    """
    if tokens < 0:
        raise SimulationError("tokens must be nonnegative")
    if rate <= 0:
        raise SimulationError("rate must be positive")
    times: List[float] = []
    now = 0.0
    for _ in range(tokens):
        now += rng.expovariate(rate)
        times.append(now)
    return times


def burst_arrivals(
    tokens: int, bursts: int, spacing: float
) -> List[float]:
    """``tokens`` split into ``bursts`` same-instant groups.

    Burst ``k`` lands at ``(k+1) * spacing``; the first
    ``tokens % bursts`` bursts carry one extra token so the budget is
    exact. With one burst this is the burst-drain workload: the whole
    budget at a single instant, then the network drains.
    """
    if tokens < 0:
        raise SimulationError("tokens must be nonnegative")
    if bursts < 1:
        raise SimulationError("need at least one burst")
    if spacing <= 0:
        raise SimulationError("spacing must be positive")
    base, extra = divmod(tokens, bursts)
    times: List[float] = []
    for index in range(bursts):
        at = (index + 1) * spacing
        times.extend([at] * (base + (1 if index < extra else 0)))
    return times


def onoff_arrivals(
    phases: Sequence[Tuple[float, float]],
    cycles: int = 1,
    max_tokens: Optional[int] = None,
) -> List[float]:
    """A repeating phase program of ``(duration, rate)`` pairs.

    Within a phase of duration ``d`` and rate ``r``, tokens are paced
    deterministically at ``1/r`` intervals (``floor(d * r)`` of them) —
    the schedule is a pure function of the program, which keeps on-off
    scenarios fingerprintable without consuming a seed. A rate of zero
    is a silent phase. ``max_tokens`` (the injection budget) truncates
    the schedule once spent.

    Flash crowd: ``[(90, 0.5), (10, 50)]`` — a trickle, then a spike.
    Diurnal ramp: ``[(50, 1), (50, 4), (50, 8), (50, 4), (50, 1)]``.
    """
    if cycles < 1:
        raise SimulationError("need at least one cycle")
    if not phases:
        raise SimulationError("need at least one phase")
    for duration, rate in phases:
        if duration <= 0:
            raise SimulationError("phase duration must be positive")
        if rate < 0:
            raise SimulationError("phase rate cannot be negative")
    if max_tokens is not None and max_tokens < 0:
        raise SimulationError("max_tokens must be nonnegative")
    times: List[float] = []
    start = 0.0
    for _ in range(cycles):
        for duration, rate in phases:
            count = int(duration * rate)
            for index in range(count):
                if max_tokens is not None and len(times) >= max_tokens:
                    return times
                times.append(start + (index + 1) / rate)
            start += duration
    return times


def wire_schedule(
    rng: random.Random,
    policy: str,
    width: int,
    count: int,
    hot_wires: int = 1,
    hot_fraction: float = 0.9,
) -> List[Optional[int]]:
    """One wire choice per arrival under the named policy.

    ``round_robin`` yields ``None`` for every arrival (the runtime's
    injection default already round-robins); ``uniform`` draws a seeded
    random wire per arrival; ``hot`` sends ``hot_fraction`` of arrivals
    to the first ``hot_wires`` wires (the hot keys) and spreads the
    rest uniformly — the skewed load profile a hash-sharded counter
    cannot balance but a counting network can.
    """
    if policy not in WIRE_POLICIES:
        raise SimulationError(
            "unknown wire policy %r (choose from %s)"
            % (policy, ", ".join(WIRE_POLICIES))
        )
    if width < 1:
        raise SimulationError("width must be positive")
    if count < 0:
        raise SimulationError("count must be nonnegative")
    if policy == "round_robin":
        return [None] * count
    if policy == "uniform":
        return [rng.randrange(width) for _ in range(count)]
    if not 1 <= hot_wires <= width:
        raise SimulationError("hot_wires must be in [1, width]")
    if not 0.0 <= hot_fraction <= 1.0:
        raise SimulationError("hot_fraction must be in [0, 1]")
    schedule: List[Optional[int]] = []
    for _ in range(count):
        if rng.random() < hot_fraction:
            schedule.append(rng.randrange(hot_wires))
        else:
            schedule.append(rng.randrange(width))
    return schedule
