"""A seeded discrete-event message-passing simulator.

The paper assumes an asynchronous message-passing distributed system
(Section 1.3). This subpackage provides the executable model: a global
event queue (:mod:`repro.sim.events`), pluggable message latency
distributions (:mod:`repro.sim.latency`), per-node service queues so a
hot node becomes a measurable bottleneck (:mod:`repro.sim.node`), and
churn/failure trace generation (:mod:`repro.sim.failures`).
"""

from repro.sim.events import Simulator
from repro.sim.latency import ConstantLatency, ExponentialLatency, UniformLatency
from repro.sim.node import SimulatedProcess, MessageBus

__all__ = [
    "Simulator",
    "ConstantLatency",
    "ExponentialLatency",
    "UniformLatency",
    "SimulatedProcess",
    "MessageBus",
]
