"""The discrete-event engine: a clock and a calendar-queue event core.

Event storage
-------------
The queue is an array-backed *calendar queue* (timing wheel): events
are grouped into per-timestamp buckets (``_buckets``: time -> bucket)
and a small binary heap (``_times``) holds each distinct pending
timestamp exactly once. Message traffic overwhelmingly shares a handful
of delays (link latency is drawn from a small discrete set), so the
common case is an O(1) append to an existing bucket and an O(1) pop
from its front — the heap is only touched when a *new* timestamp
appears or a bucket drains, which is the rare case the lazy-deletion
heap always handled. The dispatch order is identical to the old global
heap, bit for bit:

* with no :class:`SchedulePolicy` installed (the default), buckets are
  ``deque``\\ s in scheduling order — FIFO within a timestamp is exactly
  the old ``(time, seq)`` order;
* with a policy installed, buckets are small per-timestamp heaps of
  ``(key, handle)`` pairs, so ties break by the policy's injective key
  exactly as they did in the global ``(time, key, handle)`` heap.

Buckets live in the dict until *exhausted* (lazily removed at dispatch),
so a callback that schedules back into the current instant joins the
draining bucket and keeps its position in the total order.

Event lifecycle
---------------
``schedule``/``schedule_at`` wrap the callback in a slotted
:class:`EventHandle` supporting *lazy cancellation*: ``cancel`` marks
it and drops the callback reference immediately (so captured state is
freed at cancel time, not fire time), and the run loops pop-and-skip
cancelled entries without counting them as executed events. This is how
RPC timeout guards disappear on reply instead of surviving in the queue
as dead no-op closures until their fire time.

``schedule_pooled``/``schedule_at_pooled`` are the fire-and-forget
variants for callers that never cancel (the message bus's delivery
trampoline): they return nothing and draw their handles from a
simulator-owned freelist — a fired pooled handle goes straight back to
the freelist instead of the allocator. Pooling is safe *because* the
handle is unobservable: no caller can hold a stale reference across a
reuse, so the cancel-after-fire ABA hazard cannot arise. ``pool_stats``
reports the freelist's traffic for the ``repro.obs`` gauges.

``pending`` counts *live* events only (a cancelled-events counter is
maintained alongside the buckets), so quiescence checks built on it do
not see cancelled timers.

The run loops (:meth:`Simulator.run_until_idle` / :meth:`run_until`)
inline :meth:`step` with hoisted attribute lookups, and they keep the
``max_events`` bound *exact* through a shared budget that the message
bus's same-timestamp inline fast path also charges
(:meth:`claim_inline_slot`): every executed event — popped or inline —
consumes exactly one slot, and the bound raises before the event that
would exceed it.

Schedule tie-break policies
---------------------------
Same-timestamp events are FIFO-ordered by default (bucket order equals
scheduling order). That order is *one legal schedule* among many: any
interleaving of same-timestamp events is permitted by the model, and
code that is only correct under the FIFO accident is code that will
break the moment real threads (or a real network) reorder it. A
:class:`SchedulePolicy` makes the tie-break pluggable:
:class:`FifoPolicy` reproduces the historical order bit-for-bit, and
:class:`PerturbedPolicy` re-keys same-timestamp ties with a seeded RNG
and can add bounded delivery-delay jitter on the message plane — the
schedule-perturbation sanitizer (``repro check --sanitize``) runs the
bench scenarios under it and asserts the invariant set still holds.
Policies are installed per-simulator at construction, snapshotting the
module-level :data:`POLICY_FACTORY` swap point (see
:func:`schedule_policy`); with no policy installed the scheduling hot
path never touches the sequence counter at all.
"""

from __future__ import annotations

import itertools
from collections import deque
from contextlib import contextmanager
from heapq import heappop, heappush
from math import isfinite
from random import Random
from typing import Callable, Deque, Dict, Iterator, List, Optional, Tuple

from repro.core.atomics import AtomicCounter
from repro.errors import SimulationError
from repro.obs import recorder as _obs


class SchedulePolicy:
    """How same-timestamp events are ordered (and messages delayed).

    ``key(seq)`` maps the monotonic scheduling sequence number to the
    integer tie-break key stored in the per-timestamp bucket heap:
    dispatch order is ``(time, key)`` and keys are unique, so any
    injective mapping yields a deterministic total order.
    ``delivery_jitter()`` is extra network delay the message bus adds
    per send (0.0 for exact latency-model behaviour).
    """

    def key(self, seq: int) -> int:
        return seq

    def delivery_jitter(self) -> float:
        return 0.0


class FifoPolicy(SchedulePolicy):
    """The default order, made explicit: ties break by scheduling
    order, no jitter. Installing this policy is byte-identical to
    installing none — the regression tests pin that equivalence."""


class PerturbedPolicy(SchedulePolicy):
    """Adversarial-but-legal schedules from a seeded RNG.

    Same-timestamp events are reordered by a random 32-bit major key
    (the sequence number survives in the low bits, keeping keys unique
    and runs reproducible per seed); ``max_jitter`` > 0 additionally
    stretches each message's network transit by a uniform random delay
    in ``[0, max_jitter)``. Every schedule this policy produces is one
    the event model already allows — a run that breaks under it was
    deterministic by accident, not correct.
    """

    def __init__(self, rng: Random, max_jitter: float = 0.0):
        if max_jitter < 0 or not isfinite(max_jitter):
            raise ValueError("max_jitter must be finite and >= 0")
        self.rng = rng
        self.max_jitter = max_jitter

    def key(self, seq: int) -> int:
        # Random major bits shuffle same-timestamp groups; the sequence
        # number in the low bits keeps keys unique (and comparisons
        # never reach the EventHandle).
        return (self.rng.getrandbits(32) << 48) | seq

    def delivery_jitter(self) -> float:
        if not self.max_jitter:
            return 0.0
        return self.rng.random() * self.max_jitter


#: The installed policy factory, consulted once per Simulator
#: construction (each simulator gets a fresh policy so seeded RNG state
#: is never shared across runs). ``None`` — the default — means FIFO
#: through the zero-overhead fast path.
POLICY_FACTORY: Optional[Callable[[], SchedulePolicy]] = None


@contextmanager
def schedule_policy(
    factory: Optional[Callable[[], SchedulePolicy]],
) -> Iterator[None]:
    """Install a policy factory for simulators built inside the block.

    This is the sanitizer's designated swap point, mirroring
    ``repro.obs.recorder.recording``: the module attribute changes only
    here, between runs, never while a simulator is executing.
    """
    global POLICY_FACTORY  # repro: thread-safe: designated swap point; mutated only between runs, and simulators snapshot the factory at construction
    previous = POLICY_FACTORY
    POLICY_FACTORY = factory
    try:
        yield
    finally:
        POLICY_FACTORY = previous


class EventHandle:
    """One scheduled event: a callback plus a ``cancelled`` flag.

    Returned by :meth:`Simulator.schedule` / :meth:`schedule_at`; pass
    it to :meth:`Simulator.cancel` to deschedule the callback. The
    record is deliberately tiny (three slots) — it is allocated on
    every schedule, on the hot path of every message send. ``pooled``
    marks handles owned by the simulator's freelist
    (:meth:`Simulator.schedule_pooled`): such handles are never handed
    to a caller, so they can be recycled the instant they fire without
    any reference going stale.
    """

    __slots__ = ("callback", "cancelled", "pooled")

    def __init__(self, callback: Callable[[], None], pooled: bool = False):
        self.callback: Optional[Callable[[], None]] = callback
        self.cancelled = False
        self.pooled = pooled

    @property
    def live(self) -> bool:
        """Still queued and due to run (not cancelled, not yet fired)."""
        return self.callback is not None and not self.cancelled


#: FIFO-mode bucket: handles in scheduling order.
_FifoBucket = Deque[EventHandle]
#: Policy-mode bucket: a heapq list of (tie-break key, handle).
_KeyedBucket = List[Tuple[int, EventHandle]]


class Simulator:
    """A deterministic discrete-event simulator.

    Events are ``(time, sequence)``-ordered callbacks; ties break by
    scheduling order, which — together with seeded randomness everywhere
    else — makes entire experiment runs reproducible.
    """

    def __init__(self, policy: Optional[SchedulePolicy] = None):
        #: Calendar buckets: timestamp -> same-timestamp events. A
        #: bucket stays here until exhausted, so same-instant schedules
        #: during its drain join it in order.
        self._buckets: Dict[float, object] = {}
        #: One heap entry per distinct pending timestamp (the bucket
        #: anchors); kept in lockstep with ``_buckets``.
        self._times: List[float] = []
        #: Recycled empty bucket containers (deques or lists, matching
        #: the simulator's mode for its whole lifetime).
        self._bucket_pool: List[object] = []
        #: Freelist of fire-and-forget EventHandles plus its traffic
        #: counters (read by :meth:`pool_stats`, mutated only by the
        #: event loop).
        self._handle_pool: List[EventHandle] = []
        self._handles_created = 0  # repro: owned-by: single-writer
        self._handles_reused = 0  # repro: owned-by: single-writer
        self._sequence = itertools.count()
        #: Cancelled entries still sitting in buckets (lazy deletion).
        self._cancelled = AtomicCounter()  # repro: owned-by: shared
        #: Remaining ``max_events`` slots of the innermost bounded run,
        #: or None when unbounded; shared with the bus's inline path so
        #: the bound stays exact (see :meth:`claim_inline_slot`).
        self._budget: Optional[int] = None
        #: Tie-break policy, fixed for the simulator's lifetime. None —
        #: the common case — keeps scheduling on the FIFO-deque fast
        #: path, byte-identical to the pre-policy engine.
        if policy is None and POLICY_FACTORY is not None:
            policy = POLICY_FACTORY()
        self.policy = policy
        self._fifo = policy is None
        #: Mode-specific insert, bound once (the branch would otherwise
        #: run on every schedule).
        self._enqueue = self._enqueue_fifo if self._fifo else self._enqueue_keyed
        self.now = 0.0
        self.events_run = AtomicCounter()  # repro: owned-by: shared

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def _enqueue_fifo(self, time: float, handle: EventHandle) -> None:
        """Insert into the bucket for ``time`` (creating the bucket and
        its heap anchor if this timestamp is new) — FIFO mode, where the
        sequence counter is never consumed."""
        buckets = self._buckets
        bucket = buckets.get(time)
        if bucket is None:
            pool = self._bucket_pool
            bucket = pool.pop() if pool else deque()
            buckets[time] = bucket
            heappush(self._times, time)
        bucket.append(handle)  # type: ignore[attr-defined]

    def _enqueue_keyed(self, time: float, handle: EventHandle) -> None:
        """Policy-mode insert: the bucket is a heap of (tie-break key,
        handle); keys are injective so handles are never compared."""
        key = self.policy.key(next(self._sequence))  # type: ignore[union-attr]
        buckets = self._buckets
        bucket = buckets.get(time)
        if bucket is None:
            pool = self._bucket_pool
            bucket = pool.pop() if pool else []
            buckets[time] = bucket
            heappush(self._times, time)
        heappush(bucket, (key, handle))  # type: ignore[arg-type]

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Run ``callback`` ``delay`` time units from now."""
        if delay < 0 or not isfinite(delay):
            raise SimulationError(
                "cannot schedule a negative or non-finite delay (delay=%r)" % delay
            )
        handle = EventHandle(callback)
        self._enqueue(self.now + delay, handle)
        return handle

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Run ``callback`` at absolute simulated ``time``."""
        if not isfinite(time):
            raise SimulationError("cannot schedule at non-finite time %r" % time)
        if time < self.now:
            raise SimulationError(
                "cannot schedule at %r, current time is %r" % (time, self.now)
            )
        handle = EventHandle(callback)
        self._enqueue(time, handle)
        return handle

    def _acquire_handle(self, callback: Callable[[], None]) -> EventHandle:
        pool = self._handle_pool
        if pool:
            handle = pool.pop()
            handle.callback = callback
            self._handles_reused += 1
        else:
            handle = EventHandle(callback, pooled=True)
            self._handles_created += 1
        return handle

    def schedule_pooled(self, delay: float, callback: Callable[[], None]) -> None:
        """Fire-and-forget :meth:`schedule`: no handle is returned, so
        the event cannot be cancelled — in exchange its handle comes
        from (and returns to) the simulator's freelist."""
        if delay < 0 or not isfinite(delay):
            raise SimulationError(
                "cannot schedule a negative or non-finite delay (delay=%r)" % delay
            )
        self._enqueue(self.now + delay, self._acquire_handle(callback))

    def schedule_at_pooled(self, time: float, callback: Callable[[], None]) -> None:
        """Fire-and-forget :meth:`schedule_at` using the handle freelist."""
        if not isfinite(time):
            raise SimulationError("cannot schedule at non-finite time %r" % time)
        if time < self.now:
            raise SimulationError(
                "cannot schedule at %r, current time is %r" % (time, self.now)
            )
        self._enqueue(time, self._acquire_handle(callback))

    def cancel(self, handle: EventHandle) -> bool:
        """Deschedule an event; returns whether it was still live.

        Cancellation is lazy: the bucket entry stays put and is skipped
        (uncounted) when it surfaces. Cancelling an event that already
        fired or was already cancelled is a no-op returning False, so
        reply paths may cancel their timeout guard unconditionally.
        """
        if handle.cancelled or handle.callback is None:
            return False
        handle.cancelled = True
        handle.callback = None  # free captured state now, not at fire time
        self._cancelled.increment()
        return True

    @property
    def pending(self) -> int:
        """Number of *live* events still queued (cancelled excluded)."""
        queued = sum(len(bucket) for bucket in self._buckets.values())  # type: ignore[arg-type]
        return queued - self._cancelled.get()

    def pool_stats(self) -> Dict[str, int]:
        """Handle-freelist traffic: constructed, recycled, and idle."""
        return {
            "created": self._handles_created,
            "reused": self._handles_reused,
            "free": len(self._handle_pool),
        }

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _retire_bucket(self, time: float, bucket: object) -> None:
        """Drop an exhausted bucket and recycle its container."""
        heappop(self._times)
        del self._buckets[time]
        self._bucket_pool.append(bucket)

    def claim_inline_slot(self, time: float) -> bool:
        """Whether an event at ``time`` may run inline, skipping the queue.

        The message bus's same-timestamp delivery fast path asks this
        before invoking a callback directly instead of round-tripping it
        through a schedule/pop. Claiming succeeds only when running the
        callback *now* is provably identical to scheduling it: ``time``
        is the current instant and every queued live event is strictly
        later (a freshly scheduled event would land at the back of the
        current bucket, so it would be popped next anyway). A granted
        claim is charged like a popped event — ``events_run`` and the
        active ``max_events`` budget — keeping accounting exact; when
        the budget is exhausted the claim is refused and the caller must
        schedule normally (the run loop then raises before executing).
        """
        if time != self.now:
            return False
        times = self._times
        fifo = self._fifo
        while times:
            head = times[0]
            if head > time:
                # Common case: everything queued is strictly later, and
                # whatever cancelled entries sit behind ``head`` cannot
                # change that — skip the housekeeping entirely.
                break
            bucket = self._buckets[head]
            # Lazy-deletion housekeeping at the queue head.
            if fifo:
                while bucket and bucket[0].cancelled:  # type: ignore[index, attr-defined]
                    bucket.popleft()  # type: ignore[attr-defined]
                    self._cancelled.decrement()
            else:
                while bucket and bucket[0][1].cancelled:  # type: ignore[index]
                    heappop(bucket)  # type: ignore[arg-type]
                    self._cancelled.decrement()
            if not bucket:
                self._retire_bucket(head, bucket)
                continue
            return False
        budget = self._budget
        if budget is not None:
            if budget <= 0:
                return False
            self._budget = budget - 1
        self.events_run.increment()
        obs = _obs.ACTIVE
        if obs.enabled:
            obs.event_executed(time)
        return True

    def step(self) -> bool:
        """Run the next live event; returns False when none remain."""
        times = self._times
        buckets = self._buckets
        fifo = self._fifo
        while times:
            time = times[0]
            bucket = buckets[time]
            if not bucket:
                self._retire_bucket(time, bucket)
                continue
            if fifo:
                handle = bucket.popleft()  # type: ignore[attr-defined]
            else:
                handle = heappop(bucket)[1]  # type: ignore[arg-type]
            if handle.cancelled:
                self._cancelled.decrement()
                continue
            callback = handle.callback
            handle.callback = None
            if handle.pooled:
                self._handle_pool.append(handle)
            self.now = time
            self.events_run.increment()
            obs = _obs.ACTIVE
            if obs.enabled:
                obs.event_executed(time)
            callback()  # type: ignore[misc]
            return True
        return False

    def run_until_idle(self, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains; returns events executed.

        ``max_events`` guards against protocol bugs that would otherwise
        spin forever: at most ``max_events`` events are executed, and
        needing more raises :class:`SimulationError`. The bound is
        exact (a run that quiesces in exactly ``max_events`` events
        succeeds; one that would need ``max_events + 1`` never runs the
        extra event), and events the bus delivers inline count against
        it like any other.
        """
        times = self._times
        buckets = self._buckets
        fifo = self._fifo
        handle_pool = self._handle_pool
        events_run = self.events_run
        drop_cancelled = self._cancelled.decrement
        started = events_run.get()
        outer_budget = self._budget
        self._budget = max_events
        # Popped events are tallied locally and folded into the shared
        # counter once per batch (claim_inline_slot still charges its
        # inline deliveries directly, between the flushes).
        popped = 0
        try:
            while times:
                time = times[0]
                bucket = buckets[time]
                if not bucket:
                    self._retire_bucket(time, bucket)
                    continue
                # Peek before charging: an exhausted budget must leave
                # the event queued, and a cancelled head is uncounted.
                handle = bucket[0] if fifo else bucket[0][1]  # type: ignore[index]
                if handle.cancelled:
                    if fifo:
                        bucket.popleft()  # type: ignore[attr-defined]
                    else:
                        heappop(bucket)  # type: ignore[arg-type]
                    drop_cancelled()
                    continue
                budget = self._budget  # re-read: inline deliveries consume it
                if budget is not None:
                    if budget <= 0:
                        raise SimulationError(
                            "simulation did not quiesce within %d events" % max_events
                        )
                    self._budget = budget - 1
                if fifo:
                    bucket.popleft()  # type: ignore[attr-defined]
                else:
                    heappop(bucket)  # type: ignore[arg-type]
                callback = handle.callback
                handle.callback = None
                if handle.pooled:
                    handle_pool.append(handle)
                self.now = time
                popped += 1
                obs = _obs.ACTIVE
                if obs.enabled:
                    events_run.increment(popped)
                    popped = 0
                    obs.event_executed(time)
                callback()  # type: ignore[misc]
        finally:
            if popped:
                events_run.increment(popped)
            self._budget = outer_budget
        return events_run.get() - started

    def run_until(self, time: float, max_events: Optional[int] = None) -> int:
        """Run all events scheduled strictly before ``time``; advances
        the clock to ``time``. ``max_events`` bounds execution exactly,
        as in :meth:`run_until_idle`."""
        times = self._times
        buckets = self._buckets
        fifo = self._fifo
        handle_pool = self._handle_pool
        events_run = self.events_run
        drop_cancelled = self._cancelled.decrement
        started = events_run.get()
        outer_budget = self._budget
        self._budget = max_events
        popped = 0  # folded into events_run once per batch, as above
        try:
            while times and times[0] < time:
                head = times[0]
                bucket = buckets[head]
                if not bucket:
                    self._retire_bucket(head, bucket)
                    continue
                handle = bucket[0] if fifo else bucket[0][1]  # type: ignore[index]
                if handle.cancelled:
                    if fifo:
                        bucket.popleft()  # type: ignore[attr-defined]
                    else:
                        heappop(bucket)  # type: ignore[arg-type]
                    drop_cancelled()
                    continue
                budget = self._budget
                if budget is not None:
                    if budget <= 0:
                        raise SimulationError("too many events before time %r" % time)
                    self._budget = budget - 1
                if fifo:
                    bucket.popleft()  # type: ignore[attr-defined]
                else:
                    heappop(bucket)  # type: ignore[arg-type]
                callback = handle.callback
                handle.callback = None
                if handle.pooled:
                    handle_pool.append(handle)
                self.now = head
                popped += 1
                obs = _obs.ACTIVE
                if obs.enabled:
                    events_run.increment(popped)
                    popped = 0
                    obs.event_executed(head)
                callback()  # type: ignore[misc]
        finally:
            if popped:
                events_run.increment(popped)
            self._budget = outer_budget
        if time > self.now:
            self.now = time
        return events_run.get() - started
