"""The discrete-event engine: a clock and an ordered event queue."""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

from repro.errors import SimulationError


class Simulator:
    """A deterministic discrete-event simulator.

    Events are ``(time, sequence)``-ordered callbacks; ties break by
    scheduling order, which — together with seeded randomness everywhere
    else — makes entire experiment runs reproducible.
    """

    def __init__(self):
        self._queue = []
        self._sequence = itertools.count()
        self.now = 0.0
        self.events_run = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError("cannot schedule into the past (delay=%r)" % delay)
        heapq.heappush(self._queue, (self.now + delay, next(self._sequence), callback))

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                "cannot schedule at %r, current time is %r" % (time, self.now)
            )
        heapq.heappush(self._queue, (time, next(self._sequence), callback))

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    def step(self) -> bool:
        """Run the next event; returns False when the queue is empty."""
        if not self._queue:
            return False
        time, _seq, callback = heapq.heappop(self._queue)
        self.now = time
        self.events_run += 1
        callback()
        return True

    def run_until_idle(self, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains; returns events executed.

        ``max_events`` guards against protocol bugs that would otherwise
        spin forever: at most ``max_events`` events are executed, and
        needing more raises :class:`SimulationError`. The bound is
        checked *before* each event so it is exact (a run that quiesces
        in exactly ``max_events`` events succeeds; one that would need
        ``max_events + 1`` never runs the extra event).
        """
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                raise SimulationError(
                    "simulation did not quiesce within %d events" % max_events
                )
            self.step()
            executed += 1
        return executed

    def run_until(self, time: float, max_events: Optional[int] = None) -> int:
        """Run all events scheduled strictly before ``time``; advances
        the clock to ``time``. ``max_events`` bounds execution exactly,
        as in :meth:`run_until_idle`."""
        executed = 0
        while self._queue and self._queue[0][0] < time:
            if max_events is not None and executed >= max_events:
                raise SimulationError(
                    "too many events before time %r" % time
                )
            self.step()
            executed += 1
        self.now = max(self.now, time)
        return executed
