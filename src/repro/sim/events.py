"""The discrete-event engine: a clock and an ordered event queue.

Event lifecycle
---------------
``schedule``/``schedule_at`` wrap the callback in a slotted
:class:`EventHandle` and push ``(time, sequence, handle)`` onto a binary
heap — the tuple keeps heap comparisons in C (handles are never
compared). The handle supports *lazy cancellation*: ``cancel`` marks it
and drops the callback reference immediately (so captured state is
freed at cancel time, not fire time), and the run loops pop-and-skip
cancelled entries without counting them as executed events. This is how
RPC timeout guards disappear on reply instead of surviving in the heap
as dead no-op closures until their fire time.

``pending`` counts *live* events only (a cancelled-events counter is
maintained alongside the heap), so quiescence checks built on it do not
see cancelled timers.

The run loops (:meth:`Simulator.run_until_idle` / :meth:`run_until`)
inline :meth:`step` with hoisted attribute lookups, and they keep the
``max_events`` bound *exact* through a shared budget that the message
bus's same-timestamp inline fast path also charges
(:meth:`claim_inline_slot`): every executed event — popped or inline —
consumes exactly one slot, and the bound raises before the event that
would exceed it.

Schedule tie-break policies
---------------------------
Same-timestamp events are FIFO-ordered by default (the monotonic
sequence number). That order is *one legal schedule* among many: any
interleaving of same-timestamp events is permitted by the model, and
code that is only correct under the FIFO accident is code that will
break the moment real threads (or a real network) reorder it. A
:class:`SchedulePolicy` makes the tie-break pluggable:
:class:`FifoPolicy` reproduces the historical order bit-for-bit, and
:class:`PerturbedPolicy` re-keys same-timestamp ties with a seeded RNG
and can add bounded delivery-delay jitter on the message plane — the
schedule-perturbation sanitizer (``repro check --sanitize``) runs the
bench scenarios under it and asserts the invariant set still holds.
Policies are installed per-simulator at construction, snapshotting the
module-level :data:`POLICY_FACTORY` swap point (see
:func:`schedule_policy`); with no policy installed the scheduling hot
path is exactly the pre-sanitizer code.
"""

from __future__ import annotations

import heapq
import itertools
from contextlib import contextmanager
from math import isfinite
from random import Random
from typing import Callable, Iterator, List, Optional, Tuple

from repro.core.atomics import AtomicCounter
from repro.errors import SimulationError
from repro.obs import recorder as _obs


class SchedulePolicy:
    """How same-timestamp events are ordered (and messages delayed).

    ``key(seq)`` maps the monotonic scheduling sequence number to the
    integer tie-break key stored in the heap entry: heap order is
    ``(time, key)`` and keys are unique, so any injective mapping
    yields a deterministic total order. ``delivery_jitter()`` is extra
    network delay the message bus adds per send (0.0 for exact
    latency-model behaviour).
    """

    def key(self, seq: int) -> int:
        return seq

    def delivery_jitter(self) -> float:
        return 0.0


class FifoPolicy(SchedulePolicy):
    """The default order, made explicit: ties break by scheduling
    order, no jitter. Installing this policy is byte-identical to
    installing none — the regression tests pin that equivalence."""


class PerturbedPolicy(SchedulePolicy):
    """Adversarial-but-legal schedules from a seeded RNG.

    Same-timestamp events are reordered by a random 32-bit major key
    (the sequence number survives in the low bits, keeping keys unique
    and runs reproducible per seed); ``max_jitter`` > 0 additionally
    stretches each message's network transit by a uniform random delay
    in ``[0, max_jitter)``. Every schedule this policy produces is one
    the event model already allows — a run that breaks under it was
    deterministic by accident, not correct.
    """

    def __init__(self, rng: Random, max_jitter: float = 0.0):
        if max_jitter < 0 or not isfinite(max_jitter):
            raise ValueError("max_jitter must be finite and >= 0")
        self.rng = rng
        self.max_jitter = max_jitter

    def key(self, seq: int) -> int:
        # Random major bits shuffle same-timestamp groups; the sequence
        # number in the low bits keeps keys unique (and comparisons
        # never reach the EventHandle).
        return (self.rng.getrandbits(32) << 48) | seq

    def delivery_jitter(self) -> float:
        if not self.max_jitter:
            return 0.0
        return self.rng.random() * self.max_jitter


#: The installed policy factory, consulted once per Simulator
#: construction (each simulator gets a fresh policy so seeded RNG state
#: is never shared across runs). ``None`` — the default — means FIFO
#: through the zero-overhead fast path.
POLICY_FACTORY: Optional[Callable[[], SchedulePolicy]] = None


@contextmanager
def schedule_policy(
    factory: Optional[Callable[[], SchedulePolicy]],
) -> Iterator[None]:
    """Install a policy factory for simulators built inside the block.

    This is the sanitizer's designated swap point, mirroring
    ``repro.obs.recorder.recording``: the module attribute changes only
    here, between runs, never while a simulator is executing.
    """
    global POLICY_FACTORY  # repro: thread-safe: designated swap point; mutated only between runs, and simulators snapshot the factory at construction
    previous = POLICY_FACTORY
    POLICY_FACTORY = factory
    try:
        yield
    finally:
        POLICY_FACTORY = previous


class EventHandle:
    """One scheduled event: a callback plus a ``cancelled`` flag.

    Returned by :meth:`Simulator.schedule` / :meth:`schedule_at`; pass
    it to :meth:`Simulator.cancel` to deschedule the callback. The
    record is deliberately tiny (two slots) — it is allocated on every
    schedule, on the hot path of every message send.
    """

    __slots__ = ("callback", "cancelled")

    def __init__(self, callback: Callable[[], None]):
        self.callback: Optional[Callable[[], None]] = callback
        self.cancelled = False

    @property
    def live(self) -> bool:
        """Still queued and due to run (not cancelled, not yet fired)."""
        return self.callback is not None and not self.cancelled


#: Internal alias: the heap entry shape.
_Entry = Tuple[float, int, EventHandle]


class Simulator:
    """A deterministic discrete-event simulator.

    Events are ``(time, sequence)``-ordered callbacks; ties break by
    scheduling order, which — together with seeded randomness everywhere
    else — makes entire experiment runs reproducible.
    """

    def __init__(self, policy: Optional[SchedulePolicy] = None):
        self._queue: List[_Entry] = []
        self._sequence = itertools.count()
        #: Cancelled entries still sitting in the heap (lazy deletion).
        self._cancelled = AtomicCounter()  # repro: owned-by: shared
        #: Remaining ``max_events`` slots of the innermost bounded run,
        #: or None when unbounded; shared with the bus's inline path so
        #: the bound stays exact (see :meth:`claim_inline_slot`).
        self._budget: Optional[int] = None
        #: Tie-break policy, fixed for the simulator's lifetime. None —
        #: the common case — keeps scheduling on the raw-sequence fast
        #: path, byte-identical to the pre-policy engine.
        if policy is None and POLICY_FACTORY is not None:
            policy = POLICY_FACTORY()
        self.policy = policy
        self.now = 0.0
        self.events_run = AtomicCounter()  # repro: owned-by: shared

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Run ``callback`` ``delay`` time units from now."""
        if delay < 0 or not isfinite(delay):
            raise SimulationError(
                "cannot schedule a negative or non-finite delay (delay=%r)" % delay
            )
        handle = EventHandle(callback)
        key = next(self._sequence)
        policy = self.policy
        if policy is not None:
            key = policy.key(key)
        heapq.heappush(self._queue, (self.now + delay, key, handle))
        return handle

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Run ``callback`` at absolute simulated ``time``."""
        if not isfinite(time):
            raise SimulationError("cannot schedule at non-finite time %r" % time)
        if time < self.now:
            raise SimulationError(
                "cannot schedule at %r, current time is %r" % (time, self.now)
            )
        handle = EventHandle(callback)
        key = next(self._sequence)
        policy = self.policy
        if policy is not None:
            key = policy.key(key)
        heapq.heappush(self._queue, (time, key, handle))
        return handle

    def cancel(self, handle: EventHandle) -> bool:
        """Deschedule an event; returns whether it was still live.

        Cancellation is lazy: the heap entry stays put and is skipped
        (uncounted) when it surfaces. Cancelling an event that already
        fired or was already cancelled is a no-op returning False, so
        reply paths may cancel their timeout guard unconditionally.
        """
        if handle.cancelled or handle.callback is None:
            return False
        handle.cancelled = True
        handle.callback = None  # free captured state now, not at fire time
        self._cancelled.increment()
        return True

    @property
    def pending(self) -> int:
        """Number of *live* events still queued (cancelled excluded)."""
        return len(self._queue) - self._cancelled.get()

    def claim_inline_slot(self, time: float) -> bool:
        """Whether an event at ``time`` may run inline, skipping the heap.

        The message bus's same-timestamp delivery fast path asks this
        before invoking a callback directly instead of round-tripping it
        through a heap push/pop. Claiming succeeds only when running the
        callback *now* is provably identical to scheduling it: ``time``
        is the current instant and every queued live event is strictly
        later (a freshly scheduled event would carry the largest
        sequence number, so it would be popped next anyway). A granted
        claim is charged like a popped event — ``events_run`` and the
        active ``max_events`` budget — keeping accounting exact; when
        the budget is exhausted the claim is refused and the caller must
        schedule normally (the run loop then raises before executing).
        """
        if time != self.now:
            return False
        queue = self._queue
        while queue and queue[0][2].cancelled:  # lazy-deletion housekeeping
            heapq.heappop(queue)
            self._cancelled.decrement()
        if queue and queue[0][0] <= time:
            return False
        budget = self._budget
        if budget is not None:
            if budget <= 0:
                return False
            self._budget = budget - 1
        self.events_run.increment()
        obs = _obs.ACTIVE
        if obs.enabled:
            obs.event_executed(time)
        return True

    def step(self) -> bool:
        """Run the next live event; returns False when none remain."""
        queue = self._queue
        while queue:
            time, _seq, handle = heapq.heappop(queue)
            if handle.cancelled:
                self._cancelled.decrement()
                continue
            callback = handle.callback
            handle.callback = None
            self.now = time
            self.events_run.increment()
            obs = _obs.ACTIVE
            if obs.enabled:
                obs.event_executed(time)
            callback()  # type: ignore[misc]  # live entries hold a callback
            return True
        return False

    def run_until_idle(self, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains; returns events executed.

        ``max_events`` guards against protocol bugs that would otherwise
        spin forever: at most ``max_events`` events are executed, and
        needing more raises :class:`SimulationError`. The bound is
        exact (a run that quiesces in exactly ``max_events`` events
        succeeds; one that would need ``max_events + 1`` never runs the
        extra event), and events the bus delivers inline count against
        it like any other.
        """
        queue = self._queue
        pop = heapq.heappop
        events_run = self.events_run
        drop_cancelled = self._cancelled.decrement
        started = events_run.get()
        outer_budget = self._budget
        self._budget = max_events
        # Popped events are tallied locally and folded into the shared
        # counter once per batch (claim_inline_slot still charges its
        # inline deliveries directly, between the flushes).
        popped = 0
        try:
            while queue:
                entry = queue[0]
                handle = entry[2]
                if handle.cancelled:
                    pop(queue)
                    drop_cancelled()
                    continue
                budget = self._budget  # re-read: inline deliveries consume it
                if budget is not None:
                    if budget <= 0:
                        raise SimulationError(
                            "simulation did not quiesce within %d events" % max_events
                        )
                    self._budget = budget - 1
                pop(queue)
                callback = handle.callback
                handle.callback = None
                self.now = entry[0]
                popped += 1
                obs = _obs.ACTIVE
                if obs.enabled:
                    events_run.increment(popped)
                    popped = 0
                    obs.event_executed(entry[0])
                callback()  # type: ignore[misc]
        finally:
            if popped:
                events_run.increment(popped)
            self._budget = outer_budget
        return events_run.get() - started

    def run_until(self, time: float, max_events: Optional[int] = None) -> int:
        """Run all events scheduled strictly before ``time``; advances
        the clock to ``time``. ``max_events`` bounds execution exactly,
        as in :meth:`run_until_idle`."""
        queue = self._queue
        pop = heapq.heappop
        events_run = self.events_run
        drop_cancelled = self._cancelled.decrement
        started = events_run.get()
        outer_budget = self._budget
        self._budget = max_events
        popped = 0  # folded into events_run once per batch, as above
        try:
            while queue and queue[0][0] < time:
                entry = queue[0]
                handle = entry[2]
                if handle.cancelled:
                    pop(queue)
                    drop_cancelled()
                    continue
                budget = self._budget
                if budget is not None:
                    if budget <= 0:
                        raise SimulationError("too many events before time %r" % time)
                    self._budget = budget - 1
                pop(queue)
                callback = handle.callback
                handle.callback = None
                self.now = entry[0]
                popped += 1
                obs = _obs.ACTIVE
                if obs.enabled:
                    events_run.increment(popped)
                    popped = 0
                    obs.event_executed(entry[0])
                callback()  # type: ignore[misc]
        finally:
            if popped:
                events_run.increment(popped)
            self._budget = outer_budget
        if time > self.now:
            self.now = time
        return events_run.get() - started
