"""Churn and failure trace generation (Section 3.4 experiments).

A churn trace is a reproducible sequence of membership events used by
the churn and crash benches: joins, graceful leaves and crashes, drawn
from seeded distributions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import SimulationError


@dataclass(frozen=True)
class ChurnEvent:
    """One membership event at a simulated time."""

    time: float
    action: str  # "join" | "leave" | "crash"


def churn_trace(
    rng: random.Random,
    duration: float,
    join_rate: float,
    leave_rate: float,
    crash_rate: float = 0.0,
) -> List[ChurnEvent]:
    """A Poisson churn trace over ``duration`` simulated time units.

    Rates are events per time unit. Events are returned time-ordered.
    """
    if duration <= 0:
        raise SimulationError("duration must be positive")
    events: List[ChurnEvent] = []
    for action, rate in (("join", join_rate), ("leave", leave_rate), ("crash", crash_rate)):
        if rate < 0:
            raise SimulationError("negative rate for %s" % action)
        if rate == 0:
            continue
        t = rng.expovariate(rate)
        while t < duration:
            events.append(ChurnEvent(t, action))
            t += rng.expovariate(rate)
    events.sort(key=lambda e: e.time)
    return events


def correlated_crash_trace(
    rng: random.Random,
    duration: float,
    rate: float,
    batch: int,
) -> List[ChurnEvent]:
    """Crashes arriving in correlated batches (rack/AZ failures).

    Failure instants form a Poisson process of the given ``rate``; each
    instant carries ``batch`` simultaneous crash events (same
    timestamp), modelling the correlated-failure mode — a switch or a
    rack power supply taking several nodes at once — that independent
    per-node crash models miss. Events are returned time-ordered.
    """
    if duration <= 0:
        raise SimulationError("duration must be positive")
    if rate < 0:
        raise SimulationError("negative rate for correlated crashes")
    if batch < 1:
        raise SimulationError("batch must be at least 1")
    events: List[ChurnEvent] = []
    if rate == 0:
        return events
    t = rng.expovariate(rate)
    while t < duration:
        events.extend(ChurnEvent(t, "crash") for _ in range(batch))
        t += rng.expovariate(rate)
    return events


def oscillation_trace(
    period: float,
    count: int,
    start: Optional[float] = None,
    first: str = "join",
) -> List[ChurnEvent]:
    """Adversarial join/leave oscillation: strictly alternating
    membership changes at a fixed period.

    ``count`` events alternate join / graceful leave starting with
    ``first``, one every ``period`` time units from ``start`` (default
    one period in). This parks the system at a split/merge threshold:
    each oscillation nudges the size estimate back and forth, so
    hysteresis (or its absence) is what decides whether the network
    thrashes through reconfigurations.
    """
    if period <= 0:
        raise SimulationError("period must be positive")
    if count < 0:
        raise SimulationError("count must be nonnegative")
    if first not in ("join", "leave"):
        raise SimulationError("first must be 'join' or 'leave'")
    if start is None:
        start = period
    other = "leave" if first == "join" else "join"
    return [
        ChurnEvent(start + index * period, first if index % 2 == 0 else other)
        for index in range(count)
    ]


def growth_then_shrink(
    grow_to: int, shrink_to: int, start_size: int, spacing: float = 1.0
) -> List[ChurnEvent]:
    """A deterministic trace: grow to ``grow_to`` nodes, then shrink.

    Used by the adaptation benches to show splits on the way up and
    merges on the way down.
    """
    if not 0 < shrink_to <= grow_to or start_size < 1:
        raise SimulationError("need 0 < shrink_to <= grow_to and start_size >= 1")
    events: List[ChurnEvent] = []
    t = spacing
    for _ in range(max(0, grow_to - start_size)):
        events.append(ChurnEvent(t, "join"))
        t += spacing
    for _ in range(grow_to - shrink_to):
        events.append(ChurnEvent(t, "leave"))
        t += spacing
    return events
