"""Message latency models.

The adaptive network's claims are about *shape* (hops, parallelism), not
absolute delay, so latency models are pluggable: constant for
deterministic tests, uniform/exponential for realism in benches.
"""

from __future__ import annotations

import random

from repro.errors import SimulationError


class LatencyModel:
    """Base class: one ``sample()`` per message."""

    def sample(self) -> float:  # pragma: no cover - interface
        raise NotImplementedError


class ConstantLatency(LatencyModel):
    """Every message takes exactly ``value`` time units."""

    def __init__(self, value: float = 1.0):
        if value < 0:
            raise SimulationError("latency cannot be negative")
        self.value = value

    def sample(self) -> float:
        return self.value


class UniformLatency(LatencyModel):
    """Latency uniform in ``[low, high]``."""

    def __init__(self, low: float, high: float, rng: random.Random):
        if not 0 <= low <= high:
            raise SimulationError("need 0 <= low <= high")
        self.low = low
        self.high = high
        self.rng = rng

    def sample(self) -> float:
        return self.rng.uniform(self.low, self.high)


class DiscreteLatency(LatencyModel):
    """Latency drawn from a small finite set of values.

    Models a network with a handful of distinct path classes (same rack,
    same site, cross-site) instead of a continuum. Besides realism, the
    small value set is what makes the simulator's calendar queue earn
    its keep at scale: messages sent at the same instant with the same
    path class arrive at the same timestamp, so events share buckets
    (and, with coalescing on, share trampolines) instead of degenerating
    into one bucket per event the way continuous latency does.

    ``weights`` (optional) biases the draw; by default all values are
    equally likely.
    """

    def __init__(self, values, rng: random.Random, weights=None):
        values = list(values)
        if not values:
            raise SimulationError("need at least one latency value")
        for value in values:
            if value < 0:
                raise SimulationError("latency cannot be negative")
        if weights is not None:
            weights = list(weights)
            if len(weights) != len(values):
                raise SimulationError("weights must match values one-to-one")
            if any(weight < 0 for weight in weights) or not sum(weights):
                raise SimulationError("weights must be nonnegative, not all zero")
        self.values = values
        self.weights = weights
        self.rng = rng

    def sample(self) -> float:
        if self.weights is None:
            return self.rng.choice(self.values)
        return self.rng.choices(self.values, weights=self.weights, k=1)[0]


class ExponentialLatency(LatencyModel):
    """Exponentially distributed latency with the given mean."""

    def __init__(self, mean: float, rng: random.Random):
        if mean <= 0:
            raise SimulationError("mean latency must be positive")
        self.mean = mean
        self.rng = rng

    def sample(self) -> float:
        return self.rng.expovariate(1.0 / self.mean)
