"""Message latency models.

The adaptive network's claims are about *shape* (hops, parallelism), not
absolute delay, so latency models are pluggable: constant for
deterministic tests, uniform/exponential for realism in benches.
"""

from __future__ import annotations

import random

from repro.errors import SimulationError


class LatencyModel:
    """Base class: one ``sample()`` per message."""

    def sample(self) -> float:  # pragma: no cover - interface
        raise NotImplementedError


class ConstantLatency(LatencyModel):
    """Every message takes exactly ``value`` time units."""

    def __init__(self, value: float = 1.0):
        if value < 0:
            raise SimulationError("latency cannot be negative")
        self.value = value

    def sample(self) -> float:
        return self.value


class UniformLatency(LatencyModel):
    """Latency uniform in ``[low, high]``."""

    def __init__(self, low: float, high: float, rng: random.Random):
        if not 0 <= low <= high:
            raise SimulationError("need 0 <= low <= high")
        self.low = low
        self.high = high
        self.rng = rng

    def sample(self) -> float:
        return self.rng.uniform(self.low, self.high)


class ExponentialLatency(LatencyModel):
    """Exponentially distributed latency with the given mean."""

    def __init__(self, mean: float, rng: random.Random):
        if mean <= 0:
            raise SimulationError("mean latency must be positive")
        self.mean = mean
        self.rng = rng

    def sample(self) -> float:
        return self.rng.expovariate(1.0 / self.mean)
