"""Tokens and token bookkeeping for the distributed runtime.

:class:`Token` and :class:`TokenMsg` are the hottest records in the
system — one of each per injection, and a ``TokenMsg`` per hop — so
both are hand-rolled ``__slots__`` classes rather than dataclasses:
no per-instance ``__dict__``, cheaper attribute access, and (for
``Token``) cheaper mutation of the hop/reroute counters en route.

:class:`TokenPool` is the freelist the system draws tokens from when
``recycle_tokens`` is enabled: a retired token is released back to the
pool after its retire-side bookkeeping completes and the next injection
reuses the record. Recycling is opt-in because anything that retains a
``Token`` reference past retirement (per-token experiment traces) would
observe the record mutate; the ``generation`` stamp makes such stale
retention detectable, exactly like envelope recycling on the bus.
Token construction outside this module is flagged by the RSC307 lint —
go through the pool (or the system's injection API) instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.atomics import AtomicCounter
from repro.obs import recorder as _obs


class Token:
    """One client token traversing the adaptive counting network."""

    __slots__ = (
        "token_id",
        "entry_wire",
        "issued_at",
        "hops",
        "reroutes",
        "retired_at",
        "exit_wire",
        "value",
        "owed",
        "generation",
    )

    def __init__(
        self,
        token_id: int,
        entry_wire: int,
        issued_at: float,
        hops: int = 0,
        reroutes: int = 0,
        retired_at: Optional[float] = None,
        exit_wire: Optional[int] = None,
        value: Optional[int] = None,
    ):
        self.token_id = token_id
        self.entry_wire = entry_wire
        self.issued_at = issued_at
        self.hops = hops
        self.reroutes = reroutes
        self.retired_at = retired_at
        self.exit_wire = exit_wire
        self.value = value
        #: Runtime bookkeeping: the (path, port) this token is currently
        #: owed to (emitted toward but not yet arrived at), or None.
        #: Crash recovery subtracts owed tokens when reconstructing a
        #: lost component's arrival counts.
        self.owed = None
        #: Recycle count (see :class:`TokenPool`): bumped on release, so
        #: a stale reference held past retirement is detectable.
        self.generation = 0

    @property
    def latency(self) -> Optional[float]:
        if self.retired_at is None:
            return None
        return self.retired_at - self.issued_at

    def __repr__(self):
        return "Token(id=%d, wire=%d, value=%r)" % (
            self.token_id,
            self.entry_wire,
            self.value,
        )


class TokenPool:
    """Freelist of :class:`Token` records for recycle-enabled runs.

    ``acquire`` either pops a retired record and resets *every* mutable
    field (a recycled token is indistinguishable from a fresh one except
    for its ``generation`` stamp) or constructs a new one. ``release``
    bumps the generation and returns the record to the freelist; callers
    must not touch the token afterwards. All traffic happens inside the
    simulation loop (injection and retirement are both events), so plain
    counters suffice.
    """

    def __init__(self) -> None:
        self._free: List[Token] = []  # repro: owned-by: single-writer
        self._acquired_fresh = 0  # repro: owned-by: single-writer
        self._acquired_recycled = 0  # repro: owned-by: single-writer

    def acquire(self, token_id: int, entry_wire: int, issued_at: float) -> Token:
        free = self._free
        if free:
            token = free.pop()
            token.token_id = token_id
            token.entry_wire = entry_wire
            token.issued_at = issued_at
            token.hops = 0
            token.reroutes = 0
            token.retired_at = None
            token.exit_wire = None
            token.value = None
            token.owed = None
            self._acquired_recycled += 1
            return token
        self._acquired_fresh += 1
        return Token(token_id, entry_wire, issued_at)

    def release(self, token: Token) -> None:
        token.generation += 1
        self._free.append(token)

    def stats(self) -> dict:
        """Pool traffic: constructed, recycled, and idle record counts."""
        return {
            "created": self._acquired_fresh,
            "reused": self._acquired_recycled,
            "free": len(self._free),
        }


class TokenMsg:
    """A token addressed to input ``port`` of the component at ``path``."""

    __slots__ = ("path", "port", "token")

    def __init__(self, path: Tuple[int, ...], port: int, token: Token):
        self.path = path
        self.port = port
        self.token = token

    def __repr__(self):
        return "TokenMsg(path=%r, port=%d, token=%r)" % (
            self.path,
            self.port,
            self.token,
        )


@dataclass
class TokenStats:
    """Aggregate token-plane statistics for one run.

    ``dropped`` counts tokens that exhausted their reroute budget and
    gave up (only reachable with recovery disabled); every issued token
    either retires or drops, so ``retired + dropped == issued`` at
    quiescence.
    """

    # Each statistic is an AtomicCounter (thread-readiness contract);
    # the counters compare/add like the plain ints they replaced, and
    # `stats.issued += n` still works (one atomic add, same object).
    issued: AtomicCounter = field(default_factory=AtomicCounter)  # repro: owned-by: shared
    retired: AtomicCounter = field(default_factory=AtomicCounter)  # repro: owned-by: shared
    dropped: AtomicCounter = field(default_factory=AtomicCounter)  # repro: owned-by: shared
    total_hops: AtomicCounter = field(default_factory=AtomicCounter)  # repro: owned-by: shared
    total_reroutes: AtomicCounter = field(default_factory=AtomicCounter)  # repro: owned-by: shared
    latencies: list = field(default_factory=list)

    def record_retired(self, token: Token) -> None:
        self.retired.increment()
        self.total_hops.increment(token.hops)
        self.total_reroutes.increment(token.reroutes)
        self.latencies.append(token.latency)
        obs = _obs.ACTIVE
        if obs.enabled:
            obs.token_retired(token)

    def record_dropped(self, token: Token) -> None:
        self.dropped.increment()

    @property
    def mean_hops(self) -> float:
        retired = self.retired.get()
        return self.total_hops.get() / retired if retired else 0.0

    @property
    def mean_latency(self) -> float:
        valid = [latency for latency in self.latencies if latency is not None]
        return sum(valid) / len(valid) if valid else 0.0
