"""Tokens and token bookkeeping for the distributed runtime.

:class:`Token` and :class:`TokenMsg` are the hottest records in the
system — one of each per injection, and a ``TokenMsg`` per hop — so
both are hand-rolled ``__slots__`` classes rather than dataclasses:
no per-instance ``__dict__``, cheaper attribute access, and (for
``Token``) cheaper mutation of the hop/reroute counters en route.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.core.atomics import AtomicCounter
from repro.obs import recorder as _obs


class Token:
    """One client token traversing the adaptive counting network."""

    __slots__ = (
        "token_id",
        "entry_wire",
        "issued_at",
        "hops",
        "reroutes",
        "retired_at",
        "exit_wire",
        "value",
        "owed",
    )

    def __init__(
        self,
        token_id: int,
        entry_wire: int,
        issued_at: float,
        hops: int = 0,
        reroutes: int = 0,
        retired_at: Optional[float] = None,
        exit_wire: Optional[int] = None,
        value: Optional[int] = None,
    ):
        self.token_id = token_id
        self.entry_wire = entry_wire
        self.issued_at = issued_at
        self.hops = hops
        self.reroutes = reroutes
        self.retired_at = retired_at
        self.exit_wire = exit_wire
        self.value = value
        #: Runtime bookkeeping: the (path, port) this token is currently
        #: owed to (emitted toward but not yet arrived at), or None.
        #: Crash recovery subtracts owed tokens when reconstructing a
        #: lost component's arrival counts.
        self.owed = None

    @property
    def latency(self) -> Optional[float]:
        if self.retired_at is None:
            return None
        return self.retired_at - self.issued_at

    def __repr__(self):
        return "Token(id=%d, wire=%d, value=%r)" % (
            self.token_id,
            self.entry_wire,
            self.value,
        )


class TokenMsg:
    """A token addressed to input ``port`` of the component at ``path``."""

    __slots__ = ("path", "port", "token")

    def __init__(self, path: Tuple[int, ...], port: int, token: Token):
        self.path = path
        self.port = port
        self.token = token

    def __repr__(self):
        return "TokenMsg(path=%r, port=%d, token=%r)" % (
            self.path,
            self.port,
            self.token,
        )


@dataclass
class TokenStats:
    """Aggregate token-plane statistics for one run.

    ``dropped`` counts tokens that exhausted their reroute budget and
    gave up (only reachable with recovery disabled); every issued token
    either retires or drops, so ``retired + dropped == issued`` at
    quiescence.
    """

    # Each statistic is an AtomicCounter (thread-readiness contract);
    # the counters compare/add like the plain ints they replaced, and
    # `stats.issued += n` still works (one atomic add, same object).
    issued: AtomicCounter = field(default_factory=AtomicCounter)  # repro: owned-by: shared
    retired: AtomicCounter = field(default_factory=AtomicCounter)  # repro: owned-by: shared
    dropped: AtomicCounter = field(default_factory=AtomicCounter)  # repro: owned-by: shared
    total_hops: AtomicCounter = field(default_factory=AtomicCounter)  # repro: owned-by: shared
    total_reroutes: AtomicCounter = field(default_factory=AtomicCounter)  # repro: owned-by: shared
    latencies: list = field(default_factory=list)

    def record_retired(self, token: Token) -> None:
        self.retired.increment()
        self.total_hops.increment(token.hops)
        self.total_reroutes.increment(token.reroutes)
        self.latencies.append(token.latency)
        obs = _obs.ACTIVE
        if obs.enabled:
            obs.token_retired(token)

    def record_dropped(self, token: Token) -> None:
        self.dropped.increment()

    @property
    def mean_hops(self) -> float:
        retired = self.retired.get()
        return self.total_hops.get() / retired if retired else 0.0

    @property
    def mean_latency(self) -> float:
        valid = [latency for latency in self.latencies if latency is not None]
        return sum(valid) / len(valid) if valid else 0.0
