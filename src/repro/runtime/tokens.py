"""Tokens and token bookkeeping for the distributed runtime."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


@dataclass
class Token:
    """One client token traversing the adaptive counting network."""

    token_id: int
    entry_wire: int
    issued_at: float
    hops: int = 0
    reroutes: int = 0
    retired_at: Optional[float] = None
    exit_wire: Optional[int] = None
    value: Optional[int] = None

    @property
    def latency(self) -> Optional[float]:
        if self.retired_at is None:
            return None
        return self.retired_at - self.issued_at


@dataclass(frozen=True)
class TokenMsg:
    """A token addressed to input ``port`` of the component at ``path``."""

    path: Tuple[int, ...]
    port: int
    token: Token


@dataclass
class TokenStats:
    """Aggregate token-plane statistics for one run.

    ``dropped`` counts tokens that exhausted their reroute budget and
    gave up (only reachable with recovery disabled); every issued token
    either retires or drops, so ``retired + dropped == issued`` at
    quiescence.
    """

    issued: int = 0
    retired: int = 0
    dropped: int = 0
    total_hops: int = 0
    total_reroutes: int = 0
    latencies: list = field(default_factory=list)

    def record_retired(self, token: Token) -> None:
        self.retired += 1
        self.total_hops += token.hops
        self.total_reroutes += token.reroutes
        self.latencies.append(token.latency)

    def record_dropped(self, token: Token) -> None:
        self.dropped += 1

    @property
    def mean_hops(self) -> float:
        return self.total_hops / self.retired if self.retired else 0.0

    @property
    def mean_latency(self) -> float:
        valid = [latency for latency in self.latencies if latency is not None]
        return sum(valid) / len(valid) if valid else 0.0
