"""The split and merge protocols of Section 2.2, over the simulator.

Splitting component ``c`` (initiated by its host ``v``):

1. ``v`` freezes ``c`` — arriving tokens are buffered;
2. the child components are created with the exact state transfer of
   :mod:`repro.core.splitmerge` and installed at their hash homes
   (one install + ack round trip per child, modelled as control latency
   and message counts);
3. ``c`` is removed, the split is recorded in ``v``'s split registry,
   and the buffered tokens are forwarded to the children through the
   local input wiring.

Merging ``c``'s subtree (initiated by the node that split ``c``):

1. every live member of the subtree that receives tokens from *outside*
   the subtree (the input boundary — exactly the members whose path
   below ``c`` uses only top/bottom child indices) is frozen;
2. the subtree drains: the protocol waits until no token is in flight
   toward a subtree member, so the subtree is internally quiescent
   (a refinement of the paper's sketch, which buffers at every member;
   draining keeps the merged state exact — see DESIGN.md);
3. live descendant states are collected and folded bottom-up with
   :func:`repro.core.splitmerge.merge_child_states` (the paper's
   recursive merge), the merged component is installed at ``h(c)``, the
   children are removed, and buffered boundary tokens are re-addressed
   to ``c``'s input ports and forwarded.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.components import ComponentState
from repro.core.decomposition import ComponentSpec
from repro.core.splitmerge import merge_child_states, split_child_states
from repro.errors import ComponentNotFound, ProtocolError
from repro.runtime.host import NodeHost
from repro.staticcheck.cuts import validate_merge, validate_split

Path = Tuple[int, ...]


class Reconfigurator:
    """Executes split/merge protocols against the running system."""

    def __init__(self, system):
        self.system = system

    # ------------------------------------------------------------------
    # split
    # ------------------------------------------------------------------
    def split(self, path: Path) -> List[Path]:
        """Split the live component at ``path``; returns the child paths."""
        system = self.system
        path = tuple(path)
        owner = system.directory.owner(path)
        host: NodeHost = system.hosts[owner]
        state = host.components.get(path)
        if state is None:
            raise ProtocolError("directory says %r is on %s, but it is not" % (path, owner))
        # Static gate (repro.staticcheck): reject the reconfiguration up
        # front — leaf split, or a post-split set that is not a valid
        # cut — before any freeze or state transfer happens.
        validate_split(system.tree, system.directory.live_paths(), path)
        host.freeze(path)
        children = split_child_states(system.wiring, state.spec, state.arrivals)
        # One install + ack round trip per child, concurrently.
        system.stats.control_messages += 2 * len(children)
        system.advance(2 * system.control_latency)
        new_paths: List[Path] = []
        for child_state in children:
            child_path = child_state.spec.path
            home = system.directory.home(child_path)
            system.hosts[home].install(child_state)
            system.directory.register(child_path, home)
            new_paths.append(child_path)
        host.remove(path)
        system.directory.unregister(path)
        host.split_registry.add(path)
        system.stats.splits += 1
        system.invalidate_caches()
        # Forward the tokens buffered while frozen into the children.
        spec = state.spec
        for port, token in host.drain_buffer(path):
            ref = system.wiring.parent_input_dest(spec, port)
            system.send_token(spec.child(ref.child).path, ref.port, token)
        return new_paths

    # ------------------------------------------------------------------
    # merge
    # ------------------------------------------------------------------
    def _input_fed_children(self, parent) -> frozenset:
        """Child indices that receive some of the parent's own inputs."""
        cache = getattr(self, "_input_fed_cache", None)
        if cache is None:
            cache = self._input_fed_cache = {}
        key = (parent.kind, parent.width)
        fed = cache.get(key)
        if fed is None:
            wiring = self.system.wiring
            fed = frozenset(
                wiring.parent_input_dest(parent, port).child
                for port in range(parent.width)
            )
            cache[key] = fed
        return fed

    def input_boundary(self, path: Path, subtree: List[Path]) -> List[Path]:
        """The subtree members that receive tokens from outside it.

        A member is externally fed iff every step of its path below
        ``path`` descends into an input-fed child of its parent (for the
        bitonic tree these are exactly the top/bottom indices 0 and 1;
        the predicate is computed from the wiring so the merge protocol
        works for any recursive structure).
        """
        depth = len(path)
        tree = self.system.tree
        boundary = []
        for member in subtree:
            spec = tree.node(path)
            fed = True
            for index in member[depth:]:
                if index not in self._input_fed_children(spec):
                    fed = False
                    break
                spec = spec.child(index)
            if fed:
                boundary.append(member)
        return boundary

    def merge(self, path: Path, initiator: NodeHost) -> Path:
        """Merge the live subtree below ``path`` back into one component."""
        system = self.system
        path = tuple(path)
        if system.directory.is_live(path):
            initiator.split_registry.discard(path)
            return path
        subtree = system.directory.live_descendants(path)
        if not subtree:
            raise ComponentNotFound("nothing to merge at %r" % (path,))
        # Static gate (repro.staticcheck): the live descendants must
        # partition the subtree exactly, or the folded counter state
        # would misaccount past tokens (token conservation).
        validate_merge(system.tree, system.directory.live_paths(), path)
        # Phase 1: freeze the input boundary (one message per member).
        boundary = self.input_boundary(path, subtree)
        system.stats.control_messages += len(boundary)
        for member in boundary:
            system.hosts[system.directory.owner(member)].freeze(member)
        system.advance(system.control_latency)
        # Phase 2: drain in-flight tokens headed into the subtree.
        system.drain_paths(set(subtree))
        # Phase 3: collect states, fold bottom-up, install the parent.
        system.stats.control_messages += 2 * len(subtree)
        buffered: List[Tuple[Path, int, object]] = []
        states: Dict[Path, ComponentState] = {}
        for member in subtree:
            owner_host = system.hosts[system.directory.owner(member)]
            for port, token in owner_host.drain_buffer(member):
                buffered.append((member, port, token))
            states[member] = owner_host.remove(member)
            system.directory.unregister(member)
            # Any sub-split bookkeeping inside the subtree is now moot.
            for host in system.hosts.values():
                host.split_registry.discard(member)
        merged = self._fold(system.tree.node(path), states)
        system.advance(2 * system.control_latency)
        home = system.directory.home(path)
        system.hosts[home].install(merged)
        system.directory.register(path, home)
        initiator.split_registry.discard(path)
        for host in system.hosts.values():
            host.split_registry.discard(path)
        system.stats.merges += 1
        system.invalidate_caches()
        # Phase 4: re-address buffered boundary tokens to the parent.
        for member, port, token in buffered:
            parent_port = self._port_at_ancestor(member, port, path)
            system.send_token(path, parent_port, token)
        return path

    def _fold(
        self, spec: ComponentSpec, states: Dict[Path, ComponentState]
    ) -> ComponentState:
        """Recursively merge collected states up to ``spec``."""
        if spec.path in states:
            return states[spec.path]
        child_states = [self._fold(child, states) for child in spec.children()]
        return merge_child_states(self.system.wiring, spec, child_states)

    def _port_at_ancestor(self, member: Path, port: int, ancestor: Path) -> int:
        """Map an externally-fed member's input port up to the ancestor's."""
        system = self.system
        spec = system.tree.node(member)
        current_port = port
        while spec.path != ancestor:
            parent = system.tree.parent(spec)
            source = system.wiring.parent_input_source(parent, spec.path[-1], current_port)
            if source is None:
                raise ProtocolError(
                    "buffered token at %r port %d is not externally fed"
                    % (member, port)
                )
            spec, current_port = parent, source
        return current_port
