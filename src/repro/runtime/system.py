"""The adaptive counting network system — the paper's artefact, runnable.

:class:`AdaptiveCountingSystem` wires every substrate together: the
decomposition tree and component wiring (Section 2), the Chord ring with
consistent hashing and size estimation (Sections 1.4/3.1), the
discrete-event message bus, the per-node hosts, the split/merge
protocols (Section 2.2), the decentralised rules (Section 3.2),
membership changes and crash recovery (Section 3.4), and client-side
input lookup (Section 3.5).

Typical use::

    system = AdaptiveCountingSystem(width=64, seed=1)
    for _ in range(50):
        system.add_node()
    system.converge()                  # rules split components
    values = [system.next_value() for _ in range(100)]
    assert sorted(values) == list(range(100))
    print(system.metrics())            # effective width/depth
"""

from __future__ import annotations

import random
from bisect import bisect_left, insort
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.chord.ring import ChordNode, ChordRing
from repro.core.atomics import AtomicCounter, PerWireCounters, TokenLedger
from repro.core.components import ComponentState, balanced_count_at
from repro.core.cut import Cut, CutNetwork
from repro.core.decomposition import ComponentSpec, DecompositionTree
from repro.core.metrics import NetworkMetrics, measure
from repro.core.verification import check_step_property
from repro.core.wiring import MergerConvention, Wiring
from repro.errors import ComponentNotFound, ProtocolError
from repro.obs import recorder as _obs
from repro.runtime.combining import BatchTokenMsg, Combiner, CombiningConfig
from repro.runtime.directory import ComponentDirectory
from repro.runtime.host import NodeHost
from repro.runtime.lookup import InputLookup, LookupResult
from repro.runtime.membership import CrashReport, MembershipManager
from repro.runtime.reconfig import Reconfigurator
from repro.runtime.rules import RulesEngine
from repro.runtime.audit import StateAuditor
from repro.runtime.stabilization import Stabilizer
from repro.runtime.tokens import Token, TokenMsg, TokenPool, TokenStats
from repro.sim.events import Simulator
from repro.sim.latency import ConstantLatency, LatencyModel
from repro.sim.node import MessageBus

Path = Tuple[int, ...]

#: Tokens give up after this many re-resolution attempts (only reachable
#: when recovery is disabled and the network has a permanent hole).
MAX_REROUTES = 64

#: Delay before a token retries after hitting a missing component.
RETRY_DELAY = 1.0


@dataclass
class SystemStats:
    """Control-plane statistics for one system instance."""

    splits: int = 0
    merges: int = 0
    handoffs: int = 0
    crashes: int = 0
    recoveries: int = 0
    control_messages: int = 0
    lookup_tries: List[int] = field(default_factory=list)
    lookup_hops: List[int] = field(default_factory=list)
    dropped_tokens: int = 0
    disturbed_tokens: int = 0


class AdaptiveCountingSystem:
    """A complete, simulated deployment of the adaptive bitonic network."""

    def __init__(
        self,
        width: int,
        seed: int = 0,
        initial_nodes: int = 1,
        latency: Optional[LatencyModel] = None,
        service_time: float = 0.0,
        step_multiplier: int = 4,
        hysteresis: int = 0,
        convention: MergerConvention = MergerConvention.AHS94,
        auto_stabilize: bool = True,
        combining: Optional[CombiningConfig] = None,
        coalesce: bool = False,
        recycle_tokens: bool = False,
        tree=None,
        wiring=None,
    ):
        if (tree is None) != (wiring is None):
            raise ProtocolError("pass tree and wiring together, or neither")
        self.tree = tree if tree is not None else DecompositionTree(width)
        self.width = self.tree.width
        self.wiring = wiring if wiring is not None else Wiring(self.tree, convention)
        self.ring = ChordRing(seed=seed)
        self.rng = random.Random(seed + 1)
        self.sim = Simulator()
        self.bus = MessageBus(
            self.sim, latency or ConstantLatency(1.0), service_time, coalesce=coalesce
        )
        #: Token freelist. With ``recycle_tokens`` off (the default) the
        #: pool only ever constructs, so behaviour is unchanged; with it
        #: on, a token is released back the moment retirement completes,
        #: making sustained injection allocation-free — but the Token a
        #: caller holds may then be recycled into a *later* token after
        #: it retires (check ``token.generation`` if retaining).
        self.token_pool = TokenPool()
        self.recycle_tokens = recycle_tokens
        self.control_latency = 1.0
        self.step_multiplier = step_multiplier
        self.auto_stabilize = auto_stabilize
        self.directory = ComponentDirectory(self.tree, self.ring)
        #: Hoisted C-level liveness/owner probe for the per-hop path.
        self._owner_of = self.directory.owner_reader()
        #: Shared edge-resolution memo, valid for one directory
        #: generation (see :meth:`resolve_edge`).
        self._edge_memo: Dict[Tuple[Path, int], Tuple] = {}  # repro: owned-by: single-writer
        self._edge_memo_stamp = -1  # repro: owned-by: single-writer
        self.hosts: Dict[int, NodeHost] = {}
        # Sorted list of live node ids, maintained incrementally by the
        # membership layer so the token hot path never re-sorts
        # ``self.hosts`` per injection.
        self._live_nodes: List[int] = []
        self.stats = SystemStats()
        self.token_stats = TokenStats()
        self.injected_per_wire = PerWireCounters(width)  # repro: owned-by: shared
        self.output_counts = PerWireCounters(width)  # repro: owned-by: shared
        self.lost_components: Set[Path] = set()
        # repro: owned-by: shared
        self._inflight: TokenLedger[Path] = TokenLedger()
        # Exact emitted-but-not-arrived accounting, used by crash
        # recovery: (path, port) -> tokens owed to that input. A token
        # stays owed across undeliverable bounces and retry waits, and
        # moves keys when rerouted, so ``Stabilizer.reconstruct`` can
        # subtract tokens its in-neighbours counted as departed that
        # have not actually arrived.
        # repro: owned-by: shared
        self._owed: TokenLedger[Tuple[Path, int]] = TokenLedger()
        # Injected tokens whose input lookup failed and is pending a
        # retry, per network wire: counted in ``injected_per_wire`` but
        # not yet owed to any component.
        self._inject_pending = PerWireCounters(width)  # repro: owned-by: shared
        self._token_counter = AtomicCounter()  # repro: owned-by: shared
        self._next_wire = 0
        self._retire_callbacks: List[Callable[[Token], None]] = []
        self.combiner = (
            Combiner(self, combining) if combining and combining.enabled else None
        )
        self.reconfig = Reconfigurator(self)
        self.rules = RulesEngine(self, hysteresis)
        self.membership = MembershipManager(self)
        self.stabilizer = Stabilizer(self)
        self.auditor = StateAuditor(self)
        self.lookup = InputLookup(self)
        # Bootstrap: the first node hosts the whole network as a single
        # component (Section 1.2: "initially, the entire bitonic network
        # resides on one node").
        first = self.membership.join()
        self.hosts[first.node_id].install(ComponentState(self.tree.root))
        self.directory.register((), first.node_id)
        for _ in range(initial_nodes - 1):
            self.add_node()

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def add_node(self, name: Optional[str] = None) -> ChordNode:
        """A node joins the p2p network (Section 3.4: no counting-network
        change beyond consistent-hash handoffs)."""
        return self.membership.join(name)

    def remove_node(self, node_id: Optional[int] = None) -> int:
        """A node leaves gracefully, handing off its components."""
        if node_id is None:
            node_id = self.rng.choice(self._live_nodes)
        self.membership.leave(node_id)
        return node_id

    def crash_node(self, node_id: Optional[int] = None) -> CrashReport:
        """A node crashes, losing its state; recovery restores a legal
        network state (unless ``auto_stabilize`` is off)."""
        if node_id is None:
            node_id = self.rng.choice(self._live_nodes)
        report = self.membership.crash(node_id)
        self.lost_components.update(report.lost_components)
        if self.auto_stabilize:
            self.stabilize()
        return report

    def stabilize(self) -> List[Path]:
        """Run crash recovery now; returns the restored component paths."""
        began_at = self.sim.now
        restored = self.stabilizer.stabilize()
        self.lost_components.clear()
        obs = _obs.ACTIVE
        if obs.enabled:
            obs.stabilization(began_at, self.sim.now, len(restored))
        return restored

    def note_node_joined(self, node_id: int) -> None:
        """Membership-layer hook: keep the sorted live-node list fresh."""
        insort(self._live_nodes, node_id)

    def note_node_left(self, node_id: int) -> None:
        """Membership-layer hook: a node left (gracefully or by crash)."""
        index = bisect_left(self._live_nodes, node_id)
        if index < len(self._live_nodes) and self._live_nodes[index] == node_id:
            del self._live_nodes[index]

    @property
    def num_nodes(self) -> int:
        return len(self.ring)

    # ------------------------------------------------------------------
    # adaptation
    # ------------------------------------------------------------------
    def converge(self, max_rounds: int = 64) -> int:
        """Let every node apply the Section 3.2 rules until no node acts.

        Returns the number of evaluation rounds. Raises if the rules do
        not reach a fixpoint within ``max_rounds`` (they always should:
        level estimates are stable between membership changes).
        """
        for round_index in range(max_rounds):
            actions = 0
            for node_id in sorted(self.hosts):
                host = self.hosts.get(node_id)
                if host is not None:
                    actions += self.rules.evaluate(host)
            self.run_until_quiescent()
            if actions == 0:
                return round_index + 1
        raise ProtocolError("rules did not converge within %d rounds" % max_rounds)

    # ------------------------------------------------------------------
    # token plane
    # ------------------------------------------------------------------
    def inject_token(
        self, wire: Optional[int] = None, from_node: Optional[int] = None
    ) -> Token:
        """A client sends one token into the network.

        ``wire`` defaults to round-robin over the input wires (a client
        may choose any); ``from_node`` (for DHT hop accounting) defaults
        to a random live node.
        """
        if wire is None:
            wire = self._next_wire
            self._next_wire = (self._next_wire + 1) % self.width
        if from_node is None and self._live_nodes:
            from_node = self.rng.choice(self._live_nodes)
        token = self.token_pool.acquire(
            self._token_counter.fetch_increment(), wire, self.sim.now
        )
        self.token_stats.issued.increment()
        self.injected_per_wire.increment(wire)
        obs = _obs.ACTIVE
        if obs.enabled:
            obs.token_injected(token)
        self._attempt_injection(token, wire, from_node)
        return token

    def _attempt_injection(self, token: Token, wire: int, from_node) -> None:
        """Look up the input component and send; if the lookup hits a
        crash hole, the client retries until recovery restores it."""
        try:
            result = self.find_input(wire, from_node)
        except ComponentNotFound:
            token.reroutes += 1
            obs = _obs.ACTIVE
            if obs.enabled:
                obs.token_rerouted(self.sim.now, token)
            if token.reroutes > MAX_REROUTES:
                self.stats.dropped_tokens += 1
                self.token_stats.record_dropped(token)
                if obs.enabled:
                    obs.token_dropped(self.sim.now, token)
                return
            self._inject_pending.increment(wire)

            def retry_injection() -> None:
                self._inject_pending.decrement(wire)
                self._attempt_injection(token, wire, from_node)

            self.sim.schedule(RETRY_DELAY, retry_injection)
            return
        self.send_token(result.path, result.port, token)

    def find_input(self, wire: int, from_node: Optional[int] = None) -> LookupResult:
        """Section 3.5's input-component lookup, with stats recorded."""
        result = self.lookup.find(wire, from_node)
        self.stats.lookup_tries.append(result.tries)
        self.stats.lookup_hops.append(result.dht_hops)
        return result

    def send_token(self, path: Path, port: int, token: Token) -> None:
        """Forward a token to input ``port`` of the component at ``path``.

        With combining enabled, the token may wait up to the combining
        window at the sender so companions headed to the same component
        share one message.
        """
        path = tuple(path)
        if self._owner_of(path) is None:
            self.reroute_token(path, port, token)
            return
        if self.combiner is not None:
            self._owe(path, port, token)
            self.combiner.offer(path, port, token)
            return
        self._dispatch_one(path, port, token)

    def _dispatch_one(self, path: Path, port: int, token: Token) -> None:
        """:meth:`dispatch_batch` specialised for one token — the
        per-hop common case without combining — skipping the batch list
        machinery. ``path`` must already be a live tuple."""
        owner = self._owner_of(path)
        token.hops += 1
        self._owe(path, port, token)
        obs = _obs.ACTIVE
        if obs.enabled:
            obs.token_hop(self.sim.now, token, path, port, 1)
        self._inflight.post(path)
        self.bus.send(
            owner,
            TokenMsg(path, port, token),
            kind="token",
            on_undeliverable=lambda: self._one_undelivered(path, port, token),
        )

    def _one_undelivered(self, path: Path, port: int, token: Token) -> None:
        self.note_token_arrived(path)
        self._retry(path, port, token)

    def dispatch_batch(self, path: Path, items) -> None:
        """Ship a batch of (port, token) pairs as one message."""
        path = tuple(path)
        owner = self._owner_of(path)
        if owner is None:
            for port, token in items:
                self.reroute_token(path, port, token)
            return
        obs = _obs.ACTIVE
        if obs.enabled:
            now = self.sim.now
            batch_size = len(items)
            for port, token in items:
                token.hops += 1
                self._owe(path, port, token)
                obs.token_hop(now, token, path, port, batch_size)
        else:
            for port, token in items:
                token.hops += 1
                self._owe(path, port, token)
        self._inflight.post(path, len(items))
        if len(items) == 1:
            port, token = items[0]
            message = TokenMsg(path, port, token)
        else:
            message = BatchTokenMsg(path, tuple(items))
        # Every caller hands over ownership of ``items`` (a fresh list or
        # a popped combining buffer), so the drop callback can capture it
        # directly instead of deferring a defensive copy.
        self.bus.send(
            owner,
            message,
            kind="token",
            on_undeliverable=lambda: self._batch_undelivered(path, items),
        )

    def _batch_undelivered(self, path: Path, items) -> None:
        for _ in items:
            self.note_token_arrived(path)
        for port, token in items:
            self._retry(path, port, token)

    def note_token_arrived(self, path: Path) -> None:
        if self._inflight.settle(path) < 0:
            # The old dict idiom clamped at zero; keep that behaviour.
            self._inflight.clear_balance(path)

    # ------------------------------------------------------------------
    # emitted-but-not-arrived ledger (crash-recovery accounting)
    # ------------------------------------------------------------------
    def _owe(self, path: Path, port: int, token: Token) -> None:
        """Record that ``token`` is owed to (``path``, ``port``): its
        emitter has counted it as departed toward that input, but it has
        not arrived there yet. Re-owing to the same key (a retry) is a
        no-op; rerouting to a new address moves the count."""
        key = (path, port)
        if token.owed == key:
            return
        self._unowe(token)
        token.owed = key
        self._owed.post(key)
        obs = _obs.ACTIVE
        if obs.enabled:
            obs.owed_delta(1)

    def _unowe(self, token: Token) -> None:
        """The token arrived somewhere (or was dropped): settle its debt."""
        key = token.owed
        if key is None:
            return
        token.owed = None
        self._owed.settle(key)
        obs = _obs.ACTIVE
        if obs.enabled:
            obs.owed_delta(-1)

    def tokens_owed(self, path: Path, port: int) -> int:
        """Tokens counted as emitted toward (``path``, ``port``) that
        have not arrived: in flight on the bus, bounced and awaiting a
        retry, or waiting in a combining buffer."""
        return self._owed.balance((tuple(path), port))

    def _retry(self, path: Path, port: int, token: Token) -> None:
        token.reroutes += 1
        obs = _obs.ACTIVE
        if obs.enabled:
            obs.token_rerouted(self.sim.now, token)
        if token.reroutes > MAX_REROUTES:
            self.stats.dropped_tokens += 1
            self.token_stats.record_dropped(token)
            if obs.enabled:
                obs.token_dropped(self.sim.now, token)
            self._unowe(token)
            return
        self.sim.schedule(RETRY_DELAY, lambda: self.send_token(path, port, token))

    def reroute_token(self, path: Path, port: int, token: Token) -> None:
        """Re-resolve a token addressed to a component that is gone.

        The component was merged into an ancestor (re-address upward
        through the input wiring), split into descendants (descend), is
        temporarily missing after a crash (retry until recovery restores
        it), or is live again at a new home (re-send).
        """
        path = tuple(path)
        covering = self.directory.covering_member(path)
        if covering == path:
            self._retry(path, port, token)  # moved homes; re-resolve
            return
        if covering is not None:
            token.reroutes += 1
            obs = _obs.ACTIVE
            if obs.enabled:
                obs.token_rerouted(self.sim.now, token)
            spec = self.tree.node(path)
            current_port = port
            while spec.path != covering:
                parent = self.tree.parent(spec)
                source = self.wiring.parent_input_source(
                    parent, spec.path[-1], current_port
                )
                if source is None:
                    raise ProtocolError(
                        "in-flight token on an internal wire of a merged "
                        "subtree (%r port %d)" % (path, port)
                    )
                spec, current_port = parent, source
            self.send_token(covering, current_port, token)
            return
        descendants = self.directory.live_descendants(path)
        if descendants:
            token.reroutes += 1
            obs = _obs.ACTIVE
            if obs.enabled:
                obs.token_rerouted(self.sim.now, token)
            member, member_port = self.wiring.descend_input(
                self.tree.node(path), port, self.directory.live_paths()
            )
            self.send_token(member.path, member_port, token)
            return
        # Crash hole: wait for stabilisation.
        self._retry(path, port, token)

    def retire_token(
        self, token: Token, state: ComponentState, out_port: int, wire: int
    ) -> None:
        """A token leaves the network on output ``wire`` with its value.

        The value is computed *locally* by the output component: it is
        the ``n``-th token this component ever emitted on this port
        (a closed form of its counter), so ``value = (n-1)*width +
        wire`` — globally unique and gap-free while no tokens are lost.
        """
        emitted = balanced_count_at(0, state.total, state.width, out_port)
        token.value = (emitted - 1) * self.width + wire
        token.exit_wire = wire
        token.retired_at = self.sim.now
        self.output_counts.increment(wire)
        self.token_stats.record_retired(token)
        for callback in self._retire_callbacks:
            callback(token)
        if self.recycle_tokens:
            # After the retire callbacks: they are the last sanctioned
            # readers of this token's fields.
            self.token_pool.release(token)

    def on_retire(self, callback: Callable[[Token], None]) -> None:
        """Register a callback invoked whenever a token retires."""
        self._retire_callbacks.append(callback)

    def next_value(self) -> int:
        """Convenience: inject one token, run to quiescence, return its
        counter value (the distributed-counter application)."""
        token = self.inject_token()
        self.run_until_quiescent()
        if token.value is None:
            raise ProtocolError("token %d did not retire" % token.token_id)
        return token.value

    # ------------------------------------------------------------------
    # simulator control
    # ------------------------------------------------------------------
    def advance(self, delta: float) -> None:
        """Let ``delta`` simulated time pass (processing due events)."""
        self.sim.run_until(self.sim.now + delta)

    def run_until_quiescent(self, max_events: int = 10_000_000) -> None:
        """Process events until nothing is pending."""
        self.sim.run_until_idle(max_events)

    def drain_paths(self, paths: Set[Path]) -> None:
        """Step the simulator until no token is in flight toward
        ``paths`` (used by the merge protocol). Combining buffers are
        flushed so no token lingers on an internal wire of the subtree."""
        while True:
            if self.combiner is not None:
                self.combiner.flush_all()
            if not any(self._inflight.get(p, 0) for p in paths):
                return
            if not self.sim.step():
                raise ProtocolError("drain stalled with tokens in flight")

    def invalidate_caches(self) -> None:
        """Drop all out-neighbour caches (the network changed)."""
        for host in self.hosts.values():
            host.clear_edge_cache()

    def publish_pool_stats(self) -> Dict[str, Dict[str, int]]:
        """Snapshot every freelist (envelopes, tokens, event handles)
        into the active recorder's gauges and return the snapshot.

        Called at section boundaries (bench scenarios, experiment
        epochs) — deliberately not per event, so pooling costs no obs
        traffic on the hot path.
        """
        snapshot = {
            "envelopes": self.bus.pool_stats(),
            "tokens": self.token_pool.stats(),
            "handles": self.sim.pool_stats(),
        }
        obs = _obs.ACTIVE
        if obs.enabled:
            for name, stats in snapshot.items():
                obs.pool_stats(
                    name, stats["created"], stats["reused"], stats["free"]
                )
        return snapshot

    def resolve_edge(self, spec: ComponentSpec, out_port: int):
        """Where (``spec``, output ``out_port``) leads under the live cut.

        ``("missing", path, port)`` marks a crash hole: the token is
        addressed to the hole's subtree root and retried until
        stabilisation restores a member there.

        Resolutions are memoised per directory generation and shared by
        every host: the answer depends only on the deployed cut, so when
        one host has resolved an edge, the other 2k need not repeat the
        wiring walk — per-host caches warm from here. Even crash holes
        memoise safely: recovery re-registers the component, which bumps
        the generation and drops the memo wholesale.
        """
        generation = self.directory.generation
        memo = self._edge_memo
        if self._edge_memo_stamp != generation:
            memo.clear()
            self._edge_memo_stamp = generation
        key = (spec.path, out_port)
        resolved = memo.get(key)
        if resolved is None:
            resolved = self.wiring.resolve_output(
                spec, out_port, self.directory.live_paths()
            )
            if resolved[0] in ("member", "missing"):
                resolved = (resolved[0], resolved[1].path, resolved[2])
            memo[key] = resolved
        return resolved

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def snapshot_cut(self) -> Cut:
        """The currently deployed cut."""
        return self.directory.as_cut()

    def snapshot_network(self) -> CutNetwork:
        """An offline :class:`CutNetwork` mirroring the live deployment
        (copied states), for metrics and verification."""
        network = CutNetwork(self.snapshot_cut(), wiring=self.wiring)
        for path in list(network.states):
            owner = self.directory.owner(path)
            network.states.put(path, self.hosts[owner].components[path].copy())
        network.output_counts.reset(self.output_counts.snapshot())
        return network

    def metrics(self) -> NetworkMetrics:
        """Effective width/depth and component count (Definitions 1.1/1.2)."""
        return measure(self.snapshot_network())

    def components_per_node(self) -> List[int]:
        """Component counts across live nodes (Lemma 3.5's quantity)."""
        return [host.component_count() for host in self.hosts.values()]

    def component_levels(self) -> List[int]:
        """Levels of all live components (Lemma 3.4's quantity)."""
        return sorted(len(path) for path in self.directory.live_paths())

    def node_levels(self) -> List[int]:
        """Every node's current level estimate ``ell_v``."""
        return [self.rules.node_level(host) for host in self.hosts.values()]

    def verify(self) -> None:
        """Check global invariants; raises on violation.

        * the directory is a valid cut with every component at its home;
        * every component is quiescent (arrivals == departures);
        * every issued token is accounted for: retired, or — only with
          recovery disabled — counted as dropped after exhausting
          ``MAX_REROUTES`` (the documented give-up behaviour, flagged
          distinctly from a genuine loss);
        * the quiescent output distribution has the step property
          (checked only when nothing was dropped: a dropped token never
          exits, so its absence legitimately perturbs the distribution).
        """
        self.directory.check_consistent()
        for host in self.hosts.values():
            for path, state in host.components.items():
                if state.arrived_total() != state.total:
                    raise ProtocolError(
                        "component %r not quiescent: %d arrived, %d routed"
                        % (path, state.arrived_total(), state.total)
                    )
        accounted = self.token_stats.retired + self.token_stats.dropped
        if accounted != self.token_stats.issued:
            raise ProtocolError(
                "%d tokens issued but only %d accounted for "
                "(%d retired + %d dropped): %d lost without a trace"
                % (
                    self.token_stats.issued,
                    accounted,
                    self.token_stats.retired,
                    self.token_stats.dropped,
                    self.token_stats.issued - accounted,
                )
            )
        if self.token_stats.dropped == 0:
            check_step_property(self.output_counts)
