"""The decentralised splitting/merging rules of Section 3.2.

Each node ``v`` maintains the local invariant: *every component residing
on ``v`` is at level >= ell_v* (its level estimate).

* **Splitting rule** — split every hosted component whose level is below
  ``ell_v`` (recursively: freshly created children may hash back to
  ``v`` and still violate the invariant).
* **Merging rule** — ``v`` reconsiders its past splits: for every entry
  ``c`` in its split registry, if ``level(c) >= ell_v`` the split is no
  longer required and ``v`` initiates the merge of ``c``. The paper
  triggers this check when ``ell_v`` decreases; we additionally run it
  on every evaluation (the check is local and free, and registry entries
  inherited from departed nodes would otherwise linger), and the
  ``hysteresis`` parameter widens the merge threshold for the ablation
  experiment (merge only when ``level(c) >= ell_v + hysteresis``).
"""

from __future__ import annotations

from typing import Tuple

from repro.chord.estimation import LevelEstimator
from repro.errors import ComponentNotFound
from repro.runtime.host import NodeHost


class RulesEngine:
    """Evaluates the Section 3.2 rules for one node at a time."""

    def __init__(self, system, hysteresis: int = 0):
        if hysteresis < 0:
            raise ValueError("hysteresis must be nonnegative")
        self.system = system
        self.hysteresis = hysteresis
        # One estimator for the engine's lifetime: it reads the live
        # ring by reference, and caching it keeps the precomputed phi
        # table out of the per-node evaluation path.
        self._estimator = LevelEstimator(
            system.width, system.ring, system.step_multiplier, tree=system.tree
        )

    def node_level(self, host: NodeHost) -> int:
        """The node's current level estimate ``ell_v`` (Section 3.1)."""
        return self._estimator.level_estimate(host.node_id)

    def evaluate(self, host: NodeHost) -> int:
        """Apply both rules at ``host``; returns the number of actions."""
        level = self.node_level(host)
        host.last_level = level
        actions = 0
        # Splitting rule: enforce the invariant, recursively.
        progressed = True
        while progressed:
            progressed = False
            for path in sorted(host.components):
                state = host.components[path]
                if (
                    len(path) < level
                    and not state.spec.is_leaf
                    and path not in host.frozen
                ):
                    self.system.reconfig.split(path)
                    actions += 1
                    progressed = True
                    break  # the component map changed; rescan
        # Merging rule: reconsider earlier splits.
        for path in sorted(host.split_registry, key=len, reverse=True):
            if len(path) >= level + self.hysteresis:
                try:
                    self.system.reconfig.merge(path, host)
                    actions += 1
                except ComponentNotFound:
                    # The subtree vanished (e.g. merged away by a wider
                    # merge); drop the stale registry entry.
                    host.split_registry.discard(path)
        return actions
