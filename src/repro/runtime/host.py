"""Per-node hosting of components and the token data plane.

A :class:`NodeHost` is the process running on one physical node. It
holds the components hashed to the node, routes arriving tokens through
them, buffers tokens for components that are frozen mid-reconfiguration
(Section 2.2's "temporarily stop routing"), and keeps the node-local
state the splitting/merging rules need: the node's last level estimate
and the list of components it has split but not yet merged
(Section 3.2).

Out-neighbour addresses are cached per (component, output port) as
Section 3.5 prescribes; the system invalidates caches when the network
is reconfigured and the hit/miss counters feed the routing-efficiency
experiment.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.chord.ring import ChordNode
from repro.core.atomics import AtomicCounter
from repro.core.components import ComponentState
from repro.errors import ProtocolError
from repro.runtime.tokens import Token, TokenMsg
from repro.sim.node import SimulatedProcess

Path = Tuple[int, ...]

#: Filled on first message; see ``handle_message``.
_BatchTokenMsg = None


class NodeHost(SimulatedProcess):
    """The runtime process of one physical node."""

    def __init__(self, node: ChordNode, system):
        self.node = node
        self.system = system
        self.components: Dict[Path, ComponentState] = {}
        self.frozen: Set[Path] = set()
        self.buffers: Dict[Path, List[Tuple[int, Token]]] = {}
        #: Components this node split and has not merged back yet
        #: (Section 3.2's merge rule scans this list).
        self.split_registry: Set[Path] = set()
        #: The node's last computed level estimate, to detect decreases.
        self.last_level: Optional[int] = None
        self._edge_cache: Dict[Tuple[Path, int], Tuple] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.tokens_routed = AtomicCounter()  # repro: owned-by: shared

    @property
    def node_id(self) -> int:
        return self.node.node_id

    # ------------------------------------------------------------------
    # component management (called by the reconfiguration layer)
    # ------------------------------------------------------------------
    def install(self, state: ComponentState, frozen: bool = False) -> None:
        path = state.spec.path
        if path in self.components:
            raise ProtocolError("component %r already on node %s" % (path, self.node.name))
        self.components[path] = state
        if frozen:
            self.frozen.add(path)

    def remove(self, path: Path) -> ComponentState:
        try:
            state = self.components.pop(path)
        except KeyError:
            raise ProtocolError(
                "component %r not on node %s" % (path, self.node.name)
            ) from None
        self.frozen.discard(path)
        return state

    def freeze(self, path: Path) -> None:
        if path not in self.components:
            raise ProtocolError("cannot freeze %r: not hosted here" % (path,))
        self.frozen.add(path)

    def unfreeze(self, path: Path) -> None:
        self.frozen.discard(path)

    def drain_buffer(self, path: Path) -> List[Tuple[int, Token]]:
        """Take (and clear) the tokens buffered for a frozen component."""
        return self.buffers.pop(path, [])

    def clear_edge_cache(self) -> None:
        self._edge_cache.clear()

    # ------------------------------------------------------------------
    # token plane
    # ------------------------------------------------------------------
    def handle_message(self, message) -> None:
        global _BatchTokenMsg
        BatchTokenMsg = _BatchTokenMsg
        if BatchTokenMsg is None:
            # Deferred to dodge the host <-> combining import cycle; one
            # lookup ever instead of one per message.
            from repro.runtime.combining import BatchTokenMsg as _cls

            BatchTokenMsg = _BatchTokenMsg = _cls  # repro: thread-safe: write-once import memo, idempotent
        if isinstance(message, TokenMsg):
            self._handle_one(message.path, message.port, message.token)
        elif isinstance(message, BatchTokenMsg):
            self._handle_tokens(message.path, list(message.items))
        else:  # pragma: no cover - no other message kinds today
            raise ProtocolError("unknown message %r" % (message,))

    def _handle_one(self, path: Path, port: int, token: Token) -> None:
        """:meth:`_handle_tokens` specialised for the single-token
        message that dominates uncombined traffic (no batch list)."""
        system = self.system
        system.note_token_arrived(path)
        system._unowe(token)
        if path in self.frozen:
            self.buffers.setdefault(path, []).append((port, token))
            return
        state = self.components.get(path)
        if state is None:
            system.reroute_token(path, port, token)
            return
        self.tokens_routed.increment()
        out_port = state.route_token(port)
        dest = self._edge(path, state, out_port)
        if dest[0] == "out":
            system.retire_token(token, state, out_port, dest[1])
        else:
            _, dest_path, dest_port = dest
            system.send_token(dest_path, dest_port, token)

    def _handle_tokens(self, path: Path, items: List[Tuple[int, Token]]) -> None:
        system = self.system
        note_arrived = system.note_token_arrived
        unowe = system._unowe
        for _port, token in items:
            note_arrived(path)
            unowe(token)
        if path in self.frozen:
            self.buffers.setdefault(path, []).extend(items)
            return
        state = self.components.get(path)
        if state is None:
            for port, token in items:
                system.reroute_token(path, port, token)
            return
        self.tokens_routed.increment(len(items))
        for port, token in items:
            out_port = state.route_token(port)
            dest = self._edge(path, state, out_port)
            if dest[0] == "out":
                system.retire_token(token, state, out_port, dest[1])
            else:
                # "member" and "missing" both address a path; for a
                # crash hole, send_token's reroute machinery retries
                # until stabilisation restores it.
                _, dest_path, dest_port = dest
                system.send_token(dest_path, dest_port, token)

    def _edge(self, path: Path, state: ComponentState, out_port: int) -> Tuple:
        key = (path, out_port)
        cached = self._edge_cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        resolved = self.system.resolve_edge(state.spec, out_port)
        if resolved[0] != "missing":  # never cache a crash hole
            self._edge_cache[key] = resolved
        return resolved

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def component_count(self) -> int:
        return len(self.components)

    def levels_hosted(self) -> List[int]:
        return sorted(len(path) for path in self.components)
