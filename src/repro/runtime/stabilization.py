"""Self-stabilising crash recovery (Section 3.4, after [HT03]).

When a node crashes, the components it hosted — and the tokens queued in
them — are gone. Recovery restores the network to a *legal* state (one
reachable by some execution), as self-stabilisation promises; it cannot
resurrect the lost tokens, so the quiescent output distribution may
afterwards be imbalanced by up to the number of lost tokens — the crash
benchmark measures exactly this gap.

Recovery actions, all local in the sense of the paper:

* every lost component is recreated at its current hash home with state
  reconstructed from its in-neighbours: an in-neighbour's counter says
  exactly how many tokens it emitted toward each input port of the lost
  component (counters emit round-robin, so the per-port emission count
  is a closed form of the total). For input-boundary ports the clients'
  injection ledger plays the in-neighbour role.
* merge responsibility for splits recorded by the crashed node is
  re-assigned: any non-live component with live descendants and no
  registered splitter is adopted by the current home of its name.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.components import ComponentState, balanced_count_at
from repro.core.decomposition import ComponentSpec
from repro.core.wiring import BoundaryRef, PortRef
from repro.errors import ProtocolError

Path = Tuple[int, ...]


class Stabilizer:
    """Rebuilds lost components and merge duties after crashes."""

    def __init__(self, system):
        self.system = system

    # ------------------------------------------------------------------
    # source tracing
    # ------------------------------------------------------------------
    def input_source(self, spec: ComponentSpec, port: int):
        """Who feeds (``spec``, input ``port``): ``("net", wire)`` for a
        network input, else ``("member", path, out_port)`` naming the
        live emitter."""
        system = self.system
        tree = system.tree
        wiring = system.wiring
        current, q = spec, port
        while True:
            parent = tree.parent(current)
            if parent is None:
                return ("net", q)
            source_port = wiring.parent_input_source(parent, current.path[-1], q)
            if source_port is not None:
                current, q = parent, source_port
                continue
            sibling_index, out_port = self._crossing_source(parent, current.path[-1], q)
            emitter = parent.child(sibling_index)
            # Descend to the live member actually emitting this wire.
            live = system.directory.live_paths()
            while emitter.path not in live:
                if emitter.is_leaf:
                    raise ProtocolError(
                        "no live emitter found for %s port %d" % (spec, port)
                    )
                emitter, out_port = self._boundary_output_source(emitter, out_port)
            return ("member", emitter.path, out_port)

    def _crossing_source(self, parent: ComponentSpec, child_index: int, port: int):
        """Which sibling output feeds (``child_index``, ``port``) inside
        ``parent`` (inverse of ``child_output_dest`` for internal wires)."""
        wiring = self.system.wiring
        children = parent.children()
        for sibling in range(parent.num_children()):
            if sibling == child_index:
                continue
            for out_port in range(children[sibling].width):
                dest = wiring.child_output_dest(parent, sibling, out_port)
                if (
                    isinstance(dest, PortRef)
                    and dest.child == child_index
                    and dest.port == port
                ):
                    return sibling, out_port
        raise ProtocolError(
            "no sibling feeds child %d port %d of %s" % (child_index, port, parent)
        )

    def _boundary_output_source(self, parent: ComponentSpec, port: int):
        """Which child output becomes ``parent``'s boundary output ``port``
        (inverse of ``child_output_dest`` for boundary wires)."""
        wiring = self.system.wiring
        for index, child in enumerate(parent.children()):
            for out_port in range(child.width):
                dest = wiring.child_output_dest(parent, index, out_port)
                if isinstance(dest, BoundaryRef) and dest.port == port:
                    return child, out_port
        raise ProtocolError(
            "no child emits boundary port %d of %s" % (port, parent)
        )

    # ------------------------------------------------------------------
    # reconstruction
    # ------------------------------------------------------------------
    def reconstruct(self, path: Path) -> ComponentState:
        """Rebuild a lost component's state from its neighbours.

        An in-neighbour's counter says how many tokens it emitted toward
        each input port — but emitted is not arrived. Tokens still on
        the bus, bounced and awaiting a retry, or (for network inputs)
        stuck in an injection-retry loop were counted by their source
        and have *not* been routed by the lost component; counting them
        as arrivals would advance the reconstructed round-robin pointer
        past phantom tokens and permanently skew the output distribution
        when they really arrive. Subtract the owed ledger so the
        restored state is one the component could actually have reached.
        """
        system = self.system
        spec = system.tree.node(tuple(path))
        arrivals = {}
        for port in range(spec.width):
            source = self.input_source(spec, port)
            if source[0] == "net":
                count = (
                    system.injected_per_wire[source[1]]
                    - system._inject_pending[source[1]]
                )
            else:
                _, emitter_path, out_port = source
                owner = system.directory.owner(emitter_path)
                emitter = system.hosts[owner].components[emitter_path]
                count = balanced_count_at(0, emitter.total, emitter.width, out_port)
                system.stats.control_messages += 2  # query + reply
            count -= system.tokens_owed(path, port)
            if count > 0:
                arrivals[port] = count
        total = sum(arrivals.values())
        return ComponentState(spec, total, arrivals)

    def stabilize(self) -> List[Path]:
        """Recreate every directory-lost component; returns their paths.

        Components lost to crashes are exactly the cut holes: paths that
        must be live for the directory to be a valid cut again. We
        recover each at the level it had when it was lost (neighbour
        caches remember who they were talking to).
        """
        system = self.system
        restored: List[Path] = []
        for path in self._missing_paths():
            state = self.reconstruct(path)
            home = system.directory.home(path)
            system.hosts[home].install(state)
            system.directory.register(path, home)
            restored.append(path)
            system.stats.control_messages += 2
            system.stats.recoveries += 1
        if restored:
            system.advance(2 * system.control_latency)
            system.invalidate_caches()
        self._adopt_orphan_merges()
        return restored

    def _missing_paths(self) -> List[Path]:
        """The holes in the deployed cut (lost components), recorded by
        the membership layer when the crash happened."""
        return sorted(self.system.lost_components)

    def _adopt_orphan_merges(self) -> None:
        """Ensure every split component still has a responsible merger."""
        system = self.system
        registered = set()
        for host in system.hosts.values():
            registered.update(host.split_registry)
        live = system.directory.live_paths()
        # Non-live ancestors of live members are exactly the split
        # components awaiting a merge decision.
        split_paths = set()
        for path in live:
            for end in range(len(path)):
                split_paths.add(path[:end])
        for path in sorted(split_paths - registered, key=len):
            home = system.directory.home(path)
            system.hosts[home].split_registry.add(path)
            system.stats.control_messages += 1
