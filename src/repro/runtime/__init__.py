"""The distributed runtime of the adaptive counting network.

See :class:`repro.runtime.system.AdaptiveCountingSystem` for the
entry point tying together hosting (:mod:`repro.runtime.host`),
placement (:mod:`repro.runtime.directory`), reconfiguration
(:mod:`repro.runtime.reconfig`), the decentralised rules
(:mod:`repro.runtime.rules`), membership (:mod:`repro.runtime.membership`),
crash recovery (:mod:`repro.runtime.stabilization`) and client lookup
(:mod:`repro.runtime.lookup`).
"""

from repro.runtime.system import AdaptiveCountingSystem, SystemStats
from repro.runtime.tokens import Token, TokenStats

__all__ = ["AdaptiveCountingSystem", "SystemStats", "Token", "TokenStats"]
