"""Node joins and leaves (Section 3.4).

* **Join** — the counting network itself needs no change; only the
  consistent-hash placement shifts: components whose hash point now
  falls on the new node are handed over. (If the system has grown
  enough, the rules engine will later split components — that is a
  separate, rule-driven action.)
* **Graceful leave** — before leaving, the node moves every component it
  hosts to the component's new home (its ring successor), and hands its
  split registry to the successor, which takes over the responsibility
  of merging what the departed node split.
* **Crash** — handled by :mod:`repro.runtime.stabilization`; this module
  only removes the node and reports what was lost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.chord.ring import ChordNode
from repro.errors import MembershipError
from repro.runtime.host import NodeHost

Path = Tuple[int, ...]


@dataclass
class CrashReport:
    """What a crash destroyed or disturbed, for the recovery experiment.

    ``disturbed_tokens`` counts tokens that were in flight toward the
    lost components at crash time: they are *not* lost (they retry and
    retire), but state reconstruction — which works from in-neighbour
    emission counts — necessarily treats them as already processed, so
    each one can displace one output slot. The self-stabilisation
    guarantee is therefore: residual output imbalance <= lost +
    disturbed (+1).
    """

    node_id: int
    lost_components: List[Path] = field(default_factory=list)
    lost_buffered_tokens: int = 0
    lost_registry_entries: List[Path] = field(default_factory=list)
    disturbed_tokens: int = 0


class MembershipManager:
    """Ring membership changes wired to the hosting layer."""

    def __init__(self, system):
        self.system = system

    # ------------------------------------------------------------------
    # join
    # ------------------------------------------------------------------
    def join(self, name: Optional[str] = None) -> ChordNode:
        system = self.system
        node = system.ring.join(name)
        host = NodeHost(node, system)
        system.hosts[node.node_id] = host
        system.note_node_joined(node.node_id)
        system.bus.register(node.node_id, host)
        self._rehome_components()
        return node

    def _rehome_components(self) -> None:
        """Move every component whose hash home changed (O(#components))."""
        system = self.system
        moves = []
        for path in system.directory.live_paths():
            home = system.directory.home(path)
            if home != system.directory.owner(path):
                moves.append((path, home))
        for path, home in moves:
            old_host = system.hosts[system.directory.owner(path)]
            was_frozen = path in old_host.frozen
            buffered = old_host.drain_buffer(path)
            state = old_host.remove(path)
            new_host = system.hosts[home]
            new_host.install(state, frozen=was_frozen)
            if buffered:
                new_host.buffers[path] = buffered
            system.directory.register(path, home)
            system.stats.control_messages += 2  # state transfer + ack
        if moves:
            system.advance(2 * system.control_latency)
            system.invalidate_caches()
            system.stats.handoffs += len(moves)

    # ------------------------------------------------------------------
    # graceful leave
    # ------------------------------------------------------------------
    def leave(self, node_id: int) -> None:
        system = self.system
        if node_id not in system.hosts:
            raise MembershipError("no such node %#x" % node_id)
        if len(system.ring) == 1:
            raise MembershipError("cannot remove the last node")
        host = system.hosts[node_id]
        successor = system.ring.succ_k(node_id, 1)
        system.ring.remove(node_id)
        # Hand split-registry duty to the successor (Section 3.4).
        successor_host = system.hosts[successor.node_id]
        successor_host.split_registry.update(host.split_registry)
        if host.split_registry:
            system.stats.control_messages += 1
        # Move hosted components to their new homes (the successor, by
        # consistent hashing — recomputed per component for exactness).
        for path in list(host.components):
            was_frozen = path in host.frozen
            buffered = host.drain_buffer(path)
            state = host.remove(path)
            home = system.directory.home(path)
            new_host = system.hosts[home]
            new_host.install(state, frozen=was_frozen)
            if buffered:
                new_host.buffers[path] = buffered
            system.directory.register(path, home)
            system.stats.control_messages += 2
            system.stats.handoffs += 1
        system.bus.unregister(node_id)
        del system.hosts[node_id]
        system.note_node_left(node_id)
        system.advance(2 * system.control_latency)
        system.invalidate_caches()

    # ------------------------------------------------------------------
    # crash
    # ------------------------------------------------------------------
    def crash(self, node_id: int) -> CrashReport:
        system = self.system
        if node_id not in system.hosts:
            raise MembershipError("no such node %#x" % node_id)
        if len(system.ring) == 1:
            raise MembershipError("cannot crash the last node")
        host = system.hosts[node_id]
        report = CrashReport(node_id)
        report.lost_components = sorted(host.components)
        report.lost_buffered_tokens = sum(len(b) for b in host.buffers.values())
        report.lost_registry_entries = sorted(host.split_registry)
        report.disturbed_tokens = sum(
            system._inflight.get(path, 0) for path in report.lost_components
        )
        system.stats.disturbed_tokens += report.disturbed_tokens
        system.ring.remove(node_id)
        system.bus.unregister(node_id)
        for path in report.lost_components:
            system.directory.unregister(path)
        del system.hosts[node_id]
        system.note_node_left(node_id)
        system.invalidate_caches()
        system.stats.crashes += 1
        return report
