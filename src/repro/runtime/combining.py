"""Message combining on the token plane.

A classic optimisation in the counting-network literature: tokens headed
for the same component within a short window travel as one message, so
the per-token message cost drops by the batching factor while the
counter semantics (which is arrival-order insensitive and batchable,
see :meth:`repro.core.components.ComponentState.route_batch`) is
untouched. The price is up to ``window`` extra latency per hop.

Disabled by default (``window = 0`` reproduces the paper's one-message-
per-token behaviour); the ablation bench sweeps the window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import SimulationError
from repro.runtime.tokens import Token

Path = Tuple[int, ...]


class BatchTokenMsg:
    """Several tokens addressed to one component, one network message."""

    __slots__ = ("path", "items")

    def __init__(self, path: Path, items: Tuple[Tuple[int, Token], ...]):
        self.path = path
        self.items = items  # (port, token) pairs

    def __repr__(self):
        return "BatchTokenMsg(path=%r, items=%d)" % (self.path, len(self.items))


@dataclass
class CombiningConfig:
    """Combining parameters.

    ``window`` — how long (simulated time) a token may wait at its
    sender for companions; 0 disables combining entirely.
    ``max_batch`` — flush early once this many tokens are waiting.
    """

    window: float = 0.0
    max_batch: int = 64

    def __post_init__(self):
        if self.window < 0:
            raise SimulationError("combining window cannot be negative")
        if self.max_batch < 1:
            raise SimulationError("combining max_batch must be >= 1")

    @property
    def enabled(self) -> bool:
        return self.window > 0


@dataclass
class CombiningStats:
    """How much combining actually saved."""

    tokens_buffered: int = 0
    batches_sent: int = 0
    largest_batch: int = 0

    @property
    def mean_batch(self) -> float:
        return self.tokens_buffered / self.batches_sent if self.batches_sent else 0.0


class Combiner:
    """Per-system combining buffers, flushed by simulator events."""

    def __init__(self, system, config: CombiningConfig):
        self.system = system
        self.config = config
        self.stats = CombiningStats()
        self._buffers: Dict[Path, List[Tuple[int, Token]]] = {}

    def offer(self, path: Path, port: int, token: Token) -> None:
        """Queue a token for combined delivery to ``path``."""
        buffer = self._buffers.get(path)
        self.stats.tokens_buffered += 1
        if buffer is None:
            self._buffers[path] = [(port, token)]
            self.system.sim.schedule(self.config.window, lambda: self.flush(path))
        else:
            buffer.append((port, token))
            if len(buffer) >= self.config.max_batch:
                self.flush(path)

    def flush(self, path: Path) -> None:
        """Ship the waiting batch (no-op if already flushed early)."""
        items = self._buffers.pop(path, None)
        if not items:
            return
        self.stats.batches_sent += 1
        self.stats.largest_batch = max(self.stats.largest_batch, len(items))
        self.system.dispatch_batch(path, items)

    def flush_all(self) -> None:
        for path in list(self._buffers):
            self.flush(path)

    @property
    def pending(self) -> int:
        return sum(len(items) for items in self._buffers.values())
