"""Static deployments: the baselines of Section 2's motivating example.

The paper's "simple approach" deploys a static ``BITONIC[w]`` with one
object per balancer, hashed onto the nodes — ``w log w (log w + 1)/4``
objects regardless of the system size. This module runs that deployment
(and the centralised counter and counting-tree baselines) on the same
ring/simulator substrate as the adaptive system, so throughput, latency
and message-count comparisons are apples-to-apples.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.chord.hashing import name_to_point
from repro.chord.ring import ChordRing
from repro.core.atomics import AtomicCounter, PerWireCounters, TokenLedger
from repro.core.diffracting import CountingTree
from repro.core.network import BalancingNetwork
from repro.errors import ProtocolError
from repro.runtime.tokens import Token, TokenPool, TokenStats
from repro.sim.events import Simulator
from repro.sim.latency import ConstantLatency, LatencyModel
from repro.sim.node import MessageBus, SimulatedProcess


class _Deployment:
    """Shared substrate: a ring of nodes, a bus, token statistics."""

    def __init__(
        self,
        num_nodes: int,
        seed: int = 0,
        latency: Optional[LatencyModel] = None,
        service_time: float = 0.0,
    ):
        if num_nodes < 1:
            raise ProtocolError("a deployment needs at least one node")
        self.ring = ChordRing(seed=seed)
        self.sim = Simulator()
        self.bus = MessageBus(self.sim, latency or ConstantLatency(1.0), service_time)
        self.rng = random.Random(seed + 1)
        self.token_stats = TokenStats()
        self._token_counter = AtomicCounter()  # repro: owned-by: shared
        # Acquire-only here (baselines never recycle), so the pool is
        # just the sanctioned Token constructor (RSC307).
        self._token_pool = TokenPool()
        self._processes: Dict[int, "_ObjectHost"] = {}
        for _ in range(num_nodes):
            node = self.ring.join()
            host = _ObjectHost(self)
            self._processes[node.node_id] = host
            self.bus.register(node.node_id, host)

    def object_home(self, name: str) -> int:
        return self.ring.successor(name_to_point(name, self.ring.space)).node_id

    def new_token(self, entry_wire: int) -> Token:
        token = self._token_pool.acquire(
            self._token_counter.fetch_increment(), entry_wire, self.sim.now
        )
        self.token_stats.issued.increment()
        return token

    def retire(self, token: Token, wire: int, value: int) -> None:
        token.exit_wire = wire
        token.value = value
        token.retired_at = self.sim.now
        self.token_stats.record_retired(token)

    def run_until_quiescent(self) -> None:
        self.sim.run_until_idle()

    def handle(self, message) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    @property
    def num_objects(self) -> int:  # pragma: no cover - interface
        raise NotImplementedError


class _ObjectHost(SimulatedProcess):
    """All object logic lives in the deployment; hosts just dispatch."""

    def __init__(self, deployment: _Deployment):
        self.deployment = deployment

    def handle_message(self, message) -> None:
        self.deployment.handle(message)


class StaticBitonicDeployment(_Deployment):
    """One object per balancer of a static balancer-level network.

    A token at (layer, wire) is processed by the balancer object owning
    that wire in that layer (one message per layer it actually crosses);
    wires without a balancer in a layer are pass-throughs costing
    nothing, exactly as in the paper's simple approach.
    """

    def __init__(self, network: BalancingNetwork, num_nodes: int, **kwargs):
        super().__init__(num_nodes, **kwargs)
        self.network = network
        self.width = network.width
        # (layer, wire) -> balancer index within the layer.
        self._wire_to_balancer: List[Dict[int, int]] = []
        for layer in network.layers:
            mapping = {}
            for index, (top, bottom) in enumerate(layer):
                mapping[top] = index
                mapping[bottom] = index
            self._wire_to_balancer.append(mapping)
        # repro: owned-by: shared
        self._toggles: TokenLedger[Tuple[int, int]] = TokenLedger()
        self._homes: Dict[Tuple[int, int], int] = {}
        self.output_counts = PerWireCounters(self.width)  # repro: owned-by: shared
        self._position = {wire: j for j, wire in enumerate(network.output_order)}

    @property
    def num_objects(self) -> int:
        return self.network.num_balancers

    def _balancer_home(self, layer: int, index: int) -> int:
        key = (layer, index)
        home = self._homes.get(key)
        if home is None:
            home = self.object_home("bal/%d/%d/%d" % (self.width, layer, index))
            self._homes[key] = home
        return home

    def _next_stop(self, layer: int, wire: int):
        """First balancer at or after ``layer`` that touches ``wire``."""
        for at in range(layer, len(self.network.layers)):
            index = self._wire_to_balancer[at].get(wire)
            if index is not None:
                return at, index
        return None

    def inject_token(self, wire: Optional[int] = None) -> Token:
        if wire is None:
            wire = self.rng.randrange(self.width)
        token = self.new_token(wire)
        self._forward(token, 0, wire)
        return token

    def _forward(self, token: Token, layer: int, wire: int) -> None:
        stop = self._next_stop(layer, wire)
        if stop is None:
            position = self._position[wire]
            value = self.output_counts.fetch_increment(position) * self.width + position
            self.retire(token, position, value)
            return
        at, index = stop
        token.hops += 1
        self.bus.send(self._balancer_home(at, index), (token, at, index, wire), kind="token")

    def handle(self, message) -> None:
        token, layer, index, wire = message
        key = (layer, index)
        toggle = self._toggles.fetch_post(key)
        top, bottom = self.network.layers[layer][index]
        out_wire = top if toggle % 2 == 0 else bottom
        self._forward(token, layer + 1, out_wire)


class CentralCounterDeployment(_Deployment):
    """The zero-parallelism baseline: one counter object on one node."""

    def __init__(self, num_nodes: int, **kwargs):
        super().__init__(num_nodes, **kwargs)
        self._home = self.object_home("central-counter")
        self._count = AtomicCounter()  # repro: owned-by: shared

    @property
    def num_objects(self) -> int:
        return 1

    def inject_token(self, wire: Optional[int] = None) -> Token:
        token = self.new_token(wire or 0)
        token.hops += 1
        self.bus.send(self._home, token, kind="token")
        return token

    def handle(self, token) -> None:
        self.retire(token, 0, self._count.fetch_increment())


class CountingTreeDeployment(_Deployment):
    """A counting tree [SZ96] with each toggle hashed to a node."""

    def __init__(self, depth: int, num_nodes: int, **kwargs):
        super().__init__(num_nodes, **kwargs)
        self.tree = CountingTree(depth)
        self.depth = depth
        self._homes: Dict[int, int] = {}

    @property
    def num_objects(self) -> int:
        return 2 * self.tree.num_leaves - 1  # toggles + leaf counters

    def _node_home(self, tree_node: int) -> int:
        home = self._homes.get(tree_node)
        if home is None:
            home = self.object_home("ctree/%d/%d" % (self.depth, tree_node))
            self._homes[tree_node] = home
        return home

    def inject_token(self, wire: Optional[int] = None) -> Token:
        token = self.new_token(wire or 0)
        token.hops += 1
        self.bus.send(self._node_home(1), (token, 1, 0), kind="token")
        return token

    def handle(self, message) -> None:
        token, tree_node, level = message
        if level == self.depth:
            # Leaf counter: hand out the value.
            position = tree_node - self.tree.num_leaves
            label = self.tree._bit_reverse(position)
            value = self.tree.leaf_counts.fetch_increment(label) * self.tree.num_leaves + label
            self.retire(token, label, value)
            return
        bit = self.tree._toggles[tree_node].flip()
        child = 2 * tree_node + bit
        token.hops += 1
        self.bus.send(self._node_home(child), (token, child, level + 1), kind="token")
