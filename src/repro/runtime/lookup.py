"""Finding an input component (Section 3.5).

A client that wants to inject a token on network input wire ``i`` picks
the input balancer leaf that would own the wire in the fully-split
network and walks up the ancestor chain — at most ``log w - 1`` names —
until a name resolves to a live component. Each name resolution is a
DHT lookup, whose hop count we also report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.chord.fingers import lookup as chord_lookup
from repro.errors import ComponentNotFound

Path = Tuple[int, ...]


@dataclass(frozen=True)
class LookupResult:
    """Outcome of one input-component lookup."""

    path: Path
    port: int
    tries: int  # names tried (paper bound: log w - 1)
    dht_hops: int  # total Chord routing hops over all tries


class InputLookup:
    """Client-side lookup against the live directory."""

    def __init__(self, system):
        self.system = system
        #: wire -> input leaf. The mapping is a property of the fixed
        #: tree/wiring, so it is computed once per wire, not per token.
        self._leaves: dict = {}
        #: wire -> (directory generation, path, port, tries, hash point).
        #: A resolved lookup stays valid until the deployed cut changes
        #: (the directory generation stamp moves), so repeat injections
        #: on a wire skip the ancestor walk — the same remember-your-
        #: out-neighbour caching Section 3.5 applies on the token plane,
        #: applied at the client. DHT hops are still counted per call by
        #: routing to the remembered component's hash point.
        self._resolved: dict = {}

    def _input_leaf(self, wire: int):
        """The leaf that would accept network input ``wire`` in the
        fully-split network — the name a client starts from. Computed by
        descending the input wiring, which works for any recursive
        structure."""
        leaf = self._leaves.get(wire)
        if leaf is not None:
            return leaf
        system = self.system
        spec = system.tree.root
        port = wire
        while not spec.is_leaf:
            ref = system.wiring.parent_input_dest(spec, port)
            spec = spec.child(ref.child)
            port = ref.port
        self._leaves[wire] = spec
        return spec

    def find(self, wire: int, start_node_id: int = None) -> LookupResult:
        """Locate the live component accepting network input ``wire``."""
        system = self.system
        tree = system.tree
        generation = system.directory.generation
        cached = self._resolved.get(wire)
        if cached is not None and cached[0] == generation:
            _, path, port, tries, point = cached
            hops = 0
            if start_node_id is not None and len(system.ring) > 0:
                _owner, hops = chord_lookup(system.ring, start_node_id, point)
            return LookupResult(path, port, tries, hops)
        spec = self._input_leaf(wire)
        tries = 0
        hops = 0
        while True:
            tries += 1
            if start_node_id is not None and len(system.ring) > 0:
                _owner, step_hops = chord_lookup(
                    system.ring, start_node_id, system.directory.hash_point(spec.path)
                )
                hops += step_hops
            if system.directory.is_live(spec.path):
                break
            parent = tree.parent(spec)
            if parent is None:
                raise ComponentNotFound(
                    "no live component on the ancestor chain of wire %d" % wire
                )
            spec = parent
        member, port = system.wiring.resolve_network_input(
            wire, system.directory.live_paths()
        )
        if member.path != spec.path:
            raise ComponentNotFound(
                "directory changed during lookup of wire %d" % wire
            )
        self._resolved[wire] = (
            generation,
            member.path,
            port,
            tries,
            system.directory.hash_point(member.path),
        )
        return LookupResult(member.path, port, tries, hops)
