"""Self-stabilising state audit (Section 3.4, after [HT03]).

The paper: "If the network was reset to an illegal state by a fault,
then it will recover to reach a legal state, through local stabilization
actions." [HT03] shows how to make balancing networks self-stabilising;
the paper notes the technique "can be easily extended to the more
general components".

Our components admit exactly that extension, because a component's
legal state is *locally checkable*: at quiescence, a component's counter
must equal the number of tokens its in-neighbours ever emitted toward it
(a closed form of their counters, plus the clients' injection ledger for
input-boundary ports). The audit visits each component, recomputes that
expectation from its in-neighbours (the same tracing machinery crash
recovery uses), and overwrites any disagreeing state — a per-component
local action.

Guarantees (mirrored in the bench):

* a *sound* network passes the audit untouched (no false repairs);
* after arbitrary counter corruption, one audit pass restores a legal
  state: every subsequent token is routed as if the corruption never
  happened, and the residual output imbalance is bounded by the number
  of tokens mis-routed while corrupted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.components import ComponentState, balanced_count_at

Path = Tuple[int, ...]


@dataclass
class AuditReport:
    """What one audit pass found and fixed."""

    components_checked: int = 0
    repaired: List[Path] = field(default_factory=list)
    messages: int = 0

    @property
    def clean(self) -> bool:
        return not self.repaired


class StateAuditor:
    """Audits and repairs component states against their in-neighbours."""

    def __init__(self, system):
        self.system = system

    def expected_state(self, path: Path) -> ComponentState:
        """The state a component must have at quiescence, derived purely
        from its in-neighbours and the client injection ledger."""
        system = self.system
        spec = system.tree.node(tuple(path))
        arrivals: Dict[int, int] = {}
        for port in range(spec.width):
            source = system.stabilizer.input_source(spec, port)
            if source[0] == "net":
                count = system.injected_per_wire[source[1]]
            else:
                _, emitter_path, out_port = source
                owner = system.directory.owner(emitter_path)
                emitter = system.hosts[owner].components[emitter_path]
                count = balanced_count_at(0, emitter.total, emitter.width, out_port)
            if count:
                arrivals[port] = count
        return ComponentState(spec, sum(arrivals.values()), arrivals)

    def audit(self, repair: bool = True) -> AuditReport:
        """Check every live component; optionally repair mismatches.

        Components are visited in topological order of the member graph
        so an upstream repair is in place before its downstream
        neighbours are checked against it.
        """
        system = self.system
        report = AuditReport()
        snapshot = system.snapshot_network()
        for path in snapshot.topological_order():
            report.components_checked += 1
            report.messages += 2  # neighbour queries, round trip
            owner = system.directory.owner(path)
            actual = system.hosts[owner].components[path]
            expected = self.expected_state(path)
            if actual.total != expected.total or actual.arrivals != expected.arrivals:
                report.repaired.append(path)
                if repair:
                    actual.total = expected.total
                    actual.arrivals = dict(expected.arrivals)
        if report.repaired:
            system.stats.control_messages += report.messages
        return report


def corrupt_components(system, rng, count: int) -> List[Path]:
    """Fault injection: scramble the counters of ``count`` random live
    components (the [Dij74]-style transient fault the paper considers).
    Returns the corrupted paths."""
    paths = sorted(system.directory.live_paths())
    rng.shuffle(paths)
    victims = paths[: min(count, len(paths))]
    for path in victims:
        owner = system.directory.owner(path)
        state = system.hosts[owner].components[path]
        state.total = rng.randrange(0, max(4 * state.width, state.total + 1))
        if state.arrivals and rng.random() < 0.5:
            port = rng.choice(sorted(state.arrivals))
            state.arrivals[port] = rng.randrange(0, state.arrivals[port] + 3)
    return victims
