"""The live-component directory: which cut is deployed, and where.

In the real system this state is implicit in the DHT (a component named
``b`` lives at node ``h(b)``, and it exists iff someone installed it).
The simulation keeps it explicit: a map from live component paths to
hosting node ids, kept in sync with the hash function as membership
changes. The directory is also where the component *naming* of
Section 2.1 is applied: the hash key of a component is its pre-order
index in ``T_w``.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.chord.hashing import name_to_point
from repro.chord.ring import ChordRing
from repro.core.cut import Cut
from repro.core.decomposition import ComponentSpec, DecompositionTree
from repro.errors import ComponentNotFound, ProtocolError

Path = Tuple[int, ...]


class ComponentDirectory:
    """Tracks the deployed cut and the home node of every component."""

    def __init__(self, tree: DecompositionTree, ring: ChordRing):
        self.tree = tree
        self.ring = ring
        self._owner: Dict[Path, int] = {}
        #: path -> hash point. A component's name (and therefore its
        #: point) depends only on the fixed tree and identifier space,
        #: so entries never invalidate; the memo spares the token hot
        #: path a tree walk + SHA-1 per lookup.
        self._points: Dict[Path, int] = {}
        #: Monotonic mutation stamp: bumped on every register/unregister.
        #: Caches keyed by it (the client-side input-lookup cache, the
        #: ``live_paths`` memo below) stay valid exactly as long as the
        #: deployed cut is unchanged.
        self._generation = 0  # repro: owned-by: single-writer
        self._live_memo: Optional[FrozenSet[Path]] = None

    # ------------------------------------------------------------------
    # naming and placement
    # ------------------------------------------------------------------
    def component_name(self, path: Path) -> str:
        """The paper's name: the pre-order index of the component,
        scoped by the network width so distinct networks don't collide."""
        spec = self.tree.node(tuple(path))
        return "cn/%d/%d" % (self.tree.width, self.tree.preorder_index(spec))

    def hash_point(self, path: Path) -> int:
        path = tuple(path)
        point = self._points.get(path)
        if point is None:
            point = name_to_point(self.component_name(path), self.ring.space)
            self._points[path] = point
        return point

    def home(self, path: Path) -> int:
        """The node id that should host ``path`` under the current ring."""
        return self.ring.successor(self.hash_point(path)).node_id

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def _bump_generation(self) -> None:
        """The one mutation site for the stamp and its dependent memo
        (the single-writer ownership contract on ``_generation``)."""
        self._generation += 1
        self._live_memo = None

    def register(self, path: Path, node_id: int) -> None:
        self._owner[tuple(path)] = node_id
        self._bump_generation()

    def unregister(self, path: Path) -> None:
        self._owner.pop(tuple(path), None)
        self._bump_generation()

    @property
    def generation(self) -> int:
        """Current mutation stamp (changes iff the deployed cut does)."""
        return self._generation

    def owner(self, path: Path) -> int:
        try:
            return self._owner[tuple(path)]
        except KeyError:
            raise ComponentNotFound("no live component at path %r" % (path,)) from None

    def is_live(self, path: Path) -> bool:
        return tuple(path) in self._owner

    def owner_reader(self) -> "Callable[[Path], Optional[int]]":
        """A bound, C-level ``dict.get`` over the owner map for hot
        paths (the per-hop liveness + owner probe). Keys must already be
        tuples; missing paths read as None. The underlying dict is
        mutated in place and never replaced, so the reader stays valid
        for the directory's lifetime."""
        return self._owner.get

    def live_paths(self) -> FrozenSet[Path]:
        memo = self._live_memo
        if memo is None:
            memo = self._live_memo = frozenset(self._owner)
        return memo

    def paths_on(self, node_id: int) -> List[Path]:
        return sorted(p for p, owner in self._owner.items() if owner == node_id)

    def __len__(self) -> int:
        return len(self._owner)

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------
    def spec(self, path: Path) -> ComponentSpec:
        return self.tree.node(tuple(path))

    def covering_member(self, path: Path) -> Optional[Path]:
        """The live member whose subtree contains ``path`` (an ancestor
        or the path itself), if any."""
        path = tuple(path)
        for end in range(len(path), -1, -1):
            if path[:end] in self._owner:
                return path[:end]
        return None

    def live_descendants(self, path: Path) -> List[Path]:
        """Live members strictly below ``path``."""
        path = tuple(path)
        return sorted(
            p for p in self._owner if len(p) > len(path) and p[: len(path)] == path
        )

    def as_cut(self) -> Cut:
        """The deployed cut; raises if the directory is inconsistent."""
        return Cut(self.tree, self._owner.keys())

    def check_consistent(self) -> None:
        """Directory invariant: the live paths form a valid cut and every
        component sits at its hash home."""
        self.as_cut()
        for path, node_id in self._owner.items():
            expected = self.home(path)
            if expected != node_id:
                raise ProtocolError(
                    "component %r hosted at %#x but its home is %#x"
                    % (path, node_id, expected)
                )
