"""The recursive decomposition tree ``T_w`` of Section 2.1.

A bitonic network of width ``w`` decomposes recursively into
*components*:

* ``BITONIC[k]`` (``k >= 4``) splits into six width ``k/2`` components:
  top/bottom ``BITONIC[k/2]``, top/bottom ``MERGER[k/2]`` and top/bottom
  ``MIX[k/2]``.
* ``MERGER[k]`` splits into four width ``k/2`` components: top/bottom
  ``MERGER[k/2]`` and top/bottom ``MIX[k/2]``.
* ``MIX[k]`` splits into two width ``k/2`` components.
* Width-2 components are single balancers — the leaves of the tree.

The tree of all components rooted at ``BITONIC[w]`` is ``T_w``. Each
component is identified by its *path* — the tuple of child indices from
the root — and named by its position in a pre-order traversal of ``T_w``
(the paper's naming scheme). Both directions (path -> pre-order index
and back) are computed in ``O(depth)`` arithmetic without materialising
the tree.
"""

from __future__ import annotations

import enum
import functools
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.errors import StructureError


class ComponentKind(enum.Enum):
    """The three component types of the recursive decomposition."""

    BITONIC = "B"
    MERGER = "M"
    MIX = "X"

    def __repr__(self):  # pragma: no cover - cosmetic
        return "ComponentKind.%s" % self.name


#: Child kinds per parent kind, in child-index order. The order encodes
#: the orientation convention used throughout the package:
#: even child indices are "top", odd are "bottom".
_CHILD_KINDS = {
    ComponentKind.BITONIC: (
        ComponentKind.BITONIC,
        ComponentKind.BITONIC,
        ComponentKind.MERGER,
        ComponentKind.MERGER,
        ComponentKind.MIX,
        ComponentKind.MIX,
    ),
    ComponentKind.MERGER: (
        ComponentKind.MERGER,
        ComponentKind.MERGER,
        ComponentKind.MIX,
        ComponentKind.MIX,
    ),
    ComponentKind.MIX: (
        ComponentKind.MIX,
        ComponentKind.MIX,
    ),
}


def _is_power_of_two(n: int) -> bool:
    return n >= 1 and (n & (n - 1)) == 0


def _check_width(width: int) -> None:
    if not _is_power_of_two(width) or width < 2:
        raise StructureError("component width must be a power of two >= 2, got %r" % (width,))


@dataclass(frozen=True)
class ComponentSpec:
    """A node of ``T_w``: a component type, width and position.

    ``path`` is the tuple of child indices leading from the root
    ``BITONIC[w]`` to this component; the root has the empty path. The
    component's *level* (Section 2.3) is ``len(path)``, and its width is
    ``w / 2**level``.
    """

    kind: ComponentKind
    width: int
    path: Tuple[int, ...]

    def __post_init__(self):
        _check_width(self.width)

    @property
    def level(self) -> int:
        """Level of the component in ``T_w`` (root is level 0)."""
        return len(self.path)

    @property
    def is_leaf(self) -> bool:
        """Width-2 components are individual balancers, the tree leaves."""
        return self.width == 2

    def child_kinds(self) -> Tuple[ComponentKind, ...]:
        """Kinds of this component's children, in child-index order."""
        if self.is_leaf:
            raise StructureError("a width-2 component (balancer) has no children: %s" % (self,))
        return _CHILD_KINDS[self.kind]

    def num_children(self) -> int:
        """Number of children (6 for BITONIC, 4 for MERGER, 2 for MIX)."""
        return 0 if self.is_leaf else len(_CHILD_KINDS[self.kind])

    def child(self, index: int) -> "ComponentSpec":
        """The ``index``-th child component (width halves, level grows)."""
        kinds = self.child_kinds()
        if not 0 <= index < len(kinds):
            raise StructureError(
                "child index %d out of range for %s (%d children)"
                % (index, self, len(kinds))
            )
        return _child_spec(self.kind, self.width, self.path, index)

    def children(self) -> List["ComponentSpec"]:
        """All children, in child-index order."""
        return [self.child(i) for i in range(self.num_children())]

    def label(self) -> str:
        """Short human-readable label, e.g. ``B[8]@(0,2)``."""
        return "%s[%d]@%s" % (self.kind.value, self.width, ",".join(map(str, self.path)) or "root")

    def __str__(self):
        return self.label()


@functools.lru_cache(maxsize=None)
def _child_spec(
    kind: ComponentKind, width: int, path: Tuple[int, ...], index: int
) -> ComponentSpec:
    """Interned child specs: the token hot path re-derives the same
    parent->child steps constantly, and the tree is small enough to keep
    every spec alive."""
    return ComponentSpec(_CHILD_KINDS[kind][index], width // 2, path + (index,))


@functools.lru_cache(maxsize=None)
def subtree_size(kind: ComponentKind, width: int) -> int:
    """Number of components in the subtree rooted at a ``kind[width]`` node.

    Used to convert between paths and pre-order indices in ``O(depth)``.
    """
    _check_width(width)
    if width == 2:
        return 1
    half = width // 2
    return 1 + sum(subtree_size(k, half) for k in _CHILD_KINDS[kind])


class DecompositionTree:
    """``T_w`` — the full decomposition tree of ``BITONIC[w]``.

    The tree is *virtual*: nodes are :class:`ComponentSpec` values
    constructed on demand, so arbitrarily large widths are cheap. The
    class provides navigation (parent/children/ancestors), the paper's
    pre-order naming scheme, and the level-population function
    ``phi(level)`` used by the splitting/merging rules of Section 3.
    """

    def __init__(self, width: int):
        if not _is_power_of_two(width) or width < 2:
            raise StructureError("network width must be a power of two >= 2, got %r" % (width,))
        self.width = width
        self.root = ComponentSpec(ComponentKind.BITONIC, width, ())

    # ------------------------------------------------------------------
    # navigation
    # ------------------------------------------------------------------
    @property
    def max_level(self) -> int:
        """Deepest level of ``T_w`` (the level of the balancer leaves)."""
        return self.width.bit_length() - 2  # log2(width) - 1

    def node(self, path: Tuple[int, ...]) -> ComponentSpec:
        """The component at ``path``; raises for invalid paths."""
        spec = self.root
        for index in path:
            spec = spec.child(index)
        return spec

    def parent(self, spec: ComponentSpec) -> Optional[ComponentSpec]:
        """The parent component, or ``None`` for the root."""
        if not spec.path:
            return None
        return self.node(spec.path[:-1])

    def ancestors(self, spec: ComponentSpec) -> Iterator[ComponentSpec]:
        """All proper ancestors, nearest first (parent, ..., root)."""
        path = spec.path
        while path:
            path = path[:-1]
            yield self.node(path)

    def contains(self, spec: ComponentSpec) -> bool:
        """Whether ``spec`` denotes a real node of this tree."""
        try:
            return self.node(spec.path) == spec
        except StructureError:
            return False

    def iter_preorder(self) -> Iterator[ComponentSpec]:
        """Iterate all components of ``T_w`` in pre-order.

        Exponential in the depth — only for small widths (tests,
        figures). Large-width code should use the arithmetic
        ``preorder_index``/``from_preorder_index`` instead.
        """
        stack = [self.root]
        while stack:
            spec = stack.pop()
            yield spec
            if not spec.is_leaf:
                stack.extend(reversed(spec.children()))

    def iter_level(self, level: int) -> Iterator[ComponentSpec]:
        """Iterate all components at ``level`` (pre-order among them)."""
        if not 0 <= level <= self.max_level:
            raise StructureError(
                "level %d out of range [0, %d] for width %d" % (level, self.max_level, self.width)
            )
        for spec in self.iter_preorder():
            if spec.level == level:
                yield spec

    # ------------------------------------------------------------------
    # naming (pre-order indices)
    # ------------------------------------------------------------------
    def size(self) -> int:
        """Total number of components in ``T_w``."""
        return subtree_size(self.root.kind, self.root.width)

    def preorder_index(self, spec: ComponentSpec) -> int:
        """The paper's name of a component: its pre-order position in ``T_w``."""
        index = 0
        current = self.root
        for child_index in spec.path:
            index += 1  # step past `current` itself
            kinds = current.child_kinds()
            half = current.width // 2
            for earlier in range(child_index):
                index += subtree_size(kinds[earlier], half)
            current = current.child(child_index)
        if current != spec:
            raise StructureError("%s is not a node of T_%d" % (spec, self.width))
        return index

    def from_preorder_index(self, index: int) -> ComponentSpec:
        """Inverse of :meth:`preorder_index`."""
        if not 0 <= index < self.size():
            raise StructureError(
                "pre-order index %d out of range [0, %d)" % (index, self.size())
            )
        current = self.root
        remaining = index
        while remaining > 0:
            remaining -= 1  # step past `current`
            half = current.width // 2
            for child_index, kind in enumerate(current.child_kinds()):
                size = subtree_size(kind, half)
                if remaining < size:
                    current = current.child(child_index)
                    break
                remaining -= size
        return current

    # ------------------------------------------------------------------
    # level populations (Section 3, "phi")
    # ------------------------------------------------------------------
    def level_census(self, level: int) -> Tuple[int, int, int]:
        """Counts of (BITONIC, MERGER, MIX) components at ``level``.

        Computed from the recurrence ``b' = 2b``, ``m' = 2b + 2m``,
        ``x' = 2b + 2m + 2x`` with ``(b, m, x) = (1, 0, 0)`` at level 0.
        """
        if not 0 <= level <= self.max_level:
            raise StructureError(
                "level %d out of range [0, %d] for width %d" % (level, self.max_level, self.width)
            )
        b, m, x = 1, 0, 0
        for _ in range(level):
            b, m, x = 2 * b, 2 * b + 2 * m, 2 * b + 2 * m + 2 * x
        return b, m, x

    def phi(self, level: int) -> int:
        """``phi(level)`` — the number of components at ``level`` of ``T_w``.

        ``phi(0) = 1``, ``phi(1) = 6``, ``phi(2) = 24``, ... and Fact 1
        of the paper holds: ``2*phi(k) <= phi(k+1) <= 6*phi(k)``.
        """
        return sum(self.level_census(level))

    def input_leaf(self, pair: int) -> ComponentSpec:
        """The input-balancer leaf handling network inputs ``2*pair, 2*pair+1``.

        Network inputs enter through the BITONIC children only: at a
        ``BITONIC[k]`` the top half of the inputs goes to child 0 and the
        bottom half to child 1 (Section 2.1). Descending accordingly
        reaches the width-2 leaf that would accept the pair in the
        fully-split network. These leaf names are where a client starts
        the input-component lookup of Section 3.5.
        """
        if not 0 <= pair < self.width // 2:
            raise StructureError(
                "input pair %d out of range [0, %d)" % (pair, self.width // 2)
            )
        spec = self.root
        while not spec.is_leaf:
            quarter = spec.width // 4  # input pairs under each half
            if pair < quarter:
                spec = spec.child(0)
            else:
                spec = spec.child(1)
                pair -= quarter
        return spec

    def input_leaf_names(self) -> List[ComponentSpec]:
        """All ``w/2`` input-balancer leaves, in top-to-bottom wire order."""
        return [self.input_leaf(pair) for pair in range(self.width // 2)]
