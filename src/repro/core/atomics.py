"""Atomic counter facades for the thread-readiness contract (Pass 7).

Every compound read-modify-write that Pass 6 flagged as RSC602 —
``self.count += 1``, ``self.output_counts[w] += 1``, toggled bits,
keyed in-flight ledgers — is a load, an op, and a store that only the
single-threaded event loop keeps atomic. The ROADMAP's threads backend
removes that accident, so shared counter state routes through the small
facades in this module instead: one named call site (``increment``,
``fetch_increment``, ``flip``, ``post``/``settle``) that a backend can
make genuinely atomic.

Two flavors exist:

* the **single-thread** flavor (the classes below) is a plain-Python
  facade with no synchronization — byte-identical arithmetic to the
  raw-int code it replaced, and cheap enough for the simulator's hot
  path;
* the **locked** flavor (``Locked*``) wraps every mutation *and every
  read that observes mutable state* in a ``threading.Lock`` — the
  conservative implementation a shared-memory backend starts from.
  Read paths route through ``get()``/``snapshot()`` precisely so the
  locked subclasses can intercept them: a comparison against a locked
  counter acquires that counter's lock for the read.

One lock-free helper exists outside the flavors:
:class:`ThreadSafeToggle`, a balancer toggle whose ``flip()`` is a
single C-level fetch-and-add (``next()`` on ``itertools.count``) that
the GIL makes atomic — the hot-path toggle of the threads backend. On
free-threaded builds (PEP 703) it degrades to an internal lock.

Backends select a flavor through :func:`flavor` /
:class:`AtomicsFlavor` rather than naming classes, so swapping the
whole family is one constructor argument.

The facades deliberately implement the arithmetic/comparison protocol
(``int(c)``, ``c == 5``, ``c - other``, iteration for the per-wire
family), so read sites — step-property checks, benchmarks, tests —
keep treating them as the numbers they wrap. Mutation, however, only
happens through the named methods: Pass 7 (RSC704) flags direct pokes
at the internals.
"""

from __future__ import annotations

import itertools
import sys
import threading
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Generic,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
    Type,
    TypeVar,
    Union,
)

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

Number = Union[int, float]


class AtomicCounter:
    """A single integer counter behind named atomic operations.

    ``increment``/``decrement`` return the *new* value;
    ``fetch_increment`` returns the *prior* value (the classic
    fetch-and-add, which is how counting networks hand out values).
    The counter compares and does arithmetic like the int it wraps.
    """

    __slots__ = ("_value",)

    def __init__(self, initial: int = 0) -> None:
        self._value = int(initial)

    # -- named mutations ------------------------------------------------
    def increment(self, amount: int = 1) -> int:
        """Add ``amount``; return the new value."""
        value = self._value + amount
        self._value = value
        return value

    def fetch_increment(self, amount: int = 1) -> int:
        """Add ``amount``; return the value *before* the add."""
        value = self._value
        self._value = value + amount
        return value

    def decrement(self, amount: int = 1) -> int:
        """Subtract ``amount``; return the new value."""
        value = self._value - amount
        self._value = value
        return value

    def get(self) -> int:
        return self._value

    def set(self, value: int) -> None:
        self._value = int(value)

    # -- int facade -----------------------------------------------------
    # Every read dunder routes through get() so that Locked* subclasses
    # make *reads* lock-consistent by overriding one method; comparisons
    # read the other side through its get() too (see _as_number), so a
    # locked counter on either side of `a == b` is read under its own
    # lock. Each side's lock is taken and released independently —
    # neither is held while acquiring the other — so cross-comparing
    # two locked counters cannot deadlock.
    def __int__(self) -> int:
        return self.get()

    def __index__(self) -> int:
        return self.get()

    def __bool__(self) -> bool:
        return bool(self.get())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, AtomicCounter):
            return self.get() == other.get()
        if isinstance(other, (int, float)):
            return self.get() == other
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        # Explicit mirror of __eq__ (kept next to it by the Pass 7
        # audit): preserves NotImplemented so reflected comparisons
        # against foreign types still work.
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __lt__(self, other: Any) -> bool:
        return self.get() < _as_number(other)

    def __le__(self, other: Any) -> bool:
        return self.get() <= _as_number(other)

    def __gt__(self, other: Any) -> bool:
        return self.get() > _as_number(other)

    def __ge__(self, other: Any) -> bool:
        return self.get() >= _as_number(other)

    def __add__(self, other: Any) -> Number:
        return self.get() + _as_number(other)

    def __radd__(self, other: Any) -> Number:
        return _as_number(other) + self.get()

    def __sub__(self, other: Any) -> Number:
        return self.get() - _as_number(other)

    def __rsub__(self, other: Any) -> Number:
        return _as_number(other) - self.get()

    def __mul__(self, other: Any) -> Number:
        return self.get() * _as_number(other)

    def __rmul__(self, other: Any) -> Number:
        return _as_number(other) * self.get()

    def __truediv__(self, other: Any) -> float:
        return self.get() / _as_number(other)

    def __rtruediv__(self, other: Any) -> float:
        return _as_number(other) / self.get()

    def __floordiv__(self, other: Any) -> Number:
        return self.get() // _as_number(other)

    def __mod__(self, other: Any) -> Number:
        return self.get() % _as_number(other)

    def __iadd__(self, other: int) -> "AtomicCounter":
        # `c += n` rebinds to the same object after one atomic add, so
        # legacy augmented-assignment call sites stay correct.
        self.increment(int(other))
        return self

    def __isub__(self, other: int) -> "AtomicCounter":
        self.decrement(int(other))
        return self

    def __neg__(self) -> int:
        return -self._value

    def __hash__(self) -> int:
        # Identity hash: the value mutates, so value-hashing would
        # corrupt any container holding the counter across an update.
        return object.__hash__(self)

    def __repr__(self) -> str:
        return "%s(%d)" % (type(self).__name__, self._value)


class LockedAtomicCounter(AtomicCounter):
    """:class:`AtomicCounter` with every mutation *and read* locked.

    The base class funnels all observation — ``int()``, ``bool()``,
    comparisons, arithmetic — through :meth:`get`, so locking it here
    makes the whole read surface lock-consistent with the writers.
    """

    __slots__ = ("_lock",)

    def __init__(self, initial: int = 0) -> None:
        super().__init__(initial)
        self._lock = threading.Lock()

    def increment(self, amount: int = 1) -> int:
        with self._lock:
            return super().increment(amount)

    def fetch_increment(self, amount: int = 1) -> int:
        with self._lock:
            return super().fetch_increment(amount)

    def decrement(self, amount: int = 1) -> int:
        with self._lock:
            return super().decrement(amount)

    def set(self, value: int) -> None:
        with self._lock:
            super().set(value)

    def get(self) -> int:
        with self._lock:
            return super().get()


class PerWireCounters:
    """A fixed-width array of counters (one per output wire).

    Iteration, indexing, ``len`` and equality against plain sequences
    all behave like the ``[0] * width`` list this replaces, so step-
    property checks and tests read it unchanged; writes go through
    ``increment``/``fetch_increment``/``decrement``.
    """

    __slots__ = ("_values",)

    def __init__(self, width_or_values: Union[int, Iterable[int]]) -> None:
        if isinstance(width_or_values, int):
            self._values = [0] * width_or_values
        else:
            self._values = [int(v) for v in width_or_values]

    # -- named mutations ------------------------------------------------
    def increment(self, index: int, amount: int = 1) -> int:
        value = self._values[index] + amount
        self._values[index] = value
        return value

    def fetch_increment(self, index: int, amount: int = 1) -> int:
        value = self._values[index]
        self._values[index] = value + amount
        return value

    def decrement(self, index: int, amount: int = 1) -> int:
        value = self._values[index] - amount
        self._values[index] = value
        return value

    def get(self, index: int) -> int:
        return self._values[index]

    def set(self, index: int, value: int) -> None:
        self._values[index] = int(value)

    def reset(self, values: Optional[Iterable[int]] = None) -> None:
        if values is None:
            self._values = [0] * len(self._values)
        else:
            self._values = [int(v) for v in values]

    def snapshot(self) -> List[int]:
        return list(self._values)

    # -- sequence facade ------------------------------------------------
    def __getitem__(self, index: int) -> int:
        return self._values[index]

    def __setitem__(self, index: int, value: int) -> None:
        # Present for drop-in sequence compatibility (tests mutate the
        # raw counts); analyzed code uses the named methods instead.
        self._values[index] = int(value)

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[int]:
        return iter(self._values)

    def __eq__(self, other: object) -> bool:
        # snapshot() both sides so a locked counter array is read under
        # its own lock; the two snapshots are taken one after the other
        # (never nested), so locked-vs-locked comparison cannot deadlock.
        if isinstance(other, PerWireCounters):
            return self.snapshot() == other.snapshot()
        if isinstance(other, (list, tuple)):
            return self.snapshot() == list(other)
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return object.__hash__(self)

    def __repr__(self) -> str:
        return "%s(%r)" % (type(self).__name__, self._values)


class LockedPerWireCounters(PerWireCounters):
    """:class:`PerWireCounters` with mutations and snapshots locked."""

    __slots__ = ("_lock",)

    def __init__(self, width_or_values: Union[int, Iterable[int]]) -> None:
        super().__init__(width_or_values)
        self._lock = threading.Lock()

    def increment(self, index: int, amount: int = 1) -> int:
        with self._lock:
            return super().increment(index, amount)

    def fetch_increment(self, index: int, amount: int = 1) -> int:
        with self._lock:
            return super().fetch_increment(index, amount)

    def decrement(self, index: int, amount: int = 1) -> int:
        with self._lock:
            return super().decrement(index, amount)

    def set(self, index: int, value: int) -> None:
        with self._lock:
            super().set(index, value)

    def reset(self, values: Optional[Iterable[int]] = None) -> None:
        with self._lock:
            super().reset(values)

    def snapshot(self) -> List[int]:
        with self._lock:
            return super().snapshot()

    # -- locked reads ---------------------------------------------------
    def get(self, index: int) -> int:
        with self._lock:
            return super().get(index)

    def __getitem__(self, index: int) -> int:
        with self._lock:
            return super().__getitem__(index)

    def __setitem__(self, index: int, value: int) -> None:
        with self._lock:
            super().__setitem__(index, value)

    def __len__(self) -> int:
        with self._lock:
            return super().__len__()

    def __iter__(self) -> Iterator[int]:
        # Iterate a point-in-time copy: handing out a live iterator over
        # ``_values`` would read it after the lock is released.
        return iter(self.snapshot())


class ToggleBit:
    """A balancer's toggle: ``flip()`` returns the prior bit and
    toggles. ``wire = toggle.flip()`` is exactly the old
    ``bit = toggles[i] % 2; toggles[i] += 1`` pair."""

    __slots__ = ("_bit",)

    def __init__(self, initial: int = 0) -> None:
        self._bit = int(initial) & 1

    def flip(self) -> int:
        """Toggle; return the bit *before* the flip."""
        bit = self._bit
        self._bit = bit ^ 1
        return bit

    def read(self) -> int:
        return self._bit

    def set(self, bit: int) -> None:
        self._bit = int(bit) & 1

    def __repr__(self) -> str:
        return "%s(%d)" % (type(self).__name__, self._bit)


class LockedToggleBit(ToggleBit):
    """:class:`ToggleBit` with flips *and reads* under a lock."""

    __slots__ = ("_lock",)

    def __init__(self, initial: int = 0) -> None:
        super().__init__(initial)
        self._lock = threading.Lock()

    def flip(self) -> int:
        with self._lock:
            return super().flip()

    def read(self) -> int:
        with self._lock:
            return super().read()

    def set(self, bit: int) -> None:
        with self._lock:
            super().set(bit)


def _gil_enabled() -> bool:
    """Whether this interpreter runs with the GIL (always true before
    the free-threaded builds of 3.13; ``sys._is_gil_enabled`` after)."""
    checker = getattr(sys, "_is_gil_enabled", None)
    if checker is None:
        return True
    return bool(checker())


class ThreadSafeToggle:
    """A lock-free balancer toggle for the shared-memory backend.

    ``flip()`` draws from an ``itertools.count``: ``next()`` on a C
    iterator is one bytecode whose whole effect happens under the GIL,
    so concurrent flips each observe a distinct tick — a genuine
    fetch-and-add with no lock, no matter how many threads contend
    (the cybozu ``Balancer2x2::get`` = ``fetch_add(&value, 1) % 2``
    pattern). The flip sequence is bit-identical to
    :class:`ToggleBit`: the i-th flip returns ``(initial + i) % 2``.

    On free-threaded builds (PEP 703, no GIL) a shared C iterator is no
    longer atomic, so the constructor detects that and routes flips
    through an internal lock instead — same semantics, locked speed.

    Deliberately not part of an :class:`AtomicsFlavor`: the tick
    counter only supports ``flip()`` (a toggle you could ``set`` or
    ``read`` mid-flight would need the lock the whole point is to
    avoid). Quiescent state lives in the retirement counters, not here.
    """

    __slots__ = ("_ticks", "_lock")

    def __init__(self, initial: int = 0) -> None:
        self._ticks = itertools.count(int(initial) & 1)
        self._lock: Optional[threading.Lock] = (
            None if _gil_enabled() else threading.Lock()
        )

    def flip(self) -> int:
        """Atomically toggle; return the bit *before* the flip."""
        lock = self._lock
        if lock is None:
            return next(self._ticks) & 1
        with lock:
            return next(self._ticks) & 1

    def __repr__(self) -> str:
        return "%s()" % type(self).__name__


class TokenLedger(Generic[K]):
    """Keyed integer balances (owed tokens, in-flight counts, toggles).

    ``post`` adds to a key's balance, ``settle`` subtracts, and a
    balance that settles to zero is dropped — matching the sparse
    ``dict.get(k, 0) + 1`` / ``del`` idiom it replaces. ``fetch_post``
    is the keyed fetch-and-add.
    """

    __slots__ = ("_entries",)

    def __init__(self, initial: Optional[Mapping[K, int]] = None) -> None:
        self._entries: Dict[K, int] = dict(initial) if initial else {}

    # -- named mutations ------------------------------------------------
    def post(self, key: K, amount: int = 1) -> int:
        """Add ``amount`` to ``key``'s balance; return the new balance."""
        value = self._entries.get(key, 0) + amount
        if value:
            self._entries[key] = value
        else:
            self._entries.pop(key, None)
        return value

    def fetch_post(self, key: K, amount: int = 1) -> int:
        """Add ``amount`` to ``key``'s balance; return the prior one."""
        value = self._entries.get(key, 0)
        new = value + amount
        if new:
            self._entries[key] = new
        else:
            self._entries.pop(key, None)
        return value

    def settle(self, key: K, amount: int = 1) -> int:
        """Subtract ``amount`` from ``key``'s balance; return the new
        balance. A zero balance drops the entry."""
        # Inlined post(key, -amount): settle is on the per-hop hot path.
        entries = self._entries
        value = entries.get(key, 0) - amount
        if value:
            entries[key] = value
        else:
            entries.pop(key, None)
        return value

    def clear_balance(self, key: K) -> int:
        """Drop ``key`` entirely; return the balance it had."""
        return self._entries.pop(key, 0)

    def reset(self) -> None:
        self._entries = {}

    def reader(self) -> Callable[..., Any]:
        """A bound, C-level read callable (``dict.get``) for hot paths.

        Reading one key is atomic under the GIL in every flavor, so the
        reader is safe to hoist and call lock-free; it must never be
        used to mutate. Missing keys read as ``None`` (the raw
        ``dict.get`` default), unlike :meth:`get`'s 0. A hoisted reader
        observes the dict it was created from: :meth:`reset` swaps the
        underlying dict and invalidates previously handed-out readers.
        """
        return self._entries.get

    # -- mapping facade -------------------------------------------------
    def balance(self, key: K) -> int:
        return self._entries.get(key, 0)

    def get(self, key: K, default: int = 0) -> int:
        return self._entries.get(key, default)

    def snapshot(self) -> Dict[K, int]:
        return dict(self._entries)

    def keys(self) -> Iterable[K]:
        return self._entries.keys()

    def items(self) -> Iterable[Tuple[K, int]]:
        return self._entries.items()

    def values(self) -> Iterable[int]:
        return self._entries.values()

    def __getitem__(self, key: K) -> int:
        return self._entries[key]

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[K]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __eq__(self, other: object) -> bool:
        # snapshot() both sides (sequentially, never nested) so locked
        # ledgers are read under their own lock without deadlock risk.
        if isinstance(other, TokenLedger):
            return self.snapshot() == other.snapshot()
        if isinstance(other, dict):
            return self.snapshot() == other
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return object.__hash__(self)

    def __repr__(self) -> str:
        return "%s(%r)" % (type(self).__name__, self._entries)


class LockedTokenLedger(TokenLedger[K]):
    """:class:`TokenLedger` with mutations and snapshots locked."""

    __slots__ = ("_lock",)

    def __init__(self, initial: Optional[Mapping[K, int]] = None) -> None:
        super().__init__(initial)
        self._lock = threading.Lock()

    def post(self, key: K, amount: int = 1) -> int:
        with self._lock:
            return super().post(key, amount)

    def fetch_post(self, key: K, amount: int = 1) -> int:
        with self._lock:
            return super().fetch_post(key, amount)

    def settle(self, key: K, amount: int = 1) -> int:
        with self._lock:
            return super().settle(key, amount)

    def clear_balance(self, key: K) -> int:
        with self._lock:
            return super().clear_balance(key)

    def reset(self) -> None:
        with self._lock:
            super().reset()

    def snapshot(self) -> Dict[K, int]:
        with self._lock:
            return super().snapshot()

    # -- locked reads ---------------------------------------------------
    # Single-key reads (balance/get/__getitem__/__contains__/__len__)
    # stay lock-free: each is one C-level dict operation, atomic under
    # the GIL (see :meth:`TokenLedger.reader`). Iteration is not — it
    # interleaves with writers — so the iterating reads go through a
    # locked snapshot.
    def keys(self) -> Iterable[K]:
        return self.snapshot().keys()

    def items(self) -> Iterable[Tuple[K, int]]:
        return self.snapshot().items()

    def values(self) -> Iterable[int]:
        return self.snapshot().values()

    def __iter__(self) -> Iterator[K]:
        return iter(self.snapshot())


class GuardedMap(Generic[K, V]):
    """A keyed object map whose mutations are two named operations:
    ``put`` (insert/replace) and ``take`` (remove-and-return). Used for
    pending-RPC continuations and the cut network's live component
    states, where Pass 6 flagged raw ``d[k] = v`` / ``d.pop(k)`` pairs.
    """

    __slots__ = ("_entries",)

    def __init__(self, initial: Optional[Mapping[K, V]] = None) -> None:
        self._entries: Dict[K, V] = dict(initial) if initial else {}

    # -- named mutations ------------------------------------------------
    def put(self, key: K, value: V) -> None:
        self._entries[key] = value

    def take(self, key: K, default: Optional[V] = None) -> Optional[V]:
        """Remove ``key``; return its value (or ``default``)."""
        return self._entries.pop(key, default)

    def ensure(self, key: K, factory: Callable[[], V]) -> V:
        """Return ``key``'s value, creating it via ``factory`` first if
        absent (an explicit, lockable ``setdefault``)."""
        try:
            return self._entries[key]
        except KeyError:
            value = factory()
            self._entries[key] = value
            return value

    def reset(self, initial: Optional[Mapping[K, V]] = None) -> None:
        self._entries = dict(initial) if initial else {}

    def reader(self) -> Callable[..., Any]:
        """A bound, C-level read callable (``dict.get``) for hot paths;
        see :meth:`TokenLedger.reader`. Never use it to mutate."""
        return self._entries.get

    # -- mapping facade -------------------------------------------------
    def get(self, key: K, default: Optional[V] = None) -> Optional[V]:
        return self._entries.get(key, default)

    def snapshot(self) -> Dict[K, V]:
        return dict(self._entries)

    def keys(self) -> Iterable[K]:
        return self._entries.keys()

    def values(self) -> Iterable[V]:
        return self._entries.values()

    def items(self) -> Iterable[Tuple[K, V]]:
        return self._entries.items()

    def __getitem__(self, key: K) -> V:
        return self._entries[key]

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[K]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __eq__(self, other: object) -> bool:
        # snapshot() both sides (sequentially, never nested) so locked
        # maps are read under their own lock without deadlock risk.
        if isinstance(other, GuardedMap):
            return self.snapshot() == other.snapshot()
        if isinstance(other, dict):
            return self.snapshot() == other
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return object.__hash__(self)

    def __repr__(self) -> str:
        return "%s(%r)" % (type(self).__name__, self._entries)


class LockedGuardedMap(GuardedMap[K, V]):
    """:class:`GuardedMap` with mutations and snapshots locked."""

    __slots__ = ("_lock",)

    def __init__(self, initial: Optional[Mapping[K, V]] = None) -> None:
        super().__init__(initial)
        self._lock = threading.Lock()

    def put(self, key: K, value: V) -> None:
        with self._lock:
            super().put(key, value)

    def take(self, key: K, default: Optional[V] = None) -> Optional[V]:
        with self._lock:
            return super().take(key, default)

    def ensure(self, key: K, factory: Callable[[], V]) -> V:
        with self._lock:
            return super().ensure(key, factory)

    def reset(self, initial: Optional[Mapping[K, V]] = None) -> None:
        with self._lock:
            super().reset(initial)

    def snapshot(self) -> Dict[K, V]:
        with self._lock:
            return super().snapshot()

    # -- locked reads ---------------------------------------------------
    # Same policy as LockedTokenLedger: single-key reads are one
    # GIL-atomic dict operation and stay lock-free; iteration reads a
    # locked point-in-time snapshot.
    def keys(self) -> Iterable[K]:
        return self.snapshot().keys()

    def values(self) -> Iterable[V]:
        return self.snapshot().values()

    def items(self) -> Iterable[Tuple[K, V]]:
        return self.snapshot().items()

    def __iter__(self) -> Iterator[K]:
        return iter(self.snapshot())


@dataclass(frozen=True)
class AtomicsFlavor:
    """One selectable family of atomic facades.

    A backend picks a flavor once (``flavor("locked")``) and constructs
    every counter through it; the event-loop backend uses the single-
    thread family, a shared-memory backend the locked one.
    """

    name: str
    counter: Type[AtomicCounter]
    per_wire: Type[PerWireCounters]
    toggle: Type[ToggleBit]
    ledger: Type[TokenLedger]
    guarded_map: Type[GuardedMap]


SINGLE_THREAD = AtomicsFlavor(
    name="single-thread",
    counter=AtomicCounter,
    per_wire=PerWireCounters,
    toggle=ToggleBit,
    ledger=TokenLedger,
    guarded_map=GuardedMap,
)

LOCKED = AtomicsFlavor(
    name="locked",
    counter=LockedAtomicCounter,
    per_wire=LockedPerWireCounters,
    toggle=LockedToggleBit,
    ledger=LockedTokenLedger,
    guarded_map=LockedGuardedMap,
)

FLAVORS: Dict[str, AtomicsFlavor] = {
    SINGLE_THREAD.name: SINGLE_THREAD,
    LOCKED.name: LOCKED,
}


def flavor(name: str) -> AtomicsFlavor:
    """Look up a flavor by name (``single-thread`` or ``locked``)."""
    try:
        return FLAVORS[name]
    except KeyError:
        raise ValueError(
            "unknown atomics flavor %r (choose from %s)"
            % (name, ", ".join(sorted(FLAVORS)))
        ) from None


def _as_number(other: Any) -> Number:
    if isinstance(other, AtomicCounter):
        # get(), not _value: a locked counter must be read under its lock.
        return other.get()
    if isinstance(other, (int, float)):
        return other
    raise TypeError(
        "expected an int, float or AtomicCounter, got %r" % type(other).__name__
    )


__all__ = [
    "AtomicCounter",
    "AtomicsFlavor",
    "FLAVORS",
    "GuardedMap",
    "LOCKED",
    "LockedAtomicCounter",
    "LockedGuardedMap",
    "LockedPerWireCounters",
    "LockedToggleBit",
    "LockedTokenLedger",
    "PerWireCounters",
    "SINGLE_THREAD",
    "ThreadSafeToggle",
    "ToggleBit",
    "TokenLedger",
    "flavor",
]
