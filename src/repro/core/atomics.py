"""Atomic counter facades for the thread-readiness contract (Pass 7).

Every compound read-modify-write that Pass 6 flagged as RSC602 —
``self.count += 1``, ``self.output_counts[w] += 1``, toggled bits,
keyed in-flight ledgers — is a load, an op, and a store that only the
single-threaded event loop keeps atomic. The ROADMAP's threads backend
removes that accident, so shared counter state routes through the small
facades in this module instead: one named call site (``increment``,
``fetch_increment``, ``flip``, ``post``/``settle``) that a backend can
make genuinely atomic.

Two flavors exist:

* the **single-thread** flavor (the classes below) is a plain-Python
  facade with no synchronization — byte-identical arithmetic to the
  raw-int code it replaced, and cheap enough for the simulator's hot
  path;
* the **locked** flavor (``Locked*``) wraps every mutation in a
  ``threading.Lock`` — the conservative implementation a shared-memory
  backend starts from.

Backends select a flavor through :func:`flavor` /
:class:`AtomicsFlavor` rather than naming classes, so swapping the
whole family is one constructor argument.

The facades deliberately implement the arithmetic/comparison protocol
(``int(c)``, ``c == 5``, ``c - other``, iteration for the per-wire
family), so read sites — step-property checks, benchmarks, tests —
keep treating them as the numbers they wrap. Mutation, however, only
happens through the named methods: Pass 7 (RSC704) flags direct pokes
at the internals.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Generic,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
    Type,
    TypeVar,
    Union,
)

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

Number = Union[int, float]


class AtomicCounter:
    """A single integer counter behind named atomic operations.

    ``increment``/``decrement`` return the *new* value;
    ``fetch_increment`` returns the *prior* value (the classic
    fetch-and-add, which is how counting networks hand out values).
    The counter compares and does arithmetic like the int it wraps.
    """

    __slots__ = ("_value",)

    def __init__(self, initial: int = 0) -> None:
        self._value = int(initial)

    # -- named mutations ------------------------------------------------
    def increment(self, amount: int = 1) -> int:
        """Add ``amount``; return the new value."""
        value = self._value + amount
        self._value = value
        return value

    def fetch_increment(self, amount: int = 1) -> int:
        """Add ``amount``; return the value *before* the add."""
        value = self._value
        self._value = value + amount
        return value

    def decrement(self, amount: int = 1) -> int:
        """Subtract ``amount``; return the new value."""
        value = self._value - amount
        self._value = value
        return value

    def get(self) -> int:
        return self._value

    def set(self, value: int) -> None:
        self._value = int(value)

    # -- int facade -----------------------------------------------------
    def __int__(self) -> int:
        return self._value

    def __index__(self) -> int:
        return self._value

    def __bool__(self) -> bool:
        return bool(self._value)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, AtomicCounter):
            return self._value == other._value
        if isinstance(other, (int, float)):
            return self._value == other
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __lt__(self, other: Any) -> bool:
        return self._value < _as_number(other)

    def __le__(self, other: Any) -> bool:
        return self._value <= _as_number(other)

    def __gt__(self, other: Any) -> bool:
        return self._value > _as_number(other)

    def __ge__(self, other: Any) -> bool:
        return self._value >= _as_number(other)

    def __add__(self, other: Any) -> Number:
        return self._value + _as_number(other)

    def __radd__(self, other: Any) -> Number:
        return _as_number(other) + self._value

    def __sub__(self, other: Any) -> Number:
        return self._value - _as_number(other)

    def __rsub__(self, other: Any) -> Number:
        return _as_number(other) - self._value

    def __mul__(self, other: Any) -> Number:
        return self._value * _as_number(other)

    def __rmul__(self, other: Any) -> Number:
        return _as_number(other) * self._value

    def __truediv__(self, other: Any) -> float:
        return self._value / _as_number(other)

    def __rtruediv__(self, other: Any) -> float:
        return _as_number(other) / self._value

    def __floordiv__(self, other: Any) -> Number:
        return self._value // _as_number(other)

    def __mod__(self, other: Any) -> Number:
        return self._value % _as_number(other)

    def __iadd__(self, other: int) -> "AtomicCounter":
        # `c += n` rebinds to the same object after one atomic add, so
        # legacy augmented-assignment call sites stay correct.
        self.increment(int(other))
        return self

    def __isub__(self, other: int) -> "AtomicCounter":
        self.decrement(int(other))
        return self

    def __neg__(self) -> int:
        return -self._value

    def __hash__(self) -> int:
        # Identity hash: the value mutates, so value-hashing would
        # corrupt any container holding the counter across an update.
        return object.__hash__(self)

    def __repr__(self) -> str:
        return "%s(%d)" % (type(self).__name__, self._value)


class LockedAtomicCounter(AtomicCounter):
    """:class:`AtomicCounter` with every mutation under a lock."""

    __slots__ = ("_lock",)

    def __init__(self, initial: int = 0) -> None:
        super().__init__(initial)
        self._lock = threading.Lock()

    def increment(self, amount: int = 1) -> int:
        with self._lock:
            return super().increment(amount)

    def fetch_increment(self, amount: int = 1) -> int:
        with self._lock:
            return super().fetch_increment(amount)

    def decrement(self, amount: int = 1) -> int:
        with self._lock:
            return super().decrement(amount)

    def set(self, value: int) -> None:
        with self._lock:
            super().set(value)


class PerWireCounters:
    """A fixed-width array of counters (one per output wire).

    Iteration, indexing, ``len`` and equality against plain sequences
    all behave like the ``[0] * width`` list this replaces, so step-
    property checks and tests read it unchanged; writes go through
    ``increment``/``fetch_increment``/``decrement``.
    """

    __slots__ = ("_values",)

    def __init__(self, width_or_values: Union[int, Iterable[int]]) -> None:
        if isinstance(width_or_values, int):
            self._values = [0] * width_or_values
        else:
            self._values = [int(v) for v in width_or_values]

    # -- named mutations ------------------------------------------------
    def increment(self, index: int, amount: int = 1) -> int:
        value = self._values[index] + amount
        self._values[index] = value
        return value

    def fetch_increment(self, index: int, amount: int = 1) -> int:
        value = self._values[index]
        self._values[index] = value + amount
        return value

    def decrement(self, index: int, amount: int = 1) -> int:
        value = self._values[index] - amount
        self._values[index] = value
        return value

    def get(self, index: int) -> int:
        return self._values[index]

    def set(self, index: int, value: int) -> None:
        self._values[index] = int(value)

    def reset(self, values: Optional[Iterable[int]] = None) -> None:
        if values is None:
            self._values = [0] * len(self._values)
        else:
            self._values = [int(v) for v in values]

    def snapshot(self) -> List[int]:
        return list(self._values)

    # -- sequence facade ------------------------------------------------
    def __getitem__(self, index: int) -> int:
        return self._values[index]

    def __setitem__(self, index: int, value: int) -> None:
        # Present for drop-in sequence compatibility (tests mutate the
        # raw counts); analyzed code uses the named methods instead.
        self._values[index] = int(value)

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[int]:
        return iter(self._values)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PerWireCounters):
            return self._values == other._values
        if isinstance(other, (list, tuple)):
            return self._values == list(other)
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return object.__hash__(self)

    def __repr__(self) -> str:
        return "%s(%r)" % (type(self).__name__, self._values)


class LockedPerWireCounters(PerWireCounters):
    """:class:`PerWireCounters` with mutations and snapshots locked."""

    __slots__ = ("_lock",)

    def __init__(self, width_or_values: Union[int, Iterable[int]]) -> None:
        super().__init__(width_or_values)
        self._lock = threading.Lock()

    def increment(self, index: int, amount: int = 1) -> int:
        with self._lock:
            return super().increment(index, amount)

    def fetch_increment(self, index: int, amount: int = 1) -> int:
        with self._lock:
            return super().fetch_increment(index, amount)

    def decrement(self, index: int, amount: int = 1) -> int:
        with self._lock:
            return super().decrement(index, amount)

    def set(self, index: int, value: int) -> None:
        with self._lock:
            super().set(index, value)

    def reset(self, values: Optional[Iterable[int]] = None) -> None:
        with self._lock:
            super().reset(values)

    def snapshot(self) -> List[int]:
        with self._lock:
            return super().snapshot()


class ToggleBit:
    """A balancer's toggle: ``flip()`` returns the prior bit and
    toggles. ``wire = toggle.flip()`` is exactly the old
    ``bit = toggles[i] % 2; toggles[i] += 1`` pair."""

    __slots__ = ("_bit",)

    def __init__(self, initial: int = 0) -> None:
        self._bit = int(initial) & 1

    def flip(self) -> int:
        """Toggle; return the bit *before* the flip."""
        bit = self._bit
        self._bit = bit ^ 1
        return bit

    def read(self) -> int:
        return self._bit

    def set(self, bit: int) -> None:
        self._bit = int(bit) & 1

    def __repr__(self) -> str:
        return "%s(%d)" % (type(self).__name__, self._bit)


class LockedToggleBit(ToggleBit):
    """:class:`ToggleBit` with the flip under a lock."""

    __slots__ = ("_lock",)

    def __init__(self, initial: int = 0) -> None:
        super().__init__(initial)
        self._lock = threading.Lock()

    def flip(self) -> int:
        with self._lock:
            return super().flip()

    def set(self, bit: int) -> None:
        with self._lock:
            super().set(bit)


class TokenLedger(Generic[K]):
    """Keyed integer balances (owed tokens, in-flight counts, toggles).

    ``post`` adds to a key's balance, ``settle`` subtracts, and a
    balance that settles to zero is dropped — matching the sparse
    ``dict.get(k, 0) + 1`` / ``del`` idiom it replaces. ``fetch_post``
    is the keyed fetch-and-add.
    """

    __slots__ = ("_entries",)

    def __init__(self, initial: Optional[Mapping[K, int]] = None) -> None:
        self._entries: Dict[K, int] = dict(initial) if initial else {}

    # -- named mutations ------------------------------------------------
    def post(self, key: K, amount: int = 1) -> int:
        """Add ``amount`` to ``key``'s balance; return the new balance."""
        value = self._entries.get(key, 0) + amount
        if value:
            self._entries[key] = value
        else:
            self._entries.pop(key, None)
        return value

    def fetch_post(self, key: K, amount: int = 1) -> int:
        """Add ``amount`` to ``key``'s balance; return the prior one."""
        value = self._entries.get(key, 0)
        new = value + amount
        if new:
            self._entries[key] = new
        else:
            self._entries.pop(key, None)
        return value

    def settle(self, key: K, amount: int = 1) -> int:
        """Subtract ``amount`` from ``key``'s balance; return the new
        balance. A zero balance drops the entry."""
        # Inlined post(key, -amount): settle is on the per-hop hot path.
        entries = self._entries
        value = entries.get(key, 0) - amount
        if value:
            entries[key] = value
        else:
            entries.pop(key, None)
        return value

    def clear_balance(self, key: K) -> int:
        """Drop ``key`` entirely; return the balance it had."""
        return self._entries.pop(key, 0)

    def reset(self) -> None:
        self._entries = {}

    def reader(self) -> Callable[..., Any]:
        """A bound, C-level read callable (``dict.get``) for hot paths.

        Reading one key is atomic under the GIL in every flavor, so the
        reader is safe to hoist and call lock-free; it must never be
        used to mutate. Missing keys read as ``None`` (the raw
        ``dict.get`` default), unlike :meth:`get`'s 0. A hoisted reader
        observes the dict it was created from: :meth:`reset` swaps the
        underlying dict and invalidates previously handed-out readers.
        """
        return self._entries.get

    # -- mapping facade -------------------------------------------------
    def balance(self, key: K) -> int:
        return self._entries.get(key, 0)

    def get(self, key: K, default: int = 0) -> int:
        return self._entries.get(key, default)

    def snapshot(self) -> Dict[K, int]:
        return dict(self._entries)

    def keys(self) -> Iterable[K]:
        return self._entries.keys()

    def items(self) -> Iterable[Tuple[K, int]]:
        return self._entries.items()

    def values(self) -> Iterable[int]:
        return self._entries.values()

    def __getitem__(self, key: K) -> int:
        return self._entries[key]

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[K]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, TokenLedger):
            return self._entries == other._entries
        if isinstance(other, dict):
            return self._entries == other
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return object.__hash__(self)

    def __repr__(self) -> str:
        return "%s(%r)" % (type(self).__name__, self._entries)


class LockedTokenLedger(TokenLedger[K]):
    """:class:`TokenLedger` with mutations and snapshots locked."""

    __slots__ = ("_lock",)

    def __init__(self, initial: Optional[Mapping[K, int]] = None) -> None:
        super().__init__(initial)
        self._lock = threading.Lock()

    def post(self, key: K, amount: int = 1) -> int:
        with self._lock:
            return super().post(key, amount)

    def fetch_post(self, key: K, amount: int = 1) -> int:
        with self._lock:
            return super().fetch_post(key, amount)

    def settle(self, key: K, amount: int = 1) -> int:
        with self._lock:
            return super().settle(key, amount)

    def clear_balance(self, key: K) -> int:
        with self._lock:
            return super().clear_balance(key)

    def reset(self) -> None:
        with self._lock:
            super().reset()

    def snapshot(self) -> Dict[K, int]:
        with self._lock:
            return super().snapshot()


class GuardedMap(Generic[K, V]):
    """A keyed object map whose mutations are two named operations:
    ``put`` (insert/replace) and ``take`` (remove-and-return). Used for
    pending-RPC continuations and the cut network's live component
    states, where Pass 6 flagged raw ``d[k] = v`` / ``d.pop(k)`` pairs.
    """

    __slots__ = ("_entries",)

    def __init__(self, initial: Optional[Mapping[K, V]] = None) -> None:
        self._entries: Dict[K, V] = dict(initial) if initial else {}

    # -- named mutations ------------------------------------------------
    def put(self, key: K, value: V) -> None:
        self._entries[key] = value

    def take(self, key: K, default: Optional[V] = None) -> Optional[V]:
        """Remove ``key``; return its value (or ``default``)."""
        return self._entries.pop(key, default)

    def ensure(self, key: K, factory: Callable[[], V]) -> V:
        """Return ``key``'s value, creating it via ``factory`` first if
        absent (an explicit, lockable ``setdefault``)."""
        try:
            return self._entries[key]
        except KeyError:
            value = factory()
            self._entries[key] = value
            return value

    def reset(self, initial: Optional[Mapping[K, V]] = None) -> None:
        self._entries = dict(initial) if initial else {}

    def reader(self) -> Callable[..., Any]:
        """A bound, C-level read callable (``dict.get``) for hot paths;
        see :meth:`TokenLedger.reader`. Never use it to mutate."""
        return self._entries.get

    # -- mapping facade -------------------------------------------------
    def get(self, key: K, default: Optional[V] = None) -> Optional[V]:
        return self._entries.get(key, default)

    def snapshot(self) -> Dict[K, V]:
        return dict(self._entries)

    def keys(self) -> Iterable[K]:
        return self._entries.keys()

    def values(self) -> Iterable[V]:
        return self._entries.values()

    def items(self) -> Iterable[Tuple[K, V]]:
        return self._entries.items()

    def __getitem__(self, key: K) -> V:
        return self._entries[key]

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    def __iter__(self) -> Iterator[K]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, GuardedMap):
            return self._entries == other._entries
        if isinstance(other, dict):
            return self._entries == other
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        return object.__hash__(self)

    def __repr__(self) -> str:
        return "%s(%r)" % (type(self).__name__, self._entries)


class LockedGuardedMap(GuardedMap[K, V]):
    """:class:`GuardedMap` with mutations and snapshots locked."""

    __slots__ = ("_lock",)

    def __init__(self, initial: Optional[Mapping[K, V]] = None) -> None:
        super().__init__(initial)
        self._lock = threading.Lock()

    def put(self, key: K, value: V) -> None:
        with self._lock:
            super().put(key, value)

    def take(self, key: K, default: Optional[V] = None) -> Optional[V]:
        with self._lock:
            return super().take(key, default)

    def ensure(self, key: K, factory: Callable[[], V]) -> V:
        with self._lock:
            return super().ensure(key, factory)

    def reset(self, initial: Optional[Mapping[K, V]] = None) -> None:
        with self._lock:
            super().reset(initial)

    def snapshot(self) -> Dict[K, V]:
        with self._lock:
            return super().snapshot()


@dataclass(frozen=True)
class AtomicsFlavor:
    """One selectable family of atomic facades.

    A backend picks a flavor once (``flavor("locked")``) and constructs
    every counter through it; the event-loop backend uses the single-
    thread family, a shared-memory backend the locked one.
    """

    name: str
    counter: Type[AtomicCounter]
    per_wire: Type[PerWireCounters]
    toggle: Type[ToggleBit]
    ledger: Type[TokenLedger]
    guarded_map: Type[GuardedMap]


SINGLE_THREAD = AtomicsFlavor(
    name="single-thread",
    counter=AtomicCounter,
    per_wire=PerWireCounters,
    toggle=ToggleBit,
    ledger=TokenLedger,
    guarded_map=GuardedMap,
)

LOCKED = AtomicsFlavor(
    name="locked",
    counter=LockedAtomicCounter,
    per_wire=LockedPerWireCounters,
    toggle=LockedToggleBit,
    ledger=LockedTokenLedger,
    guarded_map=LockedGuardedMap,
)

FLAVORS: Dict[str, AtomicsFlavor] = {
    SINGLE_THREAD.name: SINGLE_THREAD,
    LOCKED.name: LOCKED,
}


def flavor(name: str) -> AtomicsFlavor:
    """Look up a flavor by name (``single-thread`` or ``locked``)."""
    try:
        return FLAVORS[name]
    except KeyError:
        raise ValueError(
            "unknown atomics flavor %r (choose from %s)"
            % (name, ", ".join(sorted(FLAVORS)))
        ) from None


def _as_number(other: Any) -> Number:
    if isinstance(other, AtomicCounter):
        return other._value
    if isinstance(other, (int, float)):
        return other
    raise TypeError(
        "expected an int, float or AtomicCounter, got %r" % type(other).__name__
    )


__all__ = [
    "AtomicCounter",
    "AtomicsFlavor",
    "FLAVORS",
    "GuardedMap",
    "LOCKED",
    "LockedAtomicCounter",
    "LockedGuardedMap",
    "LockedPerWireCounters",
    "LockedToggleBit",
    "LockedTokenLedger",
    "PerWireCounters",
    "SINGLE_THREAD",
    "ToggleBit",
    "TokenLedger",
    "flavor",
]
