"""The periodic counting network [AHS94, DPRS89] — a static baseline.

The periodic network of width ``w`` is ``log w`` identical ``BLOCK[w]``
networks in series. In ``BLOCK[w]`` layer ``s`` (``s = 0 .. log w - 1``)
pairs *cousins*: wires whose indices agree on the top ``s`` bits and
differ on every remaining bit — i.e. the wires split into groups of
size ``w / 2^s`` and each group is reflected (wire ``r`` of a group is
balanced against wire ``g - 1 - r``). Like the bitonic network it has
depth ``log^2 w`` and ``(w/2) log^2 w`` balancers, but its ``log w``
blocks are identical, which made it attractive for pipelining.

Correctness is established empirically in the test suite (exhaustively
for small widths, randomised above), mirroring how the library treats
every static construction.
"""

from __future__ import annotations

from typing import List

from repro.core.network import BalancingNetwork, Layer
from repro.errors import StructureError


def block_layers(width: int) -> List[Layer]:
    """The ``log w`` cousin layers of one ``BLOCK[w]``."""
    if width < 2 or width & (width - 1):
        raise StructureError("width must be a power of two >= 2, got %d" % width)
    layers: List[Layer] = []
    group = width
    while group >= 2:
        layer: Layer = []
        for base in range(0, width, group):
            for offset in range(group // 2):
                layer.append((base + offset, base + group - 1 - offset))
        layers.append(layer)
        group //= 2
    return layers


def periodic_network(width: int) -> BalancingNetwork:
    """The ``PERIODIC[width]`` counting network: ``log w`` blocks."""
    if width < 2 or width & (width - 1):
        raise StructureError("width must be a power of two >= 2, got %d" % width)
    log_w = width.bit_length() - 1
    layers: List[Layer] = []
    for _ in range(log_w):
        layers.extend(block_layers(width))
    return BalancingNetwork(width, layers, list(range(width)))


def periodic_depth(width: int) -> int:
    """Closed-form depth ``log^2 w`` of ``PERIODIC[w]``."""
    log_w = width.bit_length() - 1
    return log_w * log_w
