"""Cuts of the decomposition tree and the networks they induce (Section 2.2).

A *cut* of ``T_w`` (Definition 2.1) is the leaf set of a pruned version
of the tree: an antichain of components such that every root-to-leaf
path of ``T_w`` crosses exactly one member. Any cut implements
``BITONIC[w]`` (Theorem 2.1): :class:`CutNetwork` executes that
implementation with one mod-k counter per member, supports token-level
and batch (quiescent-count) semantics, and applies splits and merges
with the state transfer of :mod:`repro.core.splitmerge`.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.core.atomics import AtomicCounter, GuardedMap, PerWireCounters
from repro.core.components import ComponentState, TokenTrace, balanced_counts
from repro.core.decomposition import ComponentSpec, DecompositionTree
from repro.core.splitmerge import merge_child_states, split_child_states
from repro.core.verification import check_step_property
from repro.core.wiring import MergerConvention, Wiring
from repro.errors import InvalidCutError, StructureError

Path = Tuple[int, ...]


class Cut:
    """An immutable, validated cut of a decomposition tree."""

    def __init__(self, tree: DecompositionTree, paths: Iterable[Path]):
        self.tree = tree
        self.paths: FrozenSet[Path] = frozenset(tuple(p) for p in paths)
        self._validate()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def singleton(cls, tree: DecompositionTree) -> "Cut":
        """The trivial cut: the whole network as one component."""
        return cls(tree, [()])

    @classmethod
    def level(cls, tree: DecompositionTree, level: int) -> "Cut":
        """The uniform cut with every member at ``level``."""
        return cls(tree, [s.path for s in tree.iter_level(level)])

    @classmethod
    def full(cls, tree: DecompositionTree) -> "Cut":
        """The balancer-level cut (every member a width-2 leaf)."""
        return cls.level(tree, tree.max_level)

    @classmethod
    def leaves(cls, tree) -> "Cut":
        """The cut of all tree leaves, by traversal.

        Equivalent to :meth:`full` for the (uniform-depth) bitonic tree,
        but also valid for non-uniform recursive structures from
        :mod:`repro.ext`.
        """
        paths: List[Path] = []
        stack = [tree.root]
        while stack:
            spec = stack.pop()
            if spec.is_leaf:
                paths.append(spec.path)
            else:
                stack.extend(spec.children())
        return cls(tree, paths)

    @classmethod
    def random(cls, tree: DecompositionTree, rng: random.Random, split_probability: float = 0.5) -> "Cut":
        """A random cut: starting from the root, split each component
        independently with ``split_probability`` (leaves never split)."""
        paths: List[Path] = []
        stack = [tree.root]
        while stack:
            spec = stack.pop()
            if not spec.is_leaf and rng.random() < split_probability:
                stack.extend(spec.children())
            else:
                paths.append(spec.path)
        return cls(tree, paths)

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if not self.paths:
            raise InvalidCutError("a cut must have at least one member")
        ordered = sorted(self.paths)
        for first, second in zip(ordered, ordered[1:]):
            if second[: len(first)] == first:
                raise InvalidCutError(
                    "cut members overlap: %r is an ancestor of %r" % (first, second)
                )
        prefixes = set()
        for path in self.paths:
            for end in range(len(path) + 1):
                prefixes.add(path[:end])
        # Every root-to-leaf path must cross a member: walk the pruned
        # tree; any internal non-member node must have all child paths
        # leading to members.
        stack = [self.tree.root]
        while stack:
            spec = stack.pop()
            if spec.path in self.paths:
                # Members must actually exist in the tree with the right
                # shape (ComponentSpec construction already checked this
                # when descending from the root).
                continue
            if spec.path not in prefixes or spec.is_leaf:
                raise InvalidCutError(
                    "tree path through %s reaches no cut member" % (spec,)
                )
            stack.extend(spec.children())

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.paths)

    def __contains__(self, path: Path) -> bool:
        return tuple(path) in self.paths

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Cut)
            and other.tree.width == self.tree.width
            and other.paths == self.paths
        )

    def __hash__(self) -> int:
        return hash((self.tree.width, self.paths))

    def members(self) -> List[ComponentSpec]:
        """All member components, sorted by path (pre-order)."""
        return [self.tree.node(path) for path in sorted(self.paths)]

    def levels(self) -> List[int]:
        """Levels of all members."""
        return [len(path) for path in self.paths]

    def member_covering(self, path: Path) -> Optional[Path]:
        """The member whose subtree contains ``path``, if any."""
        path = tuple(path)
        for end in range(len(path) + 1):
            if path[:end] in self.paths:
                return path[:end]
        return None

    # ------------------------------------------------------------------
    # reconfiguration (pure — returns new cuts)
    # ------------------------------------------------------------------
    def split(self, path: Path) -> "Cut":
        """The cut with member ``path`` replaced by its children."""
        path = tuple(path)
        if path not in self.paths:
            raise InvalidCutError("cannot split %r: not a cut member" % (path,))
        spec = self.tree.node(path)
        if spec.is_leaf:
            raise InvalidCutError("cannot split the balancer %s" % (spec,))
        new_paths = set(self.paths)
        new_paths.remove(path)
        new_paths.update(child.path for child in spec.children())
        return Cut(self.tree, new_paths)

    def merge(self, path: Path) -> "Cut":
        """The cut with the children of ``path`` replaced by ``path``."""
        path = tuple(path)
        spec = self.tree.node(path)
        child_paths = [child.path for child in spec.children()]
        if not all(p in self.paths for p in child_paths):
            raise InvalidCutError(
                "cannot merge %r: not all children are cut members" % (path,)
            )
        new_paths = set(self.paths)
        new_paths.difference_update(child_paths)
        new_paths.add(path)
        return Cut(self.tree, new_paths)


class CutNetwork:
    """An executable ``BITONIC[w]`` built from the members of a cut.

    Supports three interchangeable semantics:

    * token-level: :meth:`feed_token` routes one token hop by hop and
      returns its network output wire (and counter value);
    * batch: :meth:`feed_counts` propagates per-input-wire token counts
      through the members in topological order (quiescent-state
      semantics — provably equal to any token interleaving);
    * reconfiguration: :meth:`split_member` / :meth:`merge_member`
      replace members in place with the Section 2.2 state transfer.

    The network tracks cumulative per-output-wire counts so the step
    property can be checked at any quiescent point.
    """

    def __init__(
        self,
        cut: Cut,
        convention: MergerConvention = MergerConvention.AHS94,
        wiring=None,
    ):
        self.tree = cut.tree
        self.width = cut.tree.width
        self.wiring = wiring if wiring is not None else Wiring(cut.tree, convention)
        # repro: owned-by: shared
        self.states: GuardedMap[Path, ComponentState] = GuardedMap(
            {spec.path: ComponentState(spec) for spec in cut.members()}
        )
        self.output_counts = PerWireCounters(self.width)  # repro: owned-by: shared
        self.tokens_in = AtomicCounter()  # repro: owned-by: shared
        self.tokens_out = AtomicCounter()  # repro: owned-by: shared
        self._edges: Dict[Tuple[Path, int], Tuple] = {}
        self._input_map: Dict[int, Tuple[Path, int]] = {}
        self._topo_cache: Optional[List[Path]] = None

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def cut(self) -> Cut:
        """The current cut (recomputed from live members)."""
        return Cut(self.tree, self.states.keys())

    def members(self) -> List[ComponentState]:
        """Live member states, in pre-order."""
        return [self.states[path] for path in sorted(self.states)]

    def member_paths(self) -> FrozenSet[Path]:
        return frozenset(self.states)

    def _invalidate(self) -> None:
        self._edges.clear()
        self._input_map.clear()
        self._topo_cache = None

    def _edge(self, path: Path, port: int) -> Tuple:
        """Destination of (member, output port); cached."""
        key = (path, port)
        dest = self._edges.get(key)
        if dest is None:
            spec = self.states[path].spec
            resolved = self.wiring.resolve_output(spec, port, self.states.keys())
            if resolved[0] == "member":
                dest = ("member", resolved[1].path, resolved[2])
            else:
                dest = resolved
            self._edges[key] = dest
        return dest

    def _input(self, wire: int) -> Tuple[Path, int]:
        entry = self._input_map.get(wire)
        if entry is None:
            spec, port = self.wiring.resolve_network_input(wire, self.states.keys())
            entry = (spec.path, port)
            self._input_map[wire] = entry
        return entry

    def member_graph(self) -> Dict[Path, set]:
        """Adjacency (member path -> successor member paths)."""
        graph: Dict[Path, set] = {path: set() for path in self.states}
        for path, state in self.states.items():
            for port in range(state.width):
                dest = self._edge(path, port)
                if dest[0] == "member":
                    graph[path].add(dest[1])
        return graph

    def topological_order(self) -> List[Path]:
        """Members in an order compatible with the wire DAG."""
        if self._topo_cache is None:
            graph = self.member_graph()
            indegree = {path: 0 for path in graph}
            for succs in graph.values():
                for succ in succs:
                    indegree[succ] += 1
            ready = sorted(path for path, deg in indegree.items() if deg == 0)
            order: List[Path] = []
            while ready:
                path = ready.pop()
                order.append(path)
                for succ in sorted(graph[path]):
                    indegree[succ] -= 1
                    if indegree[succ] == 0:
                        ready.append(succ)
            if len(order) != len(graph):
                raise StructureError("member graph is not acyclic")
            self._topo_cache = order
        return self._topo_cache

    def input_layer(self) -> List[Path]:
        """Members that receive network input wires."""
        return sorted({self._input(w)[0] for w in range(self.width)})

    def output_layer(self) -> List[Path]:
        """Members whose outputs are network outputs."""
        return sorted(
            path
            for path, state in self.states.items()
            if self.wiring.is_output_boundary(state.spec)
        )

    def output_base(self, path: Path) -> int:
        """First network output wire covered by an output-layer member."""
        return self.wiring.network_output_index(self.states[path].spec, 0)

    # ------------------------------------------------------------------
    # token semantics
    # ------------------------------------------------------------------
    def feed_token(self, wire: int, trace: Optional[TokenTrace] = None) -> Tuple[int, int]:
        """Route one token entering network input ``wire``.

        Returns ``(output_wire, value)`` where ``value`` is the counter
        value handed to the token: the ``n``-th token to leave output
        wire ``j`` receives ``n * width + j`` (zero-based), so across all
        tokens the values are exactly ``0, 1, 2, ...`` in a quiescent
        network.
        """
        if not 0 <= wire < self.width:
            raise StructureError("input wire %d out of range" % wire)
        self.tokens_in.increment()
        path, port = self._input(wire)
        while True:
            state = self.states[path]
            if trace is not None:
                trace.hops.append(state.spec)
            out_port = state.route_token(port)
            dest = self._edge(path, out_port)
            if dest[0] == "out":
                out_wire = dest[1]
                value = self.output_counts.fetch_increment(out_wire) * self.width + out_wire
                self.tokens_out.increment()
                if trace is not None:
                    trace.output_wire = out_wire
                    trace.value = value
                return out_wire, value
            _, path, port = dest

    # ------------------------------------------------------------------
    # batch (quiescent-count) semantics
    # ------------------------------------------------------------------
    def feed_counts(self, input_counts: Sequence[int]) -> List[int]:
        """Inject ``input_counts[i]`` tokens on each input wire ``i``.

        Propagates counts through members in topological order and
        returns the per-output-wire counts of this batch. Cumulative
        counts are tracked in :attr:`output_counts`.
        """
        if len(input_counts) != self.width:
            raise StructureError(
                "expected %d input counts, got %d" % (self.width, len(input_counts))
            )
        pending: Dict[Path, Dict[int, int]] = {path: {} for path in self.states}
        for wire, count in enumerate(input_counts):
            if count < 0:
                raise StructureError("negative token count on wire %d" % wire)
            if count:
                path, port = self._input(wire)
                pending[path][port] = pending[path].get(port, 0) + count
        batch_out = [0] * self.width
        for path in self.topological_order():
            port_counts = pending[path]
            if not port_counts:
                continue
            state = self.states[path]
            for port, emitted in enumerate(state.route_batch(port_counts)):
                if emitted == 0:
                    continue
                dest = self._edge(path, port)
                if dest[0] == "out":
                    batch_out[dest[1]] += emitted
                else:
                    _, succ, in_port = dest
                    pending[succ][in_port] = pending[succ].get(in_port, 0) + emitted
        for wire, count in enumerate(batch_out):
            self.output_counts.increment(wire, count)
        total = sum(input_counts)
        self.tokens_in.increment(total)
        self.tokens_out.increment(total)
        return batch_out

    def verify_step_property(self) -> None:
        """Raise :class:`~repro.errors.StepPropertyViolation` if the
        cumulative quiescent output counts violate the step property."""
        check_step_property(self.output_counts)

    # ------------------------------------------------------------------
    # reconfiguration
    # ------------------------------------------------------------------
    def split_member(self, path: Path) -> List[Path]:
        """Split the member at ``path`` into its children, transferring
        state per Section 2.2. Returns the new member paths."""
        path = tuple(path)
        state = self.states.get(path)
        if state is None:
            raise InvalidCutError("cannot split %r: not a live member" % (path,))
        spec = state.spec
        if spec.is_leaf:
            raise InvalidCutError("cannot split the balancer %s" % (spec,))
        children = split_child_states(self.wiring, spec, state.arrivals)
        self.states.take(path)
        new_paths = []
        for child_state in children:
            self.states.put(child_state.spec.path, child_state)
            new_paths.append(child_state.spec.path)
        self._invalidate()
        return new_paths

    def merge_member(self, path: Path) -> Path:
        """Merge the children of ``path`` back into one component,
        transferring state per Section 2.2. Returns ``path``."""
        path = tuple(path)
        spec = self.tree.node(path)
        child_paths = [child.path for child in spec.children()]
        if not all(p in self.states for p in child_paths):
            raise InvalidCutError(
                "cannot merge %r: not all children are live members" % (path,)
            )
        merged = merge_child_states(
            self.wiring, spec, [self.states[p] for p in child_paths]
        )
        for p in child_paths:
            self.states.take(p)
        self.states.put(path, merged)
        self._invalidate()
        return path

    def merge_member_recursive(self, path: Path) -> Path:
        """Merge ``path``'s whole live subtree back into one component."""
        path = tuple(path)
        spec = self.tree.node(path)
        for child in spec.children():
            if child.path not in self.states:
                covering = self.cut.member_covering(child.path)
                if covering is None:
                    self.merge_member_recursive(child.path)
        return self.merge_member(path)
