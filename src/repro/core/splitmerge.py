"""Split and merge state transfer (Section 2.2, DESIGN.md D2/D3).

Splitting
---------
When a component of width ``k`` splits, the children must be initialised
so the network behaves, from that point on, exactly as if the children
had implemented the component all along. Which child carried each past
token depends only on the *port* the token arrived on (the local wiring
routes parent input ports to fixed child ports, and every child is an
arrival-order-insensitive counter). The component tracks per-port
arrival tallies (:class:`~repro.core.components.ComponentState`), so the
children's exact states are obtained by replaying the tallies through
one level of local wiring in closed form: a child that received ``t``
tokens emitted the balanced distribution of ``t`` over its wires, which
feeds the next child, and so on in child-index order (topological for
every parent kind).

Merging
-------
The merged counter must equal the number of tokens that left the merged
subnetwork — the sum of the totals of the children on the subnetwork's
output boundary (the MIX children for BITONIC/MERGER parents, both
children for a MIX parent). The merged per-port tallies are read back
from the input-boundary children through the inverse of the local input
wiring.

Both directions are exact inverses on quiescent states, and both
conserve tokens.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from repro.core.components import ComponentState, balanced_counts
from repro.core.decomposition import ComponentSpec
from repro.core.wiring import BoundaryRef, PortRef, Wiring
from repro.errors import StructureError

PortCounts = Dict[int, int]


def split_child_states(
    wiring: Wiring, parent: ComponentSpec, arrivals: Mapping[int, int]
) -> List[ComponentState]:
    """Child states for a split, replaying the parent's arrival tallies.

    ``arrivals`` maps the parent's input port -> tokens received there.
    Returns fully initialised :class:`ComponentState` objects (totals and
    per-port tallies) in child-index order.
    """
    if parent.is_leaf:
        raise StructureError("cannot split a width-2 component: %s" % (parent,))
    children = parent.children()
    child_arrivals: List[PortCounts] = [{} for _ in children]
    for port, count in arrivals.items():
        if count < 0:
            raise StructureError("negative arrival tally on port %d" % port)
        if count:
            ref = wiring.parent_input_dest(parent, port)
            child_arrivals[ref.child][ref.port] = (
                child_arrivals[ref.child].get(ref.port, 0) + count
            )
    states: List[ComponentState] = []
    for index, child in enumerate(children):
        total = sum(child_arrivals[index].values())
        states.append(ComponentState(child, total, dict(child_arrivals[index])))
        if total == 0:
            continue
        for port, count in enumerate(balanced_counts(0, total, child.width)):
            if count:
                dest = wiring.child_output_dest(parent, index, port)
                if isinstance(dest, PortRef):
                    child_arrivals[dest.child][dest.port] = (
                        child_arrivals[dest.child].get(dest.port, 0) + count
                    )
    return states


def output_boundary_children(wiring: Wiring, parent: ComponentSpec) -> List[int]:
    """Indices of the children whose outputs leave the parent.

    For BITONIC and MERGER parents these are the two MIX children; for a
    MIX parent, both children.
    """
    indices = []
    for index in range(parent.num_children()):
        dest = wiring.child_output_dest(parent, index, 0)
        if isinstance(dest, BoundaryRef):
            indices.append(index)
    return indices


def merge_child_states(
    wiring: Wiring, parent: ComponentSpec, child_states: List[ComponentState]
) -> ComponentState:
    """The merged component state from its children's states.

    ``child_states`` must be the children in child-index order, each in a
    quiescent state (every token that entered the subnetwork has left).
    """
    if len(child_states) != parent.num_children():
        raise StructureError(
            "expected %d child states for %s, got %d"
            % (parent.num_children(), parent, len(child_states))
        )
    for index, (state, child) in enumerate(zip(child_states, parent.children())):
        if state.spec != child:
            raise StructureError(
                "child state %d is %s, expected %s" % (index, state.spec, child)
            )
    total = sum(
        child_states[i].total for i in output_boundary_children(wiring, parent)
    )
    arrivals: PortCounts = {}
    for port in range(parent.width):
        ref = wiring.parent_input_dest(parent, port)
        count = child_states[ref.child].arrivals.get(ref.port, 0)
        if count:
            arrivals[port] = count
    merged = ComponentState(parent, total, arrivals)
    if merged.arrived_total() != total:
        raise StructureError(
            "merge of %s is not quiescent: %d arrivals vs %d departures"
            % (parent, merged.arrived_total(), total)
        )
    return merged
