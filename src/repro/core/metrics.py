"""Effective width and effective depth of a cut network (Section 1.4).

Definition 1.1: the *effective width* is the number of vertex-disjoint
paths from the input-layer components to the output-layer components.
Definition 1.2: the *effective depth* is the length of the longest path
from an input-layer component to an output-layer component (we count
components on the path, which matches the paper's worked example —
Figure 3's cut has depth 5 — and makes Lemma 2.2's bound
``(k+1)(k+2)/2`` exact for uniform cuts).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.graphs import longest_path_vertices, max_vertex_disjoint_paths
from repro.core.cut import CutNetwork


@dataclass(frozen=True)
class NetworkMetrics:
    """Summary metrics of one cut network."""

    num_components: int
    effective_width: int
    effective_depth: int


def effective_width(network: CutNetwork) -> int:
    """Definition 1.1 applied to the live members of ``network``."""
    graph = network.member_graph()
    return max_vertex_disjoint_paths(graph, network.input_layer(), network.output_layer())


def effective_depth(network: CutNetwork) -> int:
    """Definition 1.2 applied to the live members of ``network``."""
    graph = network.member_graph()
    return longest_path_vertices(graph, network.input_layer(), network.output_layer())


def measure(network: CutNetwork) -> NetworkMetrics:
    """Both metrics plus the component count, sharing one graph build."""
    graph = network.member_graph()
    inputs = network.input_layer()
    outputs = network.output_layer()
    return NetworkMetrics(
        num_components=len(graph),
        effective_width=max_vertex_disjoint_paths(graph, inputs, outputs),
        effective_depth=longest_path_vertices(graph, inputs, outputs),
    )


def lemma22_bound(max_level: int) -> int:
    """Lemma 2.2: depth bound ``(k+1)(k+2)/2`` when all leaves are at
    level at most ``k``."""
    return (max_level + 1) * (max_level + 2) // 2


def lemma23_bound(min_level: int) -> int:
    """Lemma 2.3: width lower bound ``2**k`` when all leaves are at
    level at least ``k``."""
    return 2 ** min_level
