"""The classic balancer-level bitonic counting network [AHS94, Bat68].

An independent construction (it shares no code with the decomposition
tree of Section 2) used to cross-check that the full-leaf cut of ``T_w``
is the same network, and as the *static* baseline of Section 2's
motivating discussion: a ``BITONIC[w]`` deployed one-object-per-balancer
uses ``w log w (log w + 1) / 4`` balancers regardless of system size.

Recursive structure, in the physical-wire representation of
:mod:`repro.core.network`:

* ``MERGER[2k]`` on step sequences ``x`` (top) and ``y`` (bottom):
  sub-merger A merges the even-indexed ``x`` with the odd-indexed ``y``,
  sub-merger B the rest; a final layer of ``k`` balancers joins output
  ``i`` of A (top) with output ``i`` of B (bottom), and the network's
  outputs interleave A and B.
* ``BITONIC[2k]``: two ``BITONIC[k]`` halves feeding a ``MERGER[2k]``.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.network import BalancingNetwork, Layer, parallel_layers
from repro.errors import StructureError


def _merger(x: Sequence[int], y: Sequence[int]) -> Tuple[List[Layer], List[int]]:
    """Layers and output wire order of MERGER over wire lists x, y."""
    if len(x) != len(y) or not x:
        raise StructureError("merger halves must be equal-length and non-empty")
    if len(x) == 1:
        return [[(x[0], y[0])]], [x[0], y[0]]
    layers_a, out_a = _merger(list(x[0::2]), list(y[1::2]))
    layers_b, out_b = _merger(list(x[1::2]), list(y[0::2]))
    layers = parallel_layers(layers_a, layers_b)
    final: Layer = [(out_a[i], out_b[i]) for i in range(len(out_a))]
    layers.append(final)
    interleaved: List[int] = []
    for a, b in zip(out_a, out_b):
        interleaved.extend((a, b))
    return layers, interleaved


def _bitonic(wires: Sequence[int]) -> Tuple[List[Layer], List[int]]:
    """Layers and output wire order of BITONIC over a wire list."""
    if len(wires) == 2:
        return [[(wires[0], wires[1])]], [wires[0], wires[1]]
    half = len(wires) // 2
    layers_top, out_top = _bitonic(wires[:half])
    layers_bottom, out_bottom = _bitonic(wires[half:])
    layers = parallel_layers(layers_top, layers_bottom)
    merger_layers, out = _merger(out_top, out_bottom)
    layers.extend(merger_layers)
    return layers, out


def bitonic_network(width: int) -> BalancingNetwork:
    """The ``BITONIC[width]`` counting network (width a power of two >= 2)."""
    if width < 2 or width & (width - 1):
        raise StructureError("width must be a power of two >= 2, got %d" % width)
    layers, out = _bitonic(list(range(width)))
    return BalancingNetwork(width, layers, out)


def bitonic_depth(width: int) -> int:
    """Closed-form depth ``log w (log w + 1) / 2`` of ``BITONIC[w]``."""
    log_w = width.bit_length() - 1
    return log_w * (log_w + 1) // 2
