"""Balancer-level balancing networks (Section 1.1).

A *balancer* is an asynchronous toggle with two input and two output
wires: the i-th token through it leaves on output ``i mod 2``. A
*balancing network* is an acyclic wiring of balancers. This module
models such networks in the "physical wire" representation: tokens live
on named wires, each layer applies disjoint balancers to wire pairs, and
an output permutation maps wires to network output positions.

The model supports token-level and quiescent batch semantics, and the
comparator-network view used by the counting <-> sorting correspondence
of Aspnes-Herlihy-Shavit (a balancing network counts only if replacing
every balancer by a max-up comparator yields a sorting network).

Topology construction is shared between execution backends through
:func:`compile_topology`: the layered wiring compiles once into a flat
``table[layer][wire] -> (balancer, next_top, next_bottom)`` array
layout (the shape of cybozu's ``CountingNetwork4/8``), which the
simulator-facing :class:`BalancingNetwork` walks with plain-int
toggles and the shared-memory backend (:mod:`repro.threads`) walks
with genuinely atomic ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.atomics import PerWireCounters
from repro.core.components import balanced_counts
from repro.errors import StructureError

Layer = List[Tuple[int, int]]

#: One routing-table entry: ``(balancer_index, top_wire, bottom_wire)``.
#: In a :class:`CompiledTopology`'s per-layer tables the balancer index
#: is *layer-local* (it indexes that layer's toggle array); the
#: flattened tables of :meth:`CompiledTopology.flat_tables` use the
#: *global* balancer index instead (one toggle array for the whole
#: network — the layout a shared-memory backend wants).
RouteEntry = Tuple[int, int, int]

RoutingTable = List[Optional[RouteEntry]]


@dataclass(frozen=True)
class CompiledTopology:
    """One validated, compiled network topology.

    Both execution backends consume this: :class:`BalancingNetwork`
    adopts the per-layer ``routing`` tables (layer-local balancer
    indices, matching its per-layer toggle arrays), while
    :mod:`repro.threads` flattens them to global balancer indices via
    :meth:`flat_tables`. Compiling is the *only* way topology state is
    produced, so the two backends can never disagree about the wiring.
    """

    width: int
    layers: Tuple[Tuple[Tuple[int, int], ...], ...]
    output_order: Tuple[int, ...]
    #: ``routing[layer][wire]`` -> layer-local :data:`RouteEntry` or None.
    routing: Tuple[Tuple[Optional[RouteEntry], ...], ...]
    #: Global balancer index of each layer's first balancer.
    layer_offsets: Tuple[int, ...]
    num_balancers: int

    @property
    def depth(self) -> int:
        return len(self.layers)

    def position(self) -> Dict[int, int]:
        """``wire -> network output position`` mapping."""
        return {wire: j for j, wire in enumerate(self.output_order)}

    def mutable_layers(self) -> List[Layer]:
        """The layers as the nested lists :class:`BalancingNetwork`
        historically exposes (``net.layers``)."""
        return [[(top, bottom) for top, bottom in layer] for layer in self.layers]

    def mutable_routing(self) -> List[RoutingTable]:
        """Per-layer routing tables as mutable lists (layer-local
        balancer indices)."""
        return [list(table) for table in self.routing]

    def flat_tables(self) -> List[RoutingTable]:
        """Routing tables re-indexed with *global* balancer indices.

        ``flat_tables()[layer][wire]`` is ``(balancer, next_top,
        next_bottom)`` where ``balancer`` indexes one flat array of
        ``num_balancers`` toggles — the cybozu ``network_[layer][wire]``
        layout consumed by the threads backend.
        """
        tables: List[RoutingTable] = []
        for offset, table in zip(self.layer_offsets, self.routing):
            flat: RoutingTable = [
                None if entry is None else (offset + entry[0], entry[1], entry[2])
                for entry in table
            ]
            tables.append(flat)
        return tables


def compile_topology(
    width: int, layers: Sequence[Layer], output_order: Sequence[int]
) -> CompiledTopology:
    """Validate a layered wiring and compile its routing tables.

    Raises :class:`StructureError` on an invalid topology *before*
    building anything, so callers can validate-then-swap atomically.
    """
    if sorted(output_order) != list(range(width)):
        raise StructureError("output_order must be a permutation of the wires")
    for layer in layers:
        used = [wire for pair in layer for wire in pair]
        if len(set(used)) != len(used):
            raise StructureError("a wire appears twice in one layer")
        if any(not 0 <= wire < width for wire in used):
            raise StructureError("wire id out of range in layer")
    routing: List[Tuple[Optional[RouteEntry], ...]] = []
    offsets: List[int] = []
    num_balancers = 0
    for layer in layers:
        table: RoutingTable = [None] * width
        for index, (top, bottom) in enumerate(layer):
            entry = (index, top, bottom)
            table[top] = entry
            table[bottom] = entry
        routing.append(tuple(table))
        offsets.append(num_balancers)
        num_balancers += len(layer)
    return CompiledTopology(
        width=width,
        layers=tuple(tuple(pair for pair in layer) for layer in layers),
        output_order=tuple(output_order),
        routing=tuple(routing),
        layer_offsets=tuple(offsets),
        num_balancers=num_balancers,
    )


class BalancingNetwork:
    """An explicit layered balancing network over ``width`` wires.

    ``layers`` is a list of layers; each layer is a list of
    ``(top_wire, bottom_wire)`` pairs with all wires in a layer
    distinct. ``output_order`` lists the wire ids in network-output
    order (``output_order[j]`` is the wire feeding output ``j``).
    """

    def __init__(self, width: int, layers: Sequence[Layer], output_order: Sequence[int]):
        topology = compile_topology(width, layers, output_order)
        self.width = width
        self.output_counts = PerWireCounters(width)  # repro: owned-by: shared
        self._adopt(topology)

    def _adopt(self, topology: CompiledTopology) -> None:
        """Swap in a compiled topology and fresh toggles, together.

        Routing tables, the layer list, the output permutation, and the
        balancer toggles are all derived from one another; replacing a
        subset (rebuilding routing after a split/merge while keeping the
        old toggle arrays, say) silently desynchronizes
        :meth:`feed_token` from :meth:`feed_token_scan`. This is the
        single point where any of them changes.
        """
        self.layers = topology.mutable_layers()
        self.output_order = list(topology.output_order)
        self.topology = topology
        self._position = topology.position()
        # Per-layer routing tables: ``table[wire]`` is the balancer
        # touching ``wire`` in that layer (or None), so routing one
        # token is O(depth) instead of a scan over every balancer.
        self._routing: List[RoutingTable] = topology.mutable_routing()
        # One toggle per balancer: tokens seen so far.
        self._toggles = [[0] * len(layer) for layer in self.layers]

    @property
    def depth(self) -> int:
        """Number of balancer layers."""
        return len(self.layers)

    @property
    def num_balancers(self) -> int:
        return sum(len(layer) for layer in self.layers)

    def reset(self) -> None:
        """Return every toggle and counter to the initial state."""
        self._toggles = [[0] * len(layer) for layer in self.layers]
        self.output_counts.reset()

    def rebuild(self, layers: Sequence[Layer], output_order: Optional[Sequence[int]] = None) -> None:
        """Atomically replace the topology after a split/merge.

        Validates and compiles the new wiring first — an invalid
        topology raises :class:`StructureError` and leaves the network
        untouched — then swaps layers, routing tables, the output
        permutation, *and* fresh zeroed toggles in one step. Rebuilding
        routing while preserving stale toggle state is exactly the
        drift :meth:`feed_token` vs :meth:`feed_token_scan` cannot
        detect, so no piecemeal mutation path exists. The cumulative
        ``output_counts`` are preserved: the network keeps retiring
        into the same ``width`` output positions.
        """
        if output_order is None:
            output_order = list(range(self.width))
        self._adopt(compile_topology(self.width, layers, output_order))

    # ------------------------------------------------------------------
    # batch (quiescent) semantics
    # ------------------------------------------------------------------
    def feed_counts(self, input_counts: Sequence[int]) -> List[int]:
        """Inject ``input_counts[i]`` tokens on input ``i``; returns this
        batch's per-output counts (cumulative in ``output_counts``)."""
        if len(input_counts) != self.width:
            raise StructureError(
                "expected %d input counts, got %d" % (self.width, len(input_counts))
            )
        for wire, count in enumerate(input_counts):
            if count < 0:
                raise StructureError(
                    "negative input count %d on wire %d" % (count, wire)
                )
        on_wire = list(input_counts)
        for layer, toggles in zip(self.layers, self._toggles):
            for index, (top, bottom) in enumerate(layer):
                arriving = on_wire[top] + on_wire[bottom]
                if not arriving:
                    continue  # balancer untouched: state and wires unchanged
                out_top, out_bottom = balanced_counts(toggles[index] % 2, arriving, 2)
                toggles[index] += arriving
                on_wire[top], on_wire[bottom] = out_top, out_bottom
        batch = [on_wire[wire] for wire in self.output_order]
        for j, count in enumerate(batch):
            self.output_counts.increment(j, count)
        return batch

    # ------------------------------------------------------------------
    # token semantics
    # ------------------------------------------------------------------
    def feed_token(self, wire: int) -> int:
        """Route a single token entering on input ``wire``; returns the
        network output position it leaves on.

        Uses the precomputed per-wire routing tables: one O(1) lookup
        per layer rather than a scan over the layer's balancers.
        """
        if not 0 <= wire < self.width:
            raise StructureError("input wire %d out of range" % wire)
        current = wire
        for table, toggles in zip(self._routing, self._toggles):
            entry = table[current]
            if entry is None:
                continue
            index, top, bottom = entry
            current = top if toggles[index] % 2 == 0 else bottom
            toggles[index] += 1
        position = self._position[current]
        self.output_counts.increment(position)
        return position

    def feed_token_scan(self, wire: int) -> int:
        """Reference implementation of :meth:`feed_token` that finds the
        balancer touching the current wire by scanning every balancer of
        every layer (O(width * depth) per token). Kept as the oracle for
        the routing-table property tests and the ``token_routing``
        benchmark's before/after comparison; behaviour is bit-identical
        to :meth:`feed_token`.
        """
        if not 0 <= wire < self.width:
            raise StructureError("input wire %d out of range" % wire)
        current = wire
        for layer, toggles in zip(self.layers, self._toggles):
            for index, (top, bottom) in enumerate(layer):
                if current in (top, bottom):
                    exit_top = toggles[index] % 2 == 0
                    toggles[index] += 1
                    current = top if exit_top else bottom
                    break
        position = self._position[current]
        self.output_counts.increment(position)
        return position

    # ------------------------------------------------------------------
    # comparator view (counting <-> sorting correspondence)
    # ------------------------------------------------------------------
    def sorts_01(self, bits: Sequence[int]) -> bool:
        """Whether the max-up comparator isomorph sorts this 0/1 input
        into non-increasing order (1s at smaller output positions)."""
        if len(bits) != self.width:
            raise StructureError("expected %d bits" % self.width)
        on_wire = list(bits)
        for layer in self.layers:
            for top, bottom in layer:
                if on_wire[bottom] > on_wire[top]:
                    on_wire[top], on_wire[bottom] = on_wire[bottom], on_wire[top]
        out = [on_wire[wire] for wire in self.output_order]
        return all(out[i] >= out[i + 1] for i in range(len(out) - 1))


def parallel_layers(first: List[Layer], second: List[Layer]) -> List[Layer]:
    """Run two disjoint sub-networks side by side, padding the shorter."""
    depth = max(len(first), len(second))
    merged: List[Layer] = []
    for i in range(depth):
        layer: Layer = []
        if i < len(first):
            layer.extend(first[i])
        if i < len(second):
            layer.extend(second[i])
        merged.append(layer)
    return merged
