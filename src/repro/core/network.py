"""Balancer-level balancing networks (Section 1.1).

A *balancer* is an asynchronous toggle with two input and two output
wires: the i-th token through it leaves on output ``i mod 2``. A
*balancing network* is an acyclic wiring of balancers. This module
models such networks in the "physical wire" representation: tokens live
on named wires, each layer applies disjoint balancers to wire pairs, and
an output permutation maps wires to network output positions.

The model supports token-level and quiescent batch semantics, and the
comparator-network view used by the counting <-> sorting correspondence
of Aspnes-Herlihy-Shavit (a balancing network counts only if replacing
every balancer by a max-up comparator yields a sorting network).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.atomics import PerWireCounters
from repro.core.components import balanced_counts
from repro.errors import StructureError

Layer = List[Tuple[int, int]]

#: One routing-table entry: ``(balancer_index, top_wire, bottom_wire)``.
RouteEntry = Tuple[int, int, int]


class BalancingNetwork:
    """An explicit layered balancing network over ``width`` wires.

    ``layers`` is a list of layers; each layer is a list of
    ``(top_wire, bottom_wire)`` pairs with all wires in a layer
    distinct. ``output_order`` lists the wire ids in network-output
    order (``output_order[j]`` is the wire feeding output ``j``).
    """

    def __init__(self, width: int, layers: Sequence[Layer], output_order: Sequence[int]):
        if sorted(output_order) != list(range(width)):
            raise StructureError("output_order must be a permutation of the wires")
        for layer in layers:
            used = [wire for pair in layer for wire in pair]
            if len(set(used)) != len(used):
                raise StructureError("a wire appears twice in one layer")
            if any(not 0 <= wire < width for wire in used):
                raise StructureError("wire id out of range in layer")
        self.width = width
        self.layers = [list(layer) for layer in layers]
        self.output_order = list(output_order)
        self._position = {wire: j for j, wire in enumerate(output_order)}
        # One toggle per balancer: tokens seen so far.
        self._toggles = [[0] * len(layer) for layer in self.layers]
        self.output_counts = PerWireCounters(width)  # repro: owned-by: shared
        # Per-layer routing tables: ``table[wire]`` is the balancer
        # touching ``wire`` in that layer (or None), so routing one
        # token is O(depth) instead of a scan over every balancer.
        self._routing: List[List[Optional[RouteEntry]]] = []
        for layer in self.layers:
            table: List[Optional[RouteEntry]] = [None] * width
            for index, (top, bottom) in enumerate(layer):
                entry = (index, top, bottom)
                table[top] = entry
                table[bottom] = entry
            self._routing.append(table)

    @property
    def depth(self) -> int:
        """Number of balancer layers."""
        return len(self.layers)

    @property
    def num_balancers(self) -> int:
        return sum(len(layer) for layer in self.layers)

    def reset(self) -> None:
        """Return every toggle and counter to the initial state."""
        self._toggles = [[0] * len(layer) for layer in self.layers]
        self.output_counts.reset()

    # ------------------------------------------------------------------
    # batch (quiescent) semantics
    # ------------------------------------------------------------------
    def feed_counts(self, input_counts: Sequence[int]) -> List[int]:
        """Inject ``input_counts[i]`` tokens on input ``i``; returns this
        batch's per-output counts (cumulative in ``output_counts``)."""
        if len(input_counts) != self.width:
            raise StructureError(
                "expected %d input counts, got %d" % (self.width, len(input_counts))
            )
        for wire, count in enumerate(input_counts):
            if count < 0:
                raise StructureError(
                    "negative input count %d on wire %d" % (count, wire)
                )
        on_wire = list(input_counts)
        for layer, toggles in zip(self.layers, self._toggles):
            for index, (top, bottom) in enumerate(layer):
                arriving = on_wire[top] + on_wire[bottom]
                if not arriving:
                    continue  # balancer untouched: state and wires unchanged
                out_top, out_bottom = balanced_counts(toggles[index] % 2, arriving, 2)
                toggles[index] += arriving
                on_wire[top], on_wire[bottom] = out_top, out_bottom
        batch = [on_wire[wire] for wire in self.output_order]
        for j, count in enumerate(batch):
            self.output_counts.increment(j, count)
        return batch

    # ------------------------------------------------------------------
    # token semantics
    # ------------------------------------------------------------------
    def feed_token(self, wire: int) -> int:
        """Route a single token entering on input ``wire``; returns the
        network output position it leaves on.

        Uses the precomputed per-wire routing tables: one O(1) lookup
        per layer rather than a scan over the layer's balancers.
        """
        if not 0 <= wire < self.width:
            raise StructureError("input wire %d out of range" % wire)
        current = wire
        for table, toggles in zip(self._routing, self._toggles):
            entry = table[current]
            if entry is None:
                continue
            index, top, bottom = entry
            current = top if toggles[index] % 2 == 0 else bottom
            toggles[index] += 1
        position = self._position[current]
        self.output_counts.increment(position)
        return position

    def feed_token_scan(self, wire: int) -> int:
        """Reference implementation of :meth:`feed_token` that finds the
        balancer touching the current wire by scanning every balancer of
        every layer (O(width * depth) per token). Kept as the oracle for
        the routing-table property tests and the ``token_routing``
        benchmark's before/after comparison; behaviour is bit-identical
        to :meth:`feed_token`.
        """
        if not 0 <= wire < self.width:
            raise StructureError("input wire %d out of range" % wire)
        current = wire
        for layer, toggles in zip(self.layers, self._toggles):
            for index, (top, bottom) in enumerate(layer):
                if current in (top, bottom):
                    exit_top = toggles[index] % 2 == 0
                    toggles[index] += 1
                    current = top if exit_top else bottom
                    break
        position = self._position[current]
        self.output_counts.increment(position)
        return position

    # ------------------------------------------------------------------
    # comparator view (counting <-> sorting correspondence)
    # ------------------------------------------------------------------
    def sorts_01(self, bits: Sequence[int]) -> bool:
        """Whether the max-up comparator isomorph sorts this 0/1 input
        into non-increasing order (1s at smaller output positions)."""
        if len(bits) != self.width:
            raise StructureError("expected %d bits" % self.width)
        on_wire = list(bits)
        for layer in self.layers:
            for top, bottom in layer:
                if on_wire[bottom] > on_wire[top]:
                    on_wire[top], on_wire[bottom] = on_wire[bottom], on_wire[top]
        out = [on_wire[wire] for wire in self.output_order]
        return all(out[i] >= out[i + 1] for i in range(len(out) - 1))


def parallel_layers(first: List[Layer], second: List[Layer]) -> List[Layer]:
    """Run two disjoint sub-networks side by side, padding the shorter."""
    depth = max(len(first), len(second))
    merged: List[Layer] = []
    for i in range(depth):
        layer: Layer = []
        if i < len(first):
            layer.extend(first[i])
        if i < len(second):
            layer.extend(second[i])
        merged.append(layer)
    return merged
