"""Counting-network core: structures, components, cuts and metrics.

This subpackage is self-contained (no overlay, no simulator): it models
the *logical* adaptive bitonic network of Section 2 of the paper. The
distributed runtime in :mod:`repro.runtime` executes these structures on
a simulated peer-to-peer system.
"""

from repro.core.decomposition import ComponentKind, ComponentSpec, DecompositionTree
from repro.core.wiring import MergerConvention, Wiring
from repro.core.components import ComponentState
from repro.core.cut import Cut, CutNetwork
from repro.core.verification import has_step_property, check_step_property

__all__ = [
    "ComponentKind",
    "ComponentSpec",
    "DecompositionTree",
    "MergerConvention",
    "Wiring",
    "ComponentState",
    "Cut",
    "CutNetwork",
    "has_step_property",
    "check_step_property",
]
