"""A counting tree in the style of diffracting trees [SZ96] — a baseline.

The related-work baseline of Section 1.3: a binary tree of balancers
(toggles). A token entering the root follows toggles downward — each
toggle sends consecutive tokens alternately to its left and right child
— and reaches one of ``2^depth`` leaves. Leaf ``i`` is a local counter
handing out values ``i, i + L, i + 2L, ...`` (``L`` = number of leaves).
The sequence of leaf visit counts always satisfies the step property, so
the values handed out across all leaves form a gap-free prefix of the
naturals once quiescent.

We model the *structure* (tree of toggles + leaf counters); the shared
-memory "prism" optimisation of the original paper is a contention
optimisation with no analogue in our message-passing setting, which is
exactly the contrast the paper draws in Section 1.3.
"""

from __future__ import annotations

from repro.core.atomics import AtomicCounter, PerWireCounters, ToggleBit
from repro.errors import StructureError


class CountingTree:
    """A balancer tree with ``2**depth`` leaf counters."""

    def __init__(self, depth: int):
        if depth < 0:
            raise StructureError("tree depth must be nonnegative, got %d" % depth)
        self.depth = depth
        self.num_leaves = 1 << depth
        # Toggles stored as a heap-shaped array: node 1 is the root,
        # node n has children 2n and 2n+1.
        # repro: owned-by: shared
        self._toggles = [ToggleBit() for _ in range(self.num_leaves)]
        self.leaf_counts = PerWireCounters(self.num_leaves)  # repro: owned-by: shared
        self.tokens = AtomicCounter()  # repro: owned-by: shared

    def next_value(self) -> int:
        """Route one token from the root; return its counter value.

        Consecutive tokens reach the tree's leaf *positions* in
        bit-reversed order (the root toggle flips the most significant
        bit), so leaves are *labelled* by the bit-reversal of their
        position — making consecutive tokens hit labels 0, 1, 2, ... and
        the handed-out values ``label + L * visits`` gap-free.
        """
        node = 1
        for _ in range(self.depth):
            bit = self._toggles[node].flip()
            node = 2 * node + bit
        position = node - self.num_leaves
        label = self._bit_reverse(position)
        value = self.leaf_counts.fetch_increment(label) * self.num_leaves + label
        self.tokens.increment()
        return value

    def _bit_reverse(self, position: int) -> int:
        label = 0
        for _ in range(self.depth):
            label = (label << 1) | (position & 1)
            position >>= 1
        return label

    @property
    def width(self) -> int:
        """The degree of parallelism: the number of leaves."""
        return self.num_leaves


class CentralCounter:
    """The trivial baseline: one counter on one node, zero parallelism."""

    def __init__(self):
        self.tokens = AtomicCounter()  # repro: owned-by: shared

    def next_value(self) -> int:
        return self.tokens.fetch_increment()

    @property
    def width(self) -> int:
        return 1
