"""Wire connections between components (Section 2.1).

Each internal node of the decomposition tree induces a *local wiring*
among its children and its own boundary ports:

* ``parent_input_dest(parent, i)`` — which child input port a token
  entering the parent's input port ``i`` goes to;
* ``child_output_dest(parent, child_index, j)`` — where a token leaving
  child ``child_index`` on its output port ``j`` goes: either another
  child's input port, or the parent's output port ``j'``.

Composing these local maps up and down the tree resolves, for any cut,
the destination of every component output port — see
:func:`Wiring.resolve_output` — without ever materialising the
balancer-level network.

Merger input convention (paper typo)
------------------------------------

The local wiring of the two ``MERGER[k/2]`` children admits two
conventions, selected by :class:`MergerConvention`:

* ``AHS94`` (default, correct): the top merger receives the *even*
  outputs of the top half and the *odd* outputs of the bottom half; the
  bottom merger receives the rest. The full-leaf cut is then exactly the
  classic bitonic counting network of Aspnes-Herlihy-Shavit, and every
  cut counts (Theorem 2.1).
* ``PAPER_PROSE``: the literal wording of Section 2.1 (even outputs of
  *both* halves feed the top merger). This does **not** count — one
  token on input 0 plus one on input 2 of a width-4 network already
  yields output counts ``(1, 0, 1, 0)``. We keep the variant for the
  ablation benchmark that demonstrates the typo.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple, Union

from repro.core.decomposition import ComponentKind, ComponentSpec, DecompositionTree
from repro.errors import StructureError

# Child-index constants, matching ComponentSpec.child_kinds() order.
B_TOP, B_BOT = 0, 1
#: MERGER children of a BITONIC parent.
BM_TOP, BM_BOT = 2, 3
#: MIX children of a BITONIC parent.
BX_TOP, BX_BOT = 4, 5
#: MERGER children of a MERGER parent.
MM_TOP, MM_BOT = 0, 1
#: MIX children of a MERGER parent.
MX_TOP, MX_BOT = 2, 3
#: MIX children of a MIX parent.
XX_TOP, XX_BOT = 0, 1


class MergerConvention(enum.Enum):
    """How BITONIC (or MERGER) halves feed the two sub-mergers."""

    AHS94 = "ahs94"
    PAPER_PROSE = "paper_prose"


@dataclass(frozen=True)
class PortRef:
    """A (child index, port) pair inside one parent's local wiring."""

    child: int
    port: int


@dataclass(frozen=True)
class BoundaryRef:
    """A port on the parent's own boundary (``port`` is the parent port)."""

    port: int


LocalDest = Union[PortRef, BoundaryRef]


def _merger_input(local: int, is_top_half: bool, half: int, convention: MergerConvention) -> PortRef:
    """Route output ``local`` of a half (top/bottom) into a sub-merger.

    ``half`` is the width of each child; the sub-merger's first
    ``half/2`` inputs come from the top half, the last ``half/2`` from
    the bottom half. Which *parity* goes to which sub-merger is the
    convention under test.
    """
    even = local % 2 == 0
    slot = local // 2
    if is_top_half:
        # Top-half outputs occupy the first half/2 sub-merger inputs.
        to_top_merger = even  # both conventions agree on the top half
        return PortRef(child=0 if to_top_merger else 1, port=slot)
    if convention is MergerConvention.AHS94:
        to_top_merger = not even  # odd outputs of the bottom half
    else:
        to_top_merger = even  # the paper's literal (incorrect) wording
    return PortRef(child=0 if to_top_merger else 1, port=half // 2 + slot)


def _merger_to_mix(child: int, port: int, half: int) -> PortRef:
    """Route a sub-merger output into the two MIX children.

    Sub-merger outputs pair up positionally: output ``i`` of the top
    sub-merger and output ``i`` of the bottom sub-merger feed balancer
    ``i`` of the final MIX layer. The top MIX child covers balancers
    ``0..half/2-1`` (parent outputs ``0..half-1``), the bottom MIX child
    the rest.
    """
    from_top_merger = child == 0
    if port < half // 2:
        mix, slot = 0, port
    else:
        mix, slot = 1, port - half // 2
    return PortRef(child=mix, port=2 * slot + (0 if from_top_merger else 1))


class WiringBase:
    """Structure-independent port resolution over a decomposition tree.

    Subclasses provide the three *local* maps — ``parent_input_dest``,
    ``child_output_dest`` and ``parent_input_source`` — that describe
    one tree node's internal wiring; this base class composes them up
    and down the tree to resolve global wires for any cut. The bitonic
    rules live in :class:`Wiring`; the extension framework in
    :mod:`repro.ext` reuses this base for other recursive structures
    (the paper's closing generalisation claim).
    """

    def __init__(self, tree):
        self.tree = tree

    # -- local maps (subclass responsibility) ---------------------------
    def parent_input_dest(self, parent, port: int) -> "PortRef":  # pragma: no cover
        raise NotImplementedError

    def child_output_dest(self, parent, child_index: int, port: int):  # pragma: no cover
        raise NotImplementedError

    def parent_input_source(self, parent, child_index: int, port: int):  # pragma: no cover
        raise NotImplementedError

    # -- global resolution ----------------------------------------------
    def descend_input(self, spec, port: int, member_paths):
        """Descend from (``spec``, input ``port``) to the cut member below.

        ``member_paths`` is a set of component paths (the cut). ``spec``
        itself may be a member, in which case it is returned directly.
        """
        while spec.path not in member_paths:
            if spec.is_leaf:
                raise StructureError(
                    "input resolution fell through a leaf: no cut member on the path of %s"
                    % (spec,)
                )
            ref = self.parent_input_dest(spec, port)
            spec = spec.child(ref.child)
            port = ref.port
        return spec, port

    def resolve_output(self, spec, port: int, member_paths):
        """Destination of (cut member ``spec``, output ``port``).

        Returns ``("member", spec2, port2)`` for an internal wire,
        ``("out", j)`` when the wire is network output ``j``, or
        ``("missing", spec2, port2)`` when the receiving subtree has no
        member in ``member_paths`` — a crash hole awaiting stabilisation;
        callers defer and retry rather than treating that as a
        structural error. Walks up through ancestors while the port maps
        to the parent boundary, then descends into the sibling subtree
        to the receiving member.
        """
        current, p = spec, port
        while True:
            parent = self.tree.parent(current)
            if parent is None:
                return ("out", p)
            dest = self.child_output_dest(parent, current.path[-1], p)
            if isinstance(dest, BoundaryRef):
                current, p = parent, dest.port
                continue
            sibling = parent.child(dest.child)
            try:
                member, in_port = self.descend_input(sibling, dest.port, member_paths)
            except StructureError:
                return ("missing", sibling, dest.port)
            return ("member", member, in_port)

    def resolve_network_input(self, wire: int, member_paths):
        """The cut member (and its port) receiving network input ``wire``."""
        if not 0 <= wire < self.tree.width:
            raise StructureError("network input %d out of range" % wire)
        return self.descend_input(self.tree.root, wire, member_paths)

    def network_output_index(self, spec, port: int) -> int:
        """The network output wire fed by (``spec``, output ``port``).

        Only valid for output-boundary components — those whose output
        ports all map to the network boundary (checked; raises
        :class:`StructureError` otherwise).
        """
        current, p = spec, port
        while True:
            parent = self.tree.parent(current)
            if parent is None:
                return p
            dest = self.child_output_dest(parent, current.path[-1], p)
            if not isinstance(dest, BoundaryRef):
                raise StructureError(
                    "%s output %d is an internal wire, not a network output" % (spec, port)
                )
            current, p = parent, dest.port

    def is_output_boundary(self, spec) -> bool:
        """Whether every output port of ``spec`` is a network output."""
        try:
            self.network_output_index(spec, 0)
        except StructureError:
            return False
        return True


class Wiring(WiringBase):
    """The bitonic wiring rules of Section 2.1.

    All methods are pure functions of the structure; the class only
    carries the tree and the merger convention.
    """

    def __init__(self, tree: DecompositionTree, convention: MergerConvention = MergerConvention.AHS94):
        super().__init__(tree)
        self.convention = convention

    # ------------------------------------------------------------------
    # local wiring, one tree node at a time
    # ------------------------------------------------------------------
    def parent_input_dest(self, parent: ComponentSpec, port: int) -> PortRef:
        """Which child input port receives the parent's input ``port``."""
        k = parent.width
        if not 0 <= port < k:
            raise StructureError("input port %d out of range for %s" % (port, parent))
        half = k // 2
        if parent.kind in (ComponentKind.BITONIC, ComponentKind.MIX):
            # Top half of the inputs to the top child, bottom half to the
            # bottom child (BITONIC children 0/1, MIX children 0/1).
            child = 0 if port < half else 1
            return PortRef(child=child, port=port % half)
        # MERGER[k]: first half is the x-sequence, second half the
        # y-sequence; route by parity into the two sub-mergers.
        if port < half:
            ref = _merger_input(port, True, half, self.convention)
        else:
            ref = _merger_input(port - half, False, half, self.convention)
        return PortRef(child=MM_TOP if ref.child == 0 else MM_BOT, port=ref.port)

    def child_output_dest(self, parent: ComponentSpec, child_index: int, port: int) -> LocalDest:
        """Where child ``child_index``'s output ``port`` leads, locally."""
        k = parent.width
        half = k // 2
        if not 0 <= port < half:
            raise StructureError(
                "output port %d out of range for child %d of %s" % (port, child_index, parent)
            )
        kind = parent.kind
        if kind is ComponentKind.BITONIC:
            if child_index in (B_TOP, B_BOT):
                ref = _merger_input(port, child_index == B_TOP, half, self.convention)
                return PortRef(child=BM_TOP if ref.child == 0 else BM_BOT, port=ref.port)
            if child_index in (BM_TOP, BM_BOT):
                ref = _merger_to_mix(0 if child_index == BM_TOP else 1, port, half)
                return PortRef(child=BX_TOP if ref.child == 0 else BX_BOT, port=ref.port)
            if child_index == BX_TOP:
                return BoundaryRef(port=port)
            if child_index == BX_BOT:
                return BoundaryRef(port=half + port)
        elif kind is ComponentKind.MERGER:
            if child_index in (MM_TOP, MM_BOT):
                ref = _merger_to_mix(0 if child_index == MM_TOP else 1, port, half)
                return PortRef(child=MX_TOP if ref.child == 0 else MX_BOT, port=ref.port)
            if child_index == MX_TOP:
                return BoundaryRef(port=port)
            if child_index == MX_BOT:
                return BoundaryRef(port=half + port)
        elif kind is ComponentKind.MIX:
            if child_index == XX_TOP:
                return BoundaryRef(port=port)
            if child_index == XX_BOT:
                return BoundaryRef(port=half + port)
        raise StructureError("invalid child index %d for %s" % (child_index, parent))

    def parent_input_source(self, parent: ComponentSpec, child_index: int, port: int):
        """Inverse of :meth:`parent_input_dest`: the parent input port
        that feeds (``child_index``, ``port``), or ``None`` if that child
        port is fed by a sibling instead.

        Needed when a token addressed to a merged-away child must be
        re-addressed to the live ancestor: only externally-fed child
        ports (the input boundary) can carry such tokens.
        """
        k = parent.width
        half = k // 2
        if not 0 <= port < half:
            raise StructureError(
                "port %d out of range for child %d of %s" % (port, child_index, parent)
            )
        kind = parent.kind
        if kind in (ComponentKind.BITONIC, ComponentKind.MIX):
            input_children = (B_TOP, B_BOT) if kind is ComponentKind.BITONIC else (XX_TOP, XX_BOT)
            if child_index == input_children[0]:
                return port
            if child_index == input_children[1]:
                return half + port
            return None
        # MERGER parent: invert _merger_input.
        if child_index not in (MM_TOP, MM_BOT):
            return None
        to_top_merger = child_index == MM_TOP
        if port < half // 2:
            # Fed from the x side (the parent's first half). Both
            # conventions send even x to the top merger.
            local = 2 * port + (0 if to_top_merger else 1)
            return local
        slot = port - half // 2
        if self.convention is MergerConvention.AHS94:
            parity = 1 if to_top_merger else 0  # odd y to the top merger
        else:
            parity = 0 if to_top_merger else 1
        return half + 2 * slot + parity

    def is_input_boundary(self, spec: ComponentSpec) -> bool:
        """Whether ``spec`` receives at least one network input wire.

        A component is on the input boundary iff every ancestor edge is
        a BITONIC-top/bottom (or MIX-top/bottom) input passthrough —
        i.e. the path uses only child indices 0 and 1 with BITONIC
        parents all the way down, since only BITONIC children receive
        parent inputs directly in a BITONIC decomposition.
        """
        spec_path = spec.path
        parent = self.tree.root
        for index in spec_path:
            if parent.kind is not ComponentKind.BITONIC or index not in (B_TOP, B_BOT):
                return False
            parent = parent.child(index)
        return True
