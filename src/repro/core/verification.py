"""Step-property and counting checks (Section 1.1).

A balancing network of width ``w`` is a *counting network* if in every
quiescent state the per-output-wire token counts ``x_0 .. x_{w-1}``
satisfy ``0 <= x_i - x_j <= 1`` for all ``i < j``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import StepPropertyViolation


def step_violation(counts: Sequence[int]) -> Optional[Tuple[int, int]]:
    """First pair ``(i, j)`` violating the step property, or ``None``.

    The step property is equivalent to: the sequence is non-increasing
    and ``max - min <= 1``. We scan pairs of adjacent indices plus the
    global spread, reporting the earliest violating pair for diagnostics.
    """
    n = len(counts)
    for i in range(n - 1):
        if counts[i] < counts[i + 1]:
            return (i, i + 1)
    if n and counts[0] - counts[n - 1] > 1:
        # Non-increasing but spread > 1: find the first index where the
        # value drops below counts[0] - 1.
        for j in range(1, n):
            if counts[0] - counts[j] > 1:
                return (0, j)
    return None


def has_step_property(counts: Sequence[int]) -> bool:
    """Whether the output counts satisfy the step property."""
    return step_violation(counts) is None


def check_step_property(counts: Sequence[int]) -> None:
    """Raise :class:`StepPropertyViolation` if the property fails."""
    violation = step_violation(counts)
    if violation is not None:
        raise StepPropertyViolation(counts, *violation)


def step_sequence(total: int, width: int) -> List[int]:
    """The unique step sequence of ``width`` wires summing to ``total``."""
    base, rem = divmod(total, width)
    return [base + (1 if i < rem else 0) for i in range(width)]


def is_sorted_01(bits: Sequence[int]) -> bool:
    """Whether a 0/1 sequence is sorted in non-increasing order (1s first).

    Used by the counting-network <-> sorting-network correspondence test:
    a balancing network counts only if the isomorphic comparator network
    sorts, and by the 0-1 principle a comparator network sorts iff it
    sorts every 0/1 input.
    """
    seen_zero = False
    for bit in bits:
        if bit == 0:
            seen_zero = True
        elif seen_zero:
            return False
    return True


def counting_values_ok(values: Sequence[int]) -> bool:
    """Whether a set of counter values is exactly ``{0, 1, ..., n-1}``.

    The end-to-end correctness condition for a distributed counter built
    on a counting network: after all tokens retire, the multiset of
    returned values is a gap-free, duplicate-free prefix of the naturals.
    """
    return sorted(values) == list(range(len(values)))
