"""The single-counter component implementation of Section 2.2.

Whether a component is a ``BITONIC[k]``, ``MERGER[k]`` or ``MIX[k]``,
its implementation is the same: a single local counter. The next token
entering the component exits on output wire ``x = t mod k`` and the
counter advances.

Beyond the paper's single integer we keep two pieces of bookkeeping
(DESIGN.md D2/D3):

* the exact total ``t`` (Python ints are unbounded; the paper's counter
  is ``x = t mod k``), needed for exact merge initialisation, and
* per-input-port arrival tallies, needed for exact split initialisation:
  when a component splits, which child carried each past token depends
  on the port the token arrived on, so the children's states are the
  deterministic replay of the per-port arrival counts — a quantity the
  component can track locally in O(1) per token.

Neither changes the component's observable routing behaviour, which is
exactly the paper's mod-k counter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.core.atomics import AtomicCounter
from repro.core.decomposition import ComponentSpec
from repro.errors import StructureError


def balanced_counts(start: int, count: int, width: int) -> List[int]:
    """Per-wire token counts after a counter emits ``count`` tokens.

    The counter starts at state ``start`` (the wire the next token exits
    on) and emits tokens on wires ``start, start+1, ... mod width``.
    Wire ``j`` receives ``count // width`` tokens plus one extra if it is
    among the first ``count % width`` wires at or after ``start``.
    """
    if count < 0:
        raise StructureError("token count must be nonnegative, got %d" % count)
    base, rem = divmod(count, width)
    counts = [base] * width
    start %= width
    for offset in range(rem):
        counts[(start + offset) % width] += 1
    return counts


def balanced_count_at(start: int, count: int, width: int, wire: int) -> int:
    """``balanced_counts(start, count, width)[wire]`` without the list."""
    base, rem = divmod(count, width)
    return base + (1 if (wire - start) % width < rem else 0)


def balanced_sum(total: int, width: int, wires) -> int:
    """Sum of the fresh-start balanced distribution over ``wires``.

    Equals the number of the first ``total`` round-robin tokens that land
    on the given wires when the counter starts at 0. ``wires`` is any
    iterable of wire indices.
    """
    base, rem = divmod(total, width)
    return sum(base + (1 if wire < rem else 0) for wire in wires)


class ComponentState:
    """Mutable runtime state of one live component.

    ``total`` is the exact number of tokens that have traversed the
    component; ``arrivals`` maps input port -> tokens received on that
    port (sparse; ports with zero arrivals are absent). The paper's
    counter is ``x = total % spec.width``; the route of the next token
    is a pure function of ``total``.

    The traversal counter lives behind an :class:`AtomicCounter` (the
    thread-readiness contract); ``total`` stays a plain-int property so
    split/merge replay, audits and tests keep exact-integer semantics.
    """

    def __init__(
        self,
        spec: ComponentSpec,
        total: int = 0,
        arrivals: Optional[Dict[int, int]] = None,
    ) -> None:
        self.spec = spec
        # repro: owned-by: shared
        self._traversed = AtomicCounter(int(total))
        self.arrivals: Dict[int, int] = dict(arrivals) if arrivals else {}

    @property
    def total(self) -> int:
        """Exact number of tokens that have traversed the component."""
        return self._traversed.get()

    @total.setter
    def total(self, value: int) -> None:
        self._traversed.set(int(value))

    @property
    def width(self) -> int:
        return self.spec.width

    @property
    def x(self) -> int:
        """The paper's counter: the wire the next token will exit on."""
        return self._traversed.get() % self.width

    def _check_port(self, port: int) -> None:
        if not 0 <= port < self.width:
            raise StructureError(
                "input port %d out of range for %s" % (port, self.spec)
            )

    def route_token(self, in_port: int) -> int:
        """Consume one token arriving on ``in_port``; return its exit wire."""
        width = self.spec.width
        if not 0 <= in_port < width:
            self._check_port(in_port)
        wire = self._traversed.fetch_increment() % width
        arrivals = self.arrivals
        arrivals[in_port] = arrivals.get(in_port, 0) + 1
        return wire

    def route_batch(self, port_counts: Mapping[int, int]) -> List[int]:
        """Consume a batch of tokens; return per-output-wire counts.

        ``port_counts`` maps input port -> token count. Equivalent to the
        corresponding :meth:`route_token` calls in any order (the counter
        is arrival-order insensitive), but O(width + ports).
        """
        count = 0
        for port, n in port_counts.items():
            self._check_port(port)
            if n < 0:
                raise StructureError("negative token count on port %d" % port)
            count += n
        start = self._traversed.fetch_increment(count) % self.width
        counts = balanced_counts(start, count, self.width)
        for port, n in port_counts.items():
            if n:
                self.arrivals[port] = self.arrivals.get(port, 0) + n
        return counts

    def arrived_total(self) -> int:
        """Sum of per-port arrivals (== ``total`` at quiescence)."""
        return sum(self.arrivals.values())

    def copy(self) -> "ComponentState":
        return ComponentState(self.spec, self.total, dict(self.arrivals))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ComponentState):
            return NotImplemented
        return (
            self.spec == other.spec
            and self.total == other.total
            and self.arrivals == other.arrivals
        )

    # Mutable, like the dataclass it replaced: equality without hashing.
    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return "ComponentState(spec=%r, total=%r, arrivals=%r)" % (
            self.spec,
            self.total,
            self.arrivals,
        )


@dataclass
class TokenTrace:
    """A token's journey through a cut network (for tests/examples)."""

    input_wire: int
    hops: List[ComponentSpec] = field(default_factory=list)
    output_wire: int = -1
    value: int = -1
