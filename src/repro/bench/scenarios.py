"""Benchmark scenarios: seeded workloads over the repro hot paths.

Each scenario is a function ``(params, seed) -> ScenarioResult`` taking
its profile parameters. Wall-clock time is measured with
``time.perf_counter`` (this package is outside ``repro.sim`` /
``repro.runtime``, where simulated time is mandatory); all workload
randomness comes from an explicit ``random.Random(seed)`` so the *work*
is identical across machines and only the speed varies.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Dict, List

from repro.bench.result import ScenarioResult
from repro.core.bitonic import bitonic_network
from repro.errors import BenchmarkError
from repro.obs.metrics import Histogram
from repro.runtime.system import AdaptiveCountingSystem
from repro.sim.failures import churn_trace
from repro.sim.latency import DiscreteLatency


def _peak_rss_kb() -> int:
    """This process's peak resident set size, in KiB.

    Uses ``resource`` where available (POSIX; Linux reports KiB). On
    platforms without it, falls back to the ``tracemalloc`` peak if
    tracing happens to be on, else 0 — the metric is informational and
    excluded from fingerprints either way (see WALL_CLOCK_METRIC_KEYS).
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        import tracemalloc

        if tracemalloc.is_tracing():
            return tracemalloc.get_traced_memory()[1] // 1024
        return 0
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _latency_percentiles(latencies: List) -> Dict[str, float]:
    """``latency_p50``/``latency_p99`` of retired-token sim latencies.

    Computed *after* the timed loop through the ``repro.obs`` log-scale
    histogram, so the percentile metrics cost nothing inside the
    measured region and are a pure function of the seed (simulated
    time only — the determinism tests include them).
    """
    histogram = Histogram()
    for value in latencies:
        if value is not None:
            histogram.record(value)
    return {"latency_p50": histogram.p50, "latency_p99": histogram.p99}


def _best_elapsed(run: Callable[[], None], repeats: int) -> float:
    """Smallest wall-clock time of ``repeats`` runs of ``run``."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - start)
    return max(best, 1e-9)


# ----------------------------------------------------------------------
# scenario: single-token routing (table fast path vs linear scan)
# ----------------------------------------------------------------------
def bench_token_routing(params: Dict, seed: int) -> ScenarioResult:
    """Route a seeded token stream through ``BITONIC[w]`` twice: once
    with the precomputed routing tables (:meth:`feed_token`) and once
    with the O(width) per-layer linear scan it replaced
    (:meth:`feed_token_scan`). Reports both rates and the speedup; the
    two paths must agree token-for-token or the scenario aborts.
    """
    width = params["width"]
    tokens = params["tokens"]
    rng = random.Random(seed)
    wires = [rng.randrange(width) for _ in range(tokens)]

    fast_net = bitonic_network(width)
    scan_net = bitonic_network(width)
    fast_outputs = [fast_net.feed_token(wire) for wire in wires]
    scan_outputs = [scan_net.feed_token_scan(wire) for wire in wires]
    if fast_outputs != scan_outputs or fast_net.output_counts != scan_net.output_counts:
        raise BenchmarkError(
            "routing-table fast path diverged from the linear-scan "
            "reference at width %d" % width
        )

    def run_fast() -> None:
        net = bitonic_network(width)
        feed = net.feed_token
        for wire in wires:
            feed(wire)

    def run_scan() -> None:
        net = bitonic_network(width)
        feed = net.feed_token_scan
        for wire in wires:
            feed(wire)

    repeats = params.get("repeats", 3)
    fast_elapsed = _best_elapsed(run_fast, repeats)
    scan_elapsed = _best_elapsed(run_scan, repeats)
    fast_rate = tokens / fast_elapsed
    scan_rate = tokens / scan_elapsed
    return ScenarioResult(
        name="token_routing",
        ops_per_sec=fast_rate,
        events=tokens,
        metrics={
            "width": width,
            "depth": fast_net.depth,
            "scan_ops_per_sec": scan_rate,
            "speedup_vs_scan": fast_rate / scan_rate,
        },
    )


# ----------------------------------------------------------------------
# scenario: quiescent batch propagation
# ----------------------------------------------------------------------
def bench_batch_counts(params: Dict, seed: int) -> ScenarioResult:
    """Push seeded random batches through ``feed_counts``; the rate is
    tokens (not batches) per second, so profiles with heavier batches
    remain comparable."""
    width = params["width"]
    batches = params["batches"]
    max_per_wire = params["max_per_wire"]
    rng = random.Random(seed)
    workload: List[List[int]] = [
        [rng.randrange(max_per_wire + 1) for _ in range(width)]
        for _ in range(batches)
    ]
    total_tokens = sum(sum(batch) for batch in workload)

    def run() -> None:
        net = bitonic_network(width)
        feed = net.feed_counts
        for batch in workload:
            feed(batch)

    elapsed = _best_elapsed(run, params.get("repeats", 3))
    return ScenarioResult(
        name="batch_counts",
        ops_per_sec=total_tokens / elapsed,
        events=batches,
        metrics={
            "width": width,
            "tokens_per_batch": total_tokens / batches,
            "batches_per_sec": batches / elapsed,
        },
    )


# ----------------------------------------------------------------------
# scenario: inject-to-retire under churn
# ----------------------------------------------------------------------
def bench_inject_to_retire(params: Dict, seed: int) -> ScenarioResult:
    """End-to-end token plane: converge a system, then inject a token
    stream while nodes join and crash underneath it. The rate counts
    retired tokens per wall-clock second; simulator events and token
    statistics come along as metrics. Invariants are verified at the
    end — a benchmark run that corrupts the counter reports nothing.
    """
    width = params["width"]
    nodes = params["nodes"]
    tokens = params["tokens"]
    churn_every = params["churn_every"]

    system = AdaptiveCountingSystem(width=width, seed=seed, initial_nodes=nodes)
    system.converge()
    events_before = system.sim.events_run.get()

    start = time.perf_counter()
    churn_flip = True
    for index in range(tokens):
        system.inject_token()
        if churn_every and index and index % churn_every == 0:
            if churn_flip:
                system.add_node()
            else:
                system.crash_node()
            churn_flip = not churn_flip
    system.run_until_quiescent()
    elapsed = max(time.perf_counter() - start, 1e-9)
    system.verify()

    stats = system.token_stats
    events = system.sim.events_run.get() - events_before
    metrics = {
        "width": width,
        "nodes": system.num_nodes,
        "retired": stats.retired.get(),
        "dropped": stats.dropped.get(),
        "mean_hops": stats.mean_hops,
        "mean_sim_latency": stats.mean_latency,
        "crashes": system.stats.crashes,
        "messages_sent": system.bus.messages_sent.get(),
        "events_per_sec": events / elapsed,
        "peak_rss_kb": _peak_rss_kb(),
    }
    metrics.update(_latency_percentiles(stats.latencies))
    return ScenarioResult(
        name="inject_to_retire",
        ops_per_sec=stats.retired.get() / elapsed,
        events=events,
        metrics=metrics,
    )


# ----------------------------------------------------------------------
# scenario: large-scale churn (the ISSUE 4 event-core stress test)
# ----------------------------------------------------------------------
def bench_large_churn(params: Dict, seed: int) -> ScenarioResult:
    """Sustained token load over a big ring under a seeded Poisson
    membership trace. Unlike ``inject_to_retire`` (which churns every N
    tokens), this scenario paces both injections and membership events
    along simulated time: tokens are spread evenly over ``duration``
    and a :func:`churn_trace` of joins and crashes is applied as its
    events fall due, so timers, retries and recovery all overlap the
    token stream the way they would in a long-running deployment.

    The rate is retired tokens per wall-clock second. Every metric
    besides the rate is a pure function of the seed (simulated time,
    event counts, token statistics), which the determinism test relies
    on: two runs with the same seed must produce identical ``events``
    and ``metrics``.
    """
    width = params["width"]
    nodes = params["nodes"]
    tokens = params["tokens"]
    duration = params["duration"]
    join_rate = params["join_rate"]
    crash_rate = params["crash_rate"]
    min_nodes = params.get("min_nodes", 4)

    system = AdaptiveCountingSystem(width=width, seed=seed, initial_nodes=nodes)
    system.converge()
    events_before = system.sim.events_run.get()

    # The membership trace is seeded independently of the system RNG so
    # changing workload parameters never perturbs node placement.
    trace = churn_trace(
        random.Random(seed + 1),
        duration=duration,
        join_rate=join_rate,
        leave_rate=0.0,
        crash_rate=crash_rate,
    )
    step = duration / tokens
    joins = crashes = 0

    start = time.perf_counter()
    trace_index = 0
    for index in range(tokens):
        target_time = (index + 1) * step
        while trace_index < len(trace) and trace[trace_index].time <= target_time:
            event = trace[trace_index]
            trace_index += 1
            if event.action == "join":
                system.add_node()
                joins += 1
            elif system.num_nodes > min_nodes:
                system.crash_node()
                crashes += 1
        system.advance(step)
        system.inject_token()
    system.run_until_quiescent()
    elapsed = max(time.perf_counter() - start, 1e-9)
    system.verify()

    stats = system.token_stats
    events = system.sim.events_run.get() - events_before
    metrics = {
        "width": width,
        "nodes": system.num_nodes,
        "joins": joins,
        "crashes": crashes,
        "retired": stats.retired.get(),
        "dropped": stats.dropped.get(),
        "mean_hops": stats.mean_hops,
        "mean_sim_latency": stats.mean_latency,
        "messages_sent": system.bus.messages_sent.get(),
        "sim_time": system.sim.now,
        "events_per_sec": events / elapsed,
        "peak_rss_kb": _peak_rss_kb(),
    }
    metrics.update(_latency_percentiles(stats.latencies))
    return ScenarioResult(
        name="large_churn",
        ops_per_sec=stats.retired.get() / elapsed,
        events=events,
        metrics=metrics,
    )


# ----------------------------------------------------------------------
# scenario: wheel-heavy scale test (the ISSUE 9 calendar-queue payoff)
# ----------------------------------------------------------------------
def bench_huge_churn(params: Dict, seed: int) -> ScenarioResult:
    """The scale configuration the calendar queue and the object pools
    were built for: thousands of nodes, a token stream injected in
    same-instant bursts, and :class:`DiscreteLatency` (a few distinct
    path classes) so messages pile into shared timestamp buckets instead
    of degenerating to one bucket per event. Same-edge coalescing and
    token recycling are ON — this scenario deliberately exercises the
    opt-in fast paths the fingerprinted scenarios leave off — and a
    seeded Poisson membership trace churns the ring underneath.

    Zero tokens may drop: recovery is enabled, so a drop means the
    token plane lost work, and the scenario aborts rather than report a
    rate for a broken run. ``verify()`` must also pass.

    ``burst`` tokens are injected at each instant; ``tokens`` must be a
    multiple of it. The rate is retired tokens per wall-clock second;
    ``events_per_sec`` and ``peak_rss_kb`` ride along as wall-clock
    metrics (excluded from fingerprints), everything else is a pure
    function of the seed.
    """
    width = params["width"]
    nodes = params["nodes"]
    tokens = params["tokens"]
    duration = params["duration"]
    join_rate = params["join_rate"]
    crash_rate = params["crash_rate"]
    burst = params.get("burst", 1)
    min_nodes = params.get("min_nodes", max(4, nodes // 2))
    latency_values = params.get("latency_values", (0.5, 1.0, 2.0))
    if burst < 1 or tokens % burst:
        raise BenchmarkError(
            "tokens (%d) must be a positive multiple of burst (%d)"
            % (tokens, burst)
        )

    system = AdaptiveCountingSystem(
        width=width,
        seed=seed,
        initial_nodes=nodes,
        latency=DiscreteLatency(list(latency_values), random.Random(seed + 2)),
        coalesce=True,
        recycle_tokens=True,
    )
    system.converge()
    events_before = system.sim.events_run.get()

    trace = churn_trace(
        random.Random(seed + 1),
        duration=duration,
        join_rate=join_rate,
        leave_rate=0.0,
        crash_rate=crash_rate,
    )
    instants = tokens // burst
    step = duration / instants
    joins = crashes = 0

    start = time.perf_counter()
    trace_index = 0
    inject = system.inject_token
    advance = system.advance
    for index in range(instants):
        target_time = (index + 1) * step
        while trace_index < len(trace) and trace[trace_index].time <= target_time:
            event = trace[trace_index]
            trace_index += 1
            if event.action == "join":
                system.add_node()
                joins += 1
            elif system.num_nodes > min_nodes:
                system.crash_node()
                crashes += 1
        advance(step)
        for _ in range(burst):
            inject()
    system.run_until_quiescent()
    elapsed = max(time.perf_counter() - start, 1e-9)
    system.verify()

    stats = system.token_stats
    dropped = stats.dropped.get()
    if dropped:
        raise BenchmarkError(
            "huge_churn dropped %d tokens with recovery enabled — the "
            "profile requires a zero-drop run" % dropped
        )
    events = system.sim.events_run.get() - events_before
    pools = system.publish_pool_stats()
    metrics = {
        "width": width,
        "nodes": system.num_nodes,
        "joins": joins,
        "crashes": crashes,
        "burst": burst,
        "retired": stats.retired.get(),
        "dropped": dropped,
        "mean_hops": stats.mean_hops,
        "mean_sim_latency": stats.mean_latency,
        "messages_sent": system.bus.messages_sent.get(),
        "sim_time": system.sim.now,
        "envelopes_created": pools["envelopes"]["created"],
        "envelopes_reused": pools["envelopes"]["reused"],
        "tokens_created": pools["tokens"]["created"],
        "tokens_reused": pools["tokens"]["reused"],
        "handles_created": pools["handles"]["created"],
        "handles_reused": pools["handles"]["reused"],
        "events_per_sec": events / elapsed,
        "peak_rss_kb": _peak_rss_kb(),
    }
    metrics.update(_latency_percentiles(stats.latencies))
    return ScenarioResult(
        name="huge_churn",
        ops_per_sec=stats.retired.get() / elapsed,
        events=events,
        metrics=metrics,
    )


# ----------------------------------------------------------------------
# scenario: rules convergence while growing
# ----------------------------------------------------------------------
def bench_converge(params: Dict, seed: int) -> ScenarioResult:
    """Grow a one-node system to ``nodes`` and let the Section 3.2
    rules converge; the rate is nodes absorbed per wall-clock second
    (join handoffs + splitting/merging until fixpoint)."""
    width = params["width"]
    nodes = params["nodes"]

    start = time.perf_counter()
    system = AdaptiveCountingSystem(width=width, seed=seed, initial_nodes=1)
    for _ in range(nodes - 1):
        system.add_node()
    rounds = system.converge()
    elapsed = max(time.perf_counter() - start, 1e-9)

    metrics = system.metrics()
    return ScenarioResult(
        name="converge",
        ops_per_sec=nodes / elapsed,
        events=system.sim.events_run.get(),
        metrics={
            "width": width,
            "nodes": nodes,
            "rounds": rounds,
            "splits": system.stats.splits,
            "merges": system.stats.merges,
            "components": metrics.num_components,
            "effective_width": metrics.effective_width,
            "effective_depth": metrics.effective_depth,
        },
    )


SCENARIOS: Dict[str, Callable[[Dict, int], ScenarioResult]] = {
    "token_routing": bench_token_routing,
    "batch_counts": bench_batch_counts,
    "inject_to_retire": bench_inject_to_retire,
    "large_churn": bench_large_churn,
    "huge_churn": bench_huge_churn,
    "converge": bench_converge,
}
