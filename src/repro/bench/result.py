"""The result record one benchmark scenario produces."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

#: Metric keys measured in wall-clock time (or machine-dependent, like
#: peak RSS) — every other metric must be a pure function of the seed.
#: The schedule-perturbation sanitizer and the golden-fingerprint tests
#: exclude exactly these keys when fingerprinting a run, so a scenario
#: adding a wall-clock metric must list it here or its fingerprint
#: becomes machine-dependent.
WALL_CLOCK_METRIC_KEYS = frozenset(
    {
        "scan_ops_per_sec",
        "speedup_vs_scan",
        "batches_per_sec",
        "events_per_sec",
        "peak_rss_kb",
    }
)


@dataclass
class ScenarioResult:
    """One scenario's measurement.

    ``ops_per_sec`` is the scenario's primary rate (what the regression
    gate compares); ``events`` counts the deterministic units of work
    performed (tokens routed, batches fed, simulator events), which is
    seed-stable across machines; ``metrics`` carries scenario-specific
    secondary numbers.
    """

    name: str
    ops_per_sec: float
    events: int
    metrics: Dict[str, float] = field(default_factory=dict)

    def to_json(self) -> Dict:
        return {
            "ops_per_sec": round(self.ops_per_sec, 2),
            "events": self.events,
            "metrics": {
                key: (round(value, 4) if isinstance(value, float) else value)
                for key, value in sorted(self.metrics.items())
            },
        }
