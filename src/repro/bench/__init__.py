"""The performance harness behind ``repro bench``.

Seeded, stdlib-only benchmark scenarios for the hot paths the ROADMAP
cares about: single-token routing through a balancing network, batch
count propagation, inject-to-retire under churn, and rules convergence.
Results are emitted as a ``BENCH_*.json`` document and compared against
a committed baseline by the CI smoke job.
"""

from repro.bench.harness import (
    BENCH_ID,
    PROFILES,
    SCHEMA_VERSION,
    SUPPORTED_BASELINE_SCHEMAS,
    ScenarioResult,
    compare_to_baseline,
    format_results,
    run_bench,
    to_json_payload,
)

__all__ = [
    "BENCH_ID",
    "PROFILES",
    "SCHEMA_VERSION",
    "SUPPORTED_BASELINE_SCHEMAS",
    "ScenarioResult",
    "compare_to_baseline",
    "format_results",
    "run_bench",
    "to_json_payload",
]
