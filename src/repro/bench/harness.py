"""Profiles, the runner, JSON emission, and the regression gate.

The JSON document (``BENCH_*.json``) has a stable shape::

    {
      "schema": 1,
      "bench_id": "BENCH_4",
      "profile": "small",
      "seed": 0,
      "scenarios": {
        "<name>": {
          "ops_per_sec": <float>,   # primary rate, regression-gated
          "events": <int>,          # seed-stable work count
          "metrics": {...}          # scenario-specific secondaries
        }
      }
    }

``compare_to_baseline`` gates each scenario's ``ops_per_sec`` against a
committed baseline document: a scenario regressing by more than the
threshold fails the comparison (new scenarios and baseline-only
scenarios are reported but never fail — baselines are updated by
re-running the bench and committing the fresh document).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.bench.result import ScenarioResult
from repro.bench.scenarios import SCENARIOS
from repro.errors import BenchmarkError

SCHEMA_VERSION = 1

#: This PR series' benchmark trajectory file (ISSUE 4).
BENCH_ID = "BENCH_4"

#: Per-profile scenario parameters. ``token_routing`` keeps width 64 in
#: every profile so the table-vs-scan speedup is always measured at the
#: acceptance width; the other scenarios scale with the profile.
PROFILES: Dict[str, Dict[str, Dict]] = {
    "smoke": {
        "token_routing": {"width": 64, "tokens": 4000, "repeats": 3},
        "batch_counts": {"width": 64, "batches": 200, "max_per_wire": 8, "repeats": 3},
        "inject_to_retire": {"width": 16, "nodes": 8, "tokens": 200, "churn_every": 50},
        "large_churn": {
            "width": 16,
            "nodes": 32,
            "tokens": 1000,
            "duration": 200.0,
            "join_rate": 0.05,
            "crash_rate": 0.05,
        },
        "converge": {"width": 32, "nodes": 12},
    },
    "small": {
        "token_routing": {"width": 64, "tokens": 20000, "repeats": 3},
        "batch_counts": {"width": 64, "batches": 1000, "max_per_wire": 16, "repeats": 3},
        "inject_to_retire": {"width": 16, "nodes": 16, "tokens": 600, "churn_every": 60},
        "large_churn": {
            "width": 32,
            "nodes": 100,
            "tokens": 8000,
            "duration": 800.0,
            "join_rate": 0.05,
            "crash_rate": 0.05,
        },
        "converge": {"width": 64, "nodes": 32},
    },
    "large": {
        "token_routing": {"width": 64, "tokens": 100000, "repeats": 5},
        "batch_counts": {"width": 256, "batches": 2000, "max_per_wire": 32, "repeats": 3},
        "inject_to_retire": {"width": 32, "nodes": 40, "tokens": 2500, "churn_every": 100},
        "large_churn": {
            "width": 32,
            "nodes": 300,
            "tokens": 30000,
            "duration": 3000.0,
            "join_rate": 0.05,
            "crash_rate": 0.05,
        },
        "converge": {"width": 128, "nodes": 80},
    },
}


def run_bench(
    profile: str = "small",
    seed: int = 0,
    only: Optional[Iterable[str]] = None,
) -> List[ScenarioResult]:
    """Run the profile's scenarios (optionally a subset) in order."""
    try:
        profile_params = PROFILES[profile]
    except KeyError:
        raise BenchmarkError(
            "unknown profile %r (choose from %s)"
            % (profile, ", ".join(sorted(PROFILES)))
        ) from None
    selected = list(only) if only is not None else list(profile_params)
    for name in selected:
        if name not in SCENARIOS:
            raise BenchmarkError(
                "unknown scenario %r (choose from %s)"
                % (name, ", ".join(sorted(SCENARIOS)))
            )
        if name not in profile_params:
            raise BenchmarkError(
                "scenario %r has no parameters in profile %r" % (name, profile)
            )
    return [
        SCENARIOS[name](profile_params[name], seed) for name in selected
    ]


def to_json_payload(
    results: List[ScenarioResult], profile: str, seed: int
) -> Dict:
    return {
        "schema": SCHEMA_VERSION,
        "bench_id": BENCH_ID,
        "profile": profile,
        "seed": seed,
        "scenarios": {result.name: result.to_json() for result in results},
    }


def compare_to_baseline(
    results: List[ScenarioResult],
    baseline: Dict,
    max_regression: float = 0.30,
) -> Tuple[bool, List[str]]:
    """Gate ``results`` against a baseline JSON document.

    Returns ``(ok, lines)``: one human-readable line per scenario, and
    ``ok`` is False iff any scenario regressed beyond ``max_regression``
    (fractional, e.g. 0.30 = 30%).
    """
    if not isinstance(baseline, dict) or "scenarios" not in baseline:
        raise BenchmarkError("baseline document has no 'scenarios' section")
    if baseline.get("schema") != SCHEMA_VERSION:
        raise BenchmarkError(
            "baseline schema %r does not match current schema %r"
            % (baseline.get("schema"), SCHEMA_VERSION)
        )
    base_scenarios = baseline["scenarios"]
    ok = True
    lines = []
    seen = set()
    for result in results:
        seen.add(result.name)
        base = base_scenarios.get(result.name)
        if base is None:
            lines.append("%-18s NEW (no baseline entry)" % result.name)
            continue
        base_rate = float(base["ops_per_sec"])
        if base_rate <= 0:
            lines.append("%-18s SKIP (baseline rate is zero)" % result.name)
            continue
        change = result.ops_per_sec / base_rate - 1.0
        regressed = change < -max_regression
        ok = ok and not regressed
        lines.append(
            "%-18s %s %.0f -> %.0f ops/sec (%+.1f%%, threshold -%.0f%%)"
            % (
                result.name,
                "FAIL" if regressed else "ok  ",
                base_rate,
                result.ops_per_sec,
                100.0 * change,
                100.0 * max_regression,
            )
        )
    for name in sorted(set(base_scenarios) - seen):
        lines.append("%-18s MISSING from this run (baseline-only)" % name)
    return ok, lines


def format_results(results: List[ScenarioResult]) -> str:
    """A human-readable table of the run."""
    lines = ["%-18s %14s %10s  %s" % ("scenario", "ops/sec", "events", "metrics")]
    for result in results:
        metrics = ", ".join(
            "%s=%s" % (key, ("%.4g" % value) if isinstance(value, float) else value)
            for key, value in sorted(result.metrics.items())
        )
        lines.append(
            "%-18s %14.0f %10d  %s"
            % (result.name, result.ops_per_sec, result.events, metrics)
        )
    return "\n".join(lines)
