"""Profiles, the runner, JSON emission, and the regression gate.

The JSON document (``BENCH_*.json``) has a stable shape::

    {
      "schema": 2,
      "bench_id": "BENCH_5",
      "profile": "small",
      "seed": 0,
      "scenarios": {
        "<name>": {
          "ops_per_sec": <float>,   # primary rate, regression-gated
          "events": <int>,          # seed-stable work count
          "metrics": {...}          # scenario-specific secondaries
        }
      }
    }

Schema 2 (ISSUE 5) adds ``latency_p50``/``latency_p99`` — simulated
inject-to-retire latency percentiles from the ``repro.obs`` histogram —
to the ``metrics`` of the end-to-end scenarios (``inject_to_retire``,
``large_churn``).

Schema 3 (ISSUE 9) adds ``events_per_sec`` and ``peak_rss_kb`` to the
end-to-end scenarios' metrics (both wall-clock/machine-local, excluded
from fingerprints) and introduces the ``huge_churn`` scenario plus the
``huge``/``huge_smoke`` profiles: thousands of nodes, burst injection,
discrete latency classes, with same-edge coalescing and token recycling
enabled — the configuration the calendar-queue event core is for.

``compare_to_baseline`` gates each scenario's ``ops_per_sec`` against a
committed baseline document: a scenario regressing by more than the
threshold fails the comparison. New scenarios are reported but never
fail; scenarios present in the baseline but missing from the run are
returned separately so the CLI can fail loudly on an accidentally
shrunken run (baselines are updated by re-running the bench and
committing the fresh document).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.bench.result import ScenarioResult
from repro.bench.scenarios import SCENARIOS
from repro.errors import BenchmarkError
from repro.obs import recorder as _obs

SCHEMA_VERSION = 3

#: Baseline schemas the regression gate still understands. Schemas 1
#: (``BENCH_4``) and 2 (``BENCH_5``) differ from 3 only by added
#: metrics and scenarios, which the gate does not read (it compares
#: ``ops_per_sec`` per scenario), so older baselines remain comparable
#: — CI uses ``BENCH_4.json`` for the instrumentation-off overhead gate.
SUPPORTED_BASELINE_SCHEMAS = (1, 2, 3)

#: This PR series' benchmark trajectory file (ISSUE 9).
BENCH_ID = "BENCH_6"

#: Per-profile scenario parameters. ``token_routing`` keeps width 64 in
#: every profile so the table-vs-scan speedup is always measured at the
#: acceptance width; the other scenarios scale with the profile.
PROFILES: Dict[str, Dict[str, Dict]] = {
    "smoke": {
        "token_routing": {"width": 64, "tokens": 4000, "repeats": 3},
        "batch_counts": {"width": 64, "batches": 200, "max_per_wire": 8, "repeats": 3},
        "inject_to_retire": {"width": 16, "nodes": 8, "tokens": 200, "churn_every": 50},
        "large_churn": {
            "width": 16,
            "nodes": 32,
            "tokens": 1000,
            "duration": 200.0,
            "join_rate": 0.05,
            "crash_rate": 0.05,
        },
        "converge": {"width": 32, "nodes": 12},
        # Tiny wheel-heavy entry so the schedule-perturbation sanitizer
        # (which runs the smoke profile) covers the coalescing/recycling
        # fast paths for RSC610/611.
        "huge_churn": {
            "width": 16,
            "nodes": 24,
            "tokens": 400,
            "burst": 4,
            "duration": 100.0,
            "join_rate": 0.05,
            "crash_rate": 0.05,
            "min_nodes": 12,
        },
    },
    "small": {
        "token_routing": {"width": 64, "tokens": 20000, "repeats": 3},
        "batch_counts": {"width": 64, "batches": 1000, "max_per_wire": 16, "repeats": 3},
        "inject_to_retire": {"width": 16, "nodes": 16, "tokens": 600, "churn_every": 60},
        "large_churn": {
            "width": 32,
            "nodes": 100,
            "tokens": 8000,
            "duration": 800.0,
            "join_rate": 0.05,
            "crash_rate": 0.05,
        },
        "converge": {"width": 64, "nodes": 32},
        "huge_churn": {
            "width": 32,
            "nodes": 100,
            "tokens": 8000,
            "burst": 8,
            "duration": 1000.0,
            "join_rate": 0.05,
            "crash_rate": 0.05,
            "min_nodes": 50,
        },
    },
    "large": {
        "token_routing": {"width": 64, "tokens": 100000, "repeats": 5},
        "batch_counts": {"width": 256, "batches": 2000, "max_per_wire": 32, "repeats": 3},
        "inject_to_retire": {"width": 32, "nodes": 40, "tokens": 2500, "churn_every": 100},
        "large_churn": {
            "width": 32,
            "nodes": 300,
            "tokens": 30000,
            "duration": 3000.0,
            "join_rate": 0.05,
            "crash_rate": 0.05,
        },
        "converge": {"width": 128, "nodes": 80},
        "huge_churn": {
            "width": 64,
            "nodes": 500,
            "tokens": 100000,
            "burst": 50,
            "duration": 2000.0,
            "join_rate": 0.01,
            "crash_rate": 0.01,
            "min_nodes": 250,
        },
    },
    # The ISSUE 9 scale target: >= 2k nodes, >= 1M tokens, Poisson
    # churn. One scenario only — this is the configuration the calendar
    # queue, pooling and coalescing exist for, and the committed
    # BENCH_6.json records its metrics.
    "huge": {
        "huge_churn": {
            "width": 64,
            "nodes": 2048,
            "tokens": 1_000_000,
            "burst": 100,
            "duration": 10_000.0,
            "join_rate": 0.002,
            "crash_rate": 0.002,
            "min_nodes": 1024,
        },
    },
    # CI-sized slice of the same shape (the ``huge-smoke`` job): small
    # enough for a wall-clock cap, big enough that the wheel, the pools
    # and coalescing all carry real traffic.
    "huge_smoke": {
        "huge_churn": {
            "width": 64,
            "nodes": 200,
            "tokens": 100_000,
            "burst": 50,
            "duration": 2000.0,
            "join_rate": 0.005,
            "crash_rate": 0.005,
            "min_nodes": 100,
        },
    },
}


def run_bench(
    profile: str = "small",
    seed: int = 0,
    only: Optional[Iterable[str]] = None,
) -> List[ScenarioResult]:
    """Run the profile's scenarios (optionally a subset) in order.

    ``only`` may also name declarative scenarios from the
    ``repro.scenarios`` library: those are self-sizing (the spec
    carries its own budget), so profile parameters are not required and
    ``seed`` overrides the spec's seed. A default (unfiltered) run
    covers exactly the profile's hand-coded scenarios, as before.
    """
    try:
        profile_params = PROFILES[profile]
    except KeyError:
        raise BenchmarkError(
            "unknown profile %r (choose from %s)"
            % (profile, ", ".join(sorted(PROFILES)))
        ) from None
    selected = list(only) if only is not None else list(profile_params)
    runners = {}
    for name in selected:
        if name in SCENARIOS:
            if name not in profile_params:
                raise BenchmarkError(
                    "scenario %r has no parameters in profile %r" % (name, profile)
                )
            continue
        # Not a hand-coded bench scenario: try the declarative library.
        # Imported lazily so the harness stays independent of the DSL
        # package unless a DSL scenario is actually requested.
        from repro.scenarios.registry import bench_callable, get_scenario
        from repro.scenarios.spec import ScenarioSpecError

        try:
            runners[name] = bench_callable(get_scenario(name))
        except ScenarioSpecError:
            from repro.scenarios.registry import library_names

            raise BenchmarkError(
                "unknown scenario %r (bench scenarios: %s; library "
                "scenarios: %s)"
                % (
                    name,
                    ", ".join(sorted(SCENARIOS)),
                    ", ".join(library_names()),
                )
            ) from None
    results = []
    for name in selected:
        # One Chrome-trace "process" (and metadata record) per scenario
        # when a recorder is installed; free otherwise.
        obs = _obs.ACTIVE
        if obs.enabled:
            obs.begin_section(name)
        if name in runners:
            results.append(runners[name]({}, seed))
        else:
            results.append(SCENARIOS[name](profile_params[name], seed))
    return results


def to_json_payload(
    results: List[ScenarioResult], profile: str, seed: int
) -> Dict:
    return {
        "schema": SCHEMA_VERSION,
        "bench_id": BENCH_ID,
        "profile": profile,
        "seed": seed,
        "scenarios": {result.name: result.to_json() for result in results},
    }


def compare_to_baseline(
    results: List[ScenarioResult],
    baseline: Dict,
    max_regression: float = 0.30,
) -> Tuple[bool, List[str], List[str]]:
    """Gate ``results`` against a baseline JSON document.

    Returns ``(ok, lines, missing)``: one human-readable line per
    scenario; ``ok`` is False iff any scenario regressed beyond
    ``max_regression`` (fractional, e.g. 0.30 = 30%); ``missing`` lists
    baseline scenarios absent from this run, sorted — the caller decides
    whether that is fatal (the CLI fails loudly unless the run was
    explicitly scenario-filtered).
    """
    if not isinstance(baseline, dict) or "scenarios" not in baseline:
        raise BenchmarkError("baseline document has no 'scenarios' section")
    if baseline.get("schema") not in SUPPORTED_BASELINE_SCHEMAS:
        raise BenchmarkError(
            "baseline schema %r is not supported (supported: %s)"
            % (
                baseline.get("schema"),
                ", ".join(str(s) for s in SUPPORTED_BASELINE_SCHEMAS),
            )
        )
    base_scenarios = baseline["scenarios"]
    ok = True
    lines = []
    seen = set()
    for result in results:
        seen.add(result.name)
        base = base_scenarios.get(result.name)
        if base is None:
            lines.append("%-18s NEW (no baseline entry)" % result.name)
            continue
        base_rate = float(base["ops_per_sec"])
        if base_rate <= 0:
            lines.append("%-18s SKIP (baseline rate is zero)" % result.name)
            continue
        change = result.ops_per_sec / base_rate - 1.0
        regressed = change < -max_regression
        ok = ok and not regressed
        lines.append(
            "%-18s %s %.0f -> %.0f ops/sec (%+.1f%%, threshold -%.0f%%)"
            % (
                result.name,
                "FAIL" if regressed else "ok  ",
                base_rate,
                result.ops_per_sec,
                100.0 * change,
                100.0 * max_regression,
            )
        )
    missing = sorted(set(base_scenarios) - seen)
    for name in missing:
        lines.append("%-18s MISSING from this run (baseline-only)" % name)
    return ok, lines, missing


def format_results(results: List[ScenarioResult]) -> str:
    """A human-readable table of the run."""
    lines = ["%-18s %14s %10s  %s" % ("scenario", "ops/sec", "events", "metrics")]
    for result in results:
        metrics = ", ".join(
            "%s=%s" % (key, ("%.4g" % value) if isinstance(value, float) else value)
            for key, value in sorted(result.metrics.items())
        )
        lines.append(
            "%-18s %14.0f %10d  %s"
            % (result.name, result.ops_per_sec, result.events, metrics)
        )
    return "\n".join(lines)
