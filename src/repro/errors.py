"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type. Sub-hierarchies mirror the package layout:
structural errors from ``repro.core``, overlay errors from
``repro.chord``, and protocol errors from ``repro.runtime``.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class StructureError(ReproError):
    """An invalid structural request on the decomposition tree.

    Raised, for example, when asking for the children of a leaf
    component, or when a width is not a power of two.
    """


class InvalidCutError(StructureError):
    """A set of components does not form a valid cut of ``T_w``.

    A valid cut's members are the leaves of a pruned version of the
    decomposition tree: every root-to-leaf path of ``T_w`` must cross
    exactly one member (Definition 2.1 of the paper).
    """


class StepPropertyViolation(ReproError):
    """A quiescent output distribution violates the step property.

    Carries the offending output sequence and the first violating index
    pair so failures in large randomised tests are diagnosable.
    """

    def __init__(self, counts, i, j):
        self.counts = list(counts)
        self.i = i
        self.j = j
        super().__init__(
            "step property violated: x[%d]=%d, x[%d]=%d (need 0 <= x_i - x_j <= 1)"
            % (i, self.counts[i], j, self.counts[j])
        )


class RingError(ReproError):
    """An invalid operation on the Chord ring (e.g. empty-ring lookup)."""


class MembershipError(RingError):
    """A join/leave/crash request referenced an unknown or duplicate node."""


class ProtocolError(ReproError):
    """The distributed runtime reached an inconsistent protocol state."""


class ComponentNotFound(ProtocolError):
    """A message was routed to a component that no longer exists anywhere."""


class InvalidTransitionError(InvalidCutError, ProtocolError):
    """A reconfiguration was rejected by static validation.

    Raised by :mod:`repro.runtime.reconfig` before any state is touched
    when :mod:`repro.staticcheck.cuts` finds that a requested split or
    merge would not preserve the token-conservation precondition (the
    target is not a valid cut, the member is not live/splittable, or
    the live subtree does not partition the merge target). Inherits
    from both :class:`InvalidCutError` and :class:`ProtocolError` so
    structural and protocol handlers alike catch it; the full
    diagnostic report is on ``.report``.
    """

    def __init__(self, report):
        self.report = report
        super().__init__(report.format())


class SimulationError(ReproError):
    """The discrete-event simulator was driven incorrectly."""


class BenchmarkError(ReproError):
    """The benchmark harness was misconfigured or failed a self-check.

    Raised by :mod:`repro.bench` for unknown profiles/scenarios, for
    malformed baseline documents, and when a scenario's correctness
    cross-check (e.g. fast-path vs reference routing) fails — a
    benchmark must never report a speed for wrong answers.
    """
