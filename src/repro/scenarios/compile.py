"""Lowering a validated spec onto the runtime/sim setup path.

The compiler turns a :class:`~repro.scenarios.spec.ScenarioSpec` into
the same objects the hand-coded bench scenarios build by hand — an
:class:`~repro.runtime.system.AdaptiveCountingSystem` (two for the
producer-consumer app), a latency model, an arrival schedule, a wire
schedule and a churn trace — then executes the merged timeline and
returns a deterministic run summary.

Determinism contract
--------------------
Everything in :attr:`ScenarioRun.summary` is a pure function of the
spec (including its seed): simulated time only, no wall clock, and
every random draw comes from a seeded stream. Independent streams are
derived from the spec seed with fixed offsets (the ``seed + 1`` idiom
the benches use) so e.g. editing the arrival process never perturbs
node placement:

========  =======================
offset    stream
========  =======================
``+0``    the system itself (node ids, protocol randomness)
``+1``    churn trace
``+2``    latency model
``+3``    arrival process
``+4``    wire selection
``+5``    second system (producer-consumer request network)
========  =======================

The smoke matrix (:mod:`repro.scenarios.smoke`) digests the summary
plus the run's recorded metrics into the committed fingerprint.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.apps.counter import DistributedCounter
from repro.apps.load_balancer import LoadBalancer
from repro.apps.producer_consumer import ProducerConsumerMatcher
from repro.core.wiring import MergerConvention
from repro.obs.metrics import Histogram
from repro.runtime.system import AdaptiveCountingSystem
from repro.scenarios.spec import ArrivalSpec, ChurnSpec, LatencySpec, ScenarioSpec
from repro.sim.arrivals import (
    burst_arrivals,
    onoff_arrivals,
    poisson_arrivals,
    uniform_arrivals,
    wire_schedule,
)
from repro.sim.failures import (
    ChurnEvent,
    churn_trace,
    correlated_crash_trace,
    oscillation_trace,
)
from repro.sim.latency import (
    ConstantLatency,
    DiscreteLatency,
    ExponentialLatency,
    LatencyModel,
    UniformLatency,
)

__all__ = [
    "ScenarioRun",
    "build_latency",
    "build_arrivals",
    "build_churn",
    "build_system",
    "run_scenario",
]

_CONVENTIONS = {
    "ahs94": MergerConvention.AHS94,
    "paper-prose": MergerConvention.PAPER_PROSE,
}


def build_latency(spec: LatencySpec, rng: random.Random) -> LatencyModel:
    """The spec's latency model, drawing from the given stream."""
    if spec.kind == "constant":
        return ConstantLatency(spec.value)
    if spec.kind == "uniform":
        return UniformLatency(spec.low, spec.high, rng)
    if spec.kind == "discrete":
        return DiscreteLatency(
            list(spec.values),
            rng,
            weights=list(spec.weights) if spec.weights is not None else None,
        )
    return ExponentialLatency(spec.mean, rng)


def build_arrivals(spec: ArrivalSpec, rng: random.Random) -> List[float]:
    """The spec's injection instants, time-ordered."""
    if spec.kind == "uniform":
        return uniform_arrivals(spec.tokens, spec.duration)
    if spec.kind == "poisson":
        return poisson_arrivals(rng, spec.tokens, spec.rate)
    if spec.kind == "burst":
        return burst_arrivals(spec.tokens, spec.bursts, spec.spacing)
    return onoff_arrivals(spec.phases, cycles=spec.cycles, max_tokens=spec.tokens)


def build_churn(
    spec: ChurnSpec, rng: random.Random, initial_nodes: int
) -> List[ChurnEvent]:
    """The spec's membership trace, time-ordered.

    ``partition`` is lowered to a correlated batch crash of
    ``fraction * initial_nodes`` nodes at ``at`` followed by an equal
    batch of joins at ``at + heal_after`` — there is no bus-level
    partition primitive, and from the token plane's point of view a
    partitioned half *is* a correlated failure until it heals.
    """
    if spec.kind == "none":
        return []
    if spec.kind == "poisson":
        return churn_trace(
            rng,
            duration=spec.duration,
            join_rate=spec.join_rate,
            leave_rate=spec.leave_rate,
            crash_rate=spec.crash_rate,
        )
    if spec.kind == "correlated":
        return correlated_crash_trace(
            rng, duration=spec.duration, rate=spec.rate, batch=spec.batch
        )
    if spec.kind == "partition":
        lost = max(1, int(spec.fraction * initial_nodes))
        events = [ChurnEvent(spec.at, "crash") for _ in range(lost)]
        heal_at = spec.at + spec.heal_after
        events.extend(ChurnEvent(heal_at, "join") for _ in range(lost))
        return events
    return oscillation_trace(spec.period, spec.count, first=spec.first)


def build_system(
    spec: ScenarioSpec, seed_offset: int = 0
) -> AdaptiveCountingSystem:
    """One converged system per the spec's network/system tables."""
    system = AdaptiveCountingSystem(
        width=spec.width,
        seed=spec.seed + seed_offset,
        initial_nodes=spec.initial_nodes,
        latency=build_latency(spec.latency, random.Random(spec.seed + 2)),
        convention=_CONVENTIONS[spec.convention],
        step_multiplier=spec.step_multiplier,
        hysteresis=spec.hysteresis,
        coalesce=spec.coalesce,
        recycle_tokens=spec.recycle_tokens,
    )
    system.converge()
    return system


@dataclass
class ScenarioRun:
    """One executed scenario: the deterministic summary plus handles
    for anyone who wants to poke at the final state."""

    spec: ScenarioSpec
    summary: Dict[str, Any]
    system: AdaptiveCountingSystem
    request_system: Optional[AdaptiveCountingSystem] = None


def _apply_churn(
    system: AdaptiveCountingSystem, action: str, min_nodes: int
) -> bool:
    """One membership event, honouring the node floor. Returns whether
    the event was applied (floored leaves/crashes are skipped)."""
    if action == "join":
        system.add_node()
        return True
    if system.num_nodes <= min_nodes:
        return False
    if action == "leave":
        system.remove_node()
    else:
        system.crash_node()
    return True


def _latency_percentiles(latencies: List) -> Dict[str, float]:
    histogram = Histogram()
    for value in latencies:
        if value is not None:
            histogram.record(value)
    return {"p50": histogram.p50, "p90": histogram.p90, "p99": histogram.p99}


def run_scenario(spec: ScenarioSpec) -> ScenarioRun:
    """Execute one scenario end to end and verify its invariants.

    Raises whatever the run raises: :class:`~repro.errors.ProtocolError`
    (and friends) from ``verify()`` is a *divergence*; anything else is
    a crash. The smoke runner tells the two apart.
    """
    system = build_system(spec)
    request_system: Optional[AdaptiveCountingSystem] = None
    systems = [system]
    if spec.app.kind == "producer_consumer":
        request_system = build_system(spec, seed_offset=5)
        systems.append(request_system)

    counter: Optional[DistributedCounter] = None
    balancer: Optional[LoadBalancer] = None
    matcher: Optional[ProducerConsumerMatcher] = None
    if spec.app.kind in ("counter", "mixed"):
        counter = DistributedCounter(system)
    if spec.app.kind in ("load_balancer", "mixed"):
        balancer = LoadBalancer(system, spec.app.servers or None)
    if request_system is not None:
        matcher = ProducerConsumerMatcher(system, request_system)

    arrivals = build_arrivals(spec.arrivals, random.Random(spec.seed + 3))
    wires = wire_schedule(
        random.Random(spec.seed + 4),
        spec.arrivals.wires.kind,
        spec.width,
        len(arrivals),
        hot_wires=spec.arrivals.wires.hot_wires,
        hot_fraction=spec.arrivals.wires.hot_fraction,
    )
    churn = build_churn(
        spec.churn, random.Random(spec.seed + 1), spec.initial_nodes
    )

    # One merged timeline: membership events sort before injections at
    # the same instant (a partition at t hits the tokens arriving at t).
    timeline: List[Tuple[float, int, int, Any]] = []
    timeline.extend(
        (event.time, 0, index, event.action)
        for index, event in enumerate(churn)
    )
    timeline.extend(
        (at, 1, index, wires[index]) for index, at in enumerate(arrivals)
    )
    timeline.sort(key=lambda entry: (entry[0], entry[1], entry[2]))

    events_before = [s.sim.events_run.get() for s in systems]
    applied_churn = {"join": 0, "leave": 0, "crash": 0, "skipped": 0}
    injected = 0
    now = 0.0
    for at, kind, index, payload in timeline:
        delta = at - now
        if delta > 0:
            for s in systems:
                s.advance(delta)
            now = at
        if kind == 0:
            targets = systems if request_system is not None else [system]
            for s in targets:
                if _apply_churn(s, payload, spec.min_nodes):
                    applied_churn[payload] += 1
                else:
                    applied_churn["skipped"] += 1
        else:
            wire = payload
            if matcher is not None:
                if index % 2 == 0:
                    matcher.offer("producer-%d" % index, wire)
                else:
                    matcher.request("consumer-%d" % index, wire)
            elif spec.app.kind == "mixed":
                assert counter is not None and balancer is not None
                if index % 2 == 0:
                    counter.request(wire)
                else:
                    balancer.submit("job-%d" % index, wire)
            elif counter is not None:
                counter.request(wire)
            elif balancer is not None:
                balancer.submit("job-%d" % index, wire)
            else:
                system.inject_token(wire)
            injected += 1

    for s in systems:
        s.run_until_quiescent()
    for s in systems:
        s.verify()

    summary: Dict[str, Any] = {
        "scenario": spec.name,
        "seed": spec.seed,
        "width": spec.width,
        "convention": spec.convention,
        "injected": injected,
        "churn": dict(applied_churn),
        "systems": [],
    }
    for position, s in enumerate(systems):
        stats = s.token_stats
        issued = stats.issued.get()
        retired = stats.retired.get()
        dropped = stats.dropped.get()
        entry: Dict[str, Any] = {
            "tokens": {
                "issued": issued,
                "retired": retired,
                "dropped": dropped,
                "unaccounted": issued - retired - dropped,
            },
            "nodes": s.num_nodes,
            "sim_time": round(s.sim.now, 9),
            "events_run": s.sim.events_run.get() - events_before[position],
        }
        if "latency" in spec.record:
            entry["latency"] = _latency_percentiles(stats.latencies)
            entry["mean_hops"] = round(stats.mean_hops, 9)
        if "messages" in spec.record:
            entry["messages_sent"] = s.bus.messages_sent.get()
        if "adaptation" in spec.record:
            metrics = s.metrics()
            entry["adaptation"] = {
                "splits": s.stats.splits,
                "merges": s.stats.merges,
                "crashes": s.stats.crashes,
                "components": metrics.num_components,
                "effective_width": metrics.effective_width,
                "effective_depth": metrics.effective_depth,
            }
        if "pools" in spec.record:
            entry["pools"] = s.publish_pool_stats()
        summary["systems"].append(entry)

    if "app" in spec.record:
        app: Dict[str, Any] = {"kind": spec.app.kind}
        if counter is not None:
            values = counter.settle()
            app["counter"] = {
                "values": len(values),
                "gap_free": values == list(range(len(values))),
                "outstanding": counter.outstanding,
            }
        if balancer is not None:
            app["load_balancer"] = {
                "server_loads": balancer.settle(),
                "imbalance": balancer.imbalance(),
            }
        if matcher is not None:
            matches, unmatched_supply, unmatched_requests = matcher.settle()
            app["producer_consumer"] = {
                "matches": matches,
                "unmatched_supply": unmatched_supply,
                "unmatched_requests": unmatched_requests,
            }
        summary["app"] = app

    return ScenarioRun(
        spec=spec,
        summary=summary,
        system=system,
        request_system=request_system,
    )
