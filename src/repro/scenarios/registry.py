"""The committed scenario library, and the bench bridge.

The library lives in ``src/repro/scenarios/library/`` as one spec file
per scenario (JSON — the committed set must validate on every supported
interpreter, and TOML parsing needs Python 3.11+). Discovery is by
file stem, sorted, so the registry order is stable across machines.

Two consumers:

* the smoke matrix (:mod:`repro.scenarios.smoke`) runs every library
  scenario and pins its fingerprint;
* ``repro bench --scenario <name>`` accepts DSL scenarios alongside the
  hand-coded bench ones via :func:`bench_callable`, which wraps a spec
  as the ``(params, seed) -> ScenarioResult`` callable the harness
  expects. DSL scenarios are self-sizing (the spec carries its own
  budget), so profile parameters are ignored and the bench ``--seed``
  overrides the spec's seed.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Dict, List, Optional

from repro.bench.result import ScenarioResult
from repro.scenarios.spec import (
    SPEC_SUFFIXES,
    ScenarioSpec,
    ScenarioSpecError,
    load_spec,
    spec_name_for_path,
)

__all__ = [
    "LIBRARY_DIR",
    "library_paths",
    "library_names",
    "load_library",
    "get_scenario",
    "bench_callable",
]

#: The committed scenario library shipped inside the package.
LIBRARY_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "library")

_cache: Dict[str, Dict[str, ScenarioSpec]] = {}


def library_paths(directory: Optional[str] = None) -> List[str]:
    """Spec file paths in the library, sorted by scenario name."""
    directory = directory or LIBRARY_DIR
    if not os.path.isdir(directory):
        return []
    return sorted(
        os.path.join(directory, entry)
        for entry in os.listdir(directory)
        if os.path.splitext(entry)[1].lower() in SPEC_SUFFIXES
    )


def load_library(directory: Optional[str] = None) -> Dict[str, ScenarioSpec]:
    """Every library scenario, validated, keyed and sorted by name.

    Raises :class:`ScenarioSpecError` on the first invalid file — a
    broken committed spec should fail fast everywhere, not silently
    vanish from the matrix (the RSC308 lint catches it even earlier).
    """
    key = directory or LIBRARY_DIR
    cached = _cache.get(key)
    if cached is None:
        cached = {}
        for path in library_paths(directory):
            name = spec_name_for_path(path)
            cached[name] = load_spec(path)
        _cache[key] = cached
    return dict(cached)


def library_names(directory: Optional[str] = None) -> List[str]:
    """Sorted scenario names in the library."""
    return sorted(load_library(directory))


def get_scenario(name: str, directory: Optional[str] = None) -> ScenarioSpec:
    """One library scenario by name."""
    library = load_library(directory)
    try:
        return library[name]
    except KeyError:
        raise ScenarioSpecError(
            name,
            [
                "name: not in the scenario library (valid: %s)"
                % ", ".join(sorted(library))
            ],
        ) from None


def bench_callable(
    spec: ScenarioSpec,
) -> Callable[[Dict, int], ScenarioResult]:
    """Wrap a spec as a bench-harness scenario callable.

    The returned callable ignores profile parameters (the spec is
    self-sizing) and runs under the harness seed. ``ops_per_sec`` is
    retired tokens per wall-clock second; every metric except
    ``events_per_sec`` is a pure function of the seed, matching the
    hand-coded scenarios' contract.
    """

    def run(params: Dict, seed: int) -> ScenarioResult:
        # Imported here, not at module top: the registry must stay
        # cheap to import for lint/CLI listing paths that never run.
        from repro.scenarios.compile import run_scenario

        start = time.perf_counter()
        outcome = run_scenario(spec.with_seed(seed))
        elapsed = max(time.perf_counter() - start, 1e-9)

        stats = outcome.system.token_stats
        retired = stats.retired.get()
        events = sum(
            entry["events_run"] for entry in outcome.summary["systems"]
        )
        metrics: Dict[str, float] = {
            "width": spec.width,
            "injected": outcome.summary["injected"],
            "issued": stats.issued.get(),
            "retired": retired,
            "dropped": stats.dropped.get(),
            "nodes": outcome.system.num_nodes,
            "sim_time": outcome.system.sim.now,
            "events_per_sec": events / elapsed,
        }
        return ScenarioResult(
            name=spec.name,
            ops_per_sec=retired / elapsed,
            events=events,
            metrics=metrics,
        )

    return run
