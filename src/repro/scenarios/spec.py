"""The declarative scenario spec: schema, validation, and loading.

A *scenario spec* is a TOML or JSON document describing one workload
over the adaptive counting network — no Python required. The spec
names a topology, a latency model, an arrival process, a churn trace,
an application, and the statistics to record; the compiler
(:mod:`repro.scenarios.compile`) lowers a validated spec onto the same
``repro.runtime`` / ``repro.sim`` setup path the hand-coded bench
scenarios use.

This module is deliberately import-light (stdlib + ``repro.errors``
only): the RSC308 lint validates every committed spec file without
pulling in the runtime, and schema errors never hide behind an import
failure.

Grammar
-------
Top-level tables (all optional except ``arrivals``; defaults in
brackets)::

    name         = "flash_crowd"        # must match the file stem
    description  = "..."                # free text

    [network]
    width        = 16                   # power of two [16]
    convention   = "ahs94"              # "ahs94" | "paper-prose" [ahs94]

    [system]
    seed            = 0                 # workload seed [0]
    initial_nodes   = 8                 # [8]
    min_nodes       = 2                 # churn floor [2]
    step_multiplier = 4                 # rules threshold [4]
    hysteresis      = 0                 # [0]
    coalesce        = false             # same-edge coalescing [false]
    recycle_tokens  = false             # token freelist [false]

    [latency]
    kind = "constant"                   # constant|uniform|discrete|exponential
    value = 1.0                         # constant
    # low/high (uniform), values/weights (discrete), mean (exponential)

    [arrivals]                          # REQUIRED
    kind   = "uniform"                  # uniform|poisson|burst|onoff
    tokens = 600                        # the injection budget (>= 1)
    # duration (uniform), rate (poisson), bursts/spacing (burst),
    # phases = [[duration, rate], ...] + cycles (onoff)
    [arrivals.wires]
    kind = "round_robin"                # round_robin|uniform|hot
    # hot_wires / hot_fraction (hot)

    [churn]
    kind = "none"                       # none|poisson|correlated|partition|oscillation
    # join_rate/leave_rate/crash_rate/duration    (poisson)
    # rate/batch/duration                         (correlated)
    # at/fraction/heal_after                      (partition)
    # period/count/first                          (oscillation)

    [app]
    kind = "tokens"                     # tokens|counter|load_balancer|
                                        # producer_consumer|mixed
    # servers (load_balancer/mixed)

    record = ["tokens", "latency"]      # statistic groups to record

Validation collects *every* problem (not just the first) and reports
each as ``<table>.<field>: <what is wrong> (<what would be valid>)`` —
the same strings the RSC308 lint emits, so a bad committed spec fails
``repro check --lint`` with an actionable message.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ReproError

try:  # Python >= 3.11; on older interpreters only JSON specs load.
    import tomllib  # type: ignore[import-not-found]
except ImportError:  # pragma: no cover - depends on interpreter
    tomllib = None  # type: ignore[assignment]

__all__ = [
    "ScenarioSpecError",
    "LatencySpec",
    "WireSpec",
    "ArrivalSpec",
    "ChurnSpec",
    "AppSpec",
    "ScenarioSpec",
    "validate_spec_data",
    "parse_spec",
    "load_spec",
    "spec_file_problems",
    "SPEC_SUFFIXES",
    "LATENCY_KINDS",
    "ARRIVAL_KINDS",
    "CHURN_KINDS",
    "APP_KINDS",
    "RECORD_GROUPS",
]

#: File suffixes a spec may use. ``.toml`` requires ``tomllib``
#: (Python 3.11+); the committed library uses ``.json`` so the schema
#: gate runs on every supported interpreter.
SPEC_SUFFIXES = (".json", ".toml")

LATENCY_KINDS = ("constant", "uniform", "discrete", "exponential")
ARRIVAL_KINDS = ("uniform", "poisson", "burst", "onoff")
WIRE_KINDS = ("round_robin", "uniform", "hot")
CHURN_KINDS = ("none", "poisson", "correlated", "partition", "oscillation")
APP_KINDS = ("tokens", "counter", "load_balancer", "producer_consumer", "mixed")
CONVENTIONS = ("ahs94", "paper-prose")

#: Statistic groups a spec may ask the run to record. ``tokens`` is
#: always on (conservation is non-negotiable); the others are opt-in.
RECORD_GROUPS = ("tokens", "latency", "messages", "adaptation", "pools", "app")

#: Hard cap on one scenario's injection budget: the smoke matrix runs
#: the whole library per CI job, so a single spec cannot ask for a
#: bench-scale run.
MAX_TOKENS = 200_000


class ScenarioSpecError(ReproError):
    """A scenario spec failed schema validation.

    ``problems`` carries every finding, one actionable line each.
    """

    def __init__(self, name: str, problems: Sequence[str]):
        self.name = name
        self.problems = list(problems)
        super().__init__(
            "scenario spec %r has %d problem(s):\n  %s"
            % (name, len(self.problems), "\n  ".join(self.problems))
        )


@dataclass(frozen=True)
class LatencySpec:
    kind: str = "constant"
    value: float = 1.0
    low: float = 0.5
    high: float = 2.0
    values: Tuple[float, ...] = (0.5, 1.0, 2.0)
    weights: Optional[Tuple[float, ...]] = None
    mean: float = 1.0


@dataclass(frozen=True)
class WireSpec:
    kind: str = "round_robin"
    hot_wires: int = 1
    hot_fraction: float = 0.9


@dataclass(frozen=True)
class ArrivalSpec:
    kind: str
    tokens: int
    duration: float = 100.0
    rate: float = 1.0
    bursts: int = 1
    spacing: float = 1.0
    phases: Tuple[Tuple[float, float], ...] = ()
    cycles: int = 1
    wires: WireSpec = field(default_factory=WireSpec)


@dataclass(frozen=True)
class ChurnSpec:
    kind: str = "none"
    duration: float = 100.0
    join_rate: float = 0.0
    leave_rate: float = 0.0
    crash_rate: float = 0.0
    rate: float = 0.0
    batch: int = 2
    at: float = 50.0
    fraction: float = 0.5
    heal_after: float = 25.0
    period: float = 5.0
    count: int = 10
    first: str = "join"


@dataclass(frozen=True)
class AppSpec:
    kind: str = "tokens"
    servers: int = 0  # 0 = network width


@dataclass(frozen=True)
class ScenarioSpec:
    """One validated scenario, ready for the compiler."""

    name: str
    description: str
    width: int
    convention: str
    seed: int
    initial_nodes: int
    min_nodes: int
    step_multiplier: int
    hysteresis: int
    coalesce: bool
    recycle_tokens: bool
    latency: LatencySpec
    arrivals: ArrivalSpec
    churn: ChurnSpec
    app: AppSpec
    record: Tuple[str, ...]

    def with_seed(self, seed: int) -> "ScenarioSpec":
        """The same scenario under a different workload seed."""
        from dataclasses import replace

        return replace(self, seed=seed)


class _Checker:
    """Field extraction with problem accumulation.

    Every getter records a problem (with the valid range spelled out)
    instead of raising, so one validation pass reports everything wrong
    with a spec at once.
    """

    def __init__(self) -> None:
        self.problems: List[str] = []

    def problem(self, where: str, what: str) -> None:
        self.problems.append("%s: %s" % (where, what))

    def table(self, data: Mapping[str, Any], key: str) -> Dict[str, Any]:
        value = data.get(key)
        if value is None:
            return {}
        if not isinstance(value, dict):
            self.problem(key, "must be a table/object, got %s" % _kind(value))
            return {}
        return dict(value)

    def unknown_keys(
        self, where: str, data: Mapping[str, Any], allowed: Sequence[str]
    ) -> None:
        for key in sorted(set(data) - set(allowed)):
            self.problem(
                "%s.%s" % (where, key) if where else key,
                "unknown field (valid: %s)" % ", ".join(sorted(allowed)),
            )

    def choice(
        self, where: str, data: Mapping[str, Any], key: str,
        choices: Sequence[str], default: str,
    ) -> str:
        value = data.get(key, default)
        if not isinstance(value, str) or value not in choices:
            self.problem(
                "%s.%s" % (where, key),
                "got %r, valid choices: %s" % (value, ", ".join(choices)),
            )
            return default
        return value

    def integer(
        self, where: str, data: Mapping[str, Any], key: str, default: int,
        minimum: Optional[int] = None, maximum: Optional[int] = None,
    ) -> int:
        value = data.get(key, default)
        if isinstance(value, bool) or not isinstance(value, int):
            self.problem(
                "%s.%s" % (where, key),
                "must be an integer, got %s" % _kind(value),
            )
            return default
        if minimum is not None and value < minimum:
            self.problem(
                "%s.%s" % (where, key), "must be >= %d, got %d" % (minimum, value)
            )
            return default
        if maximum is not None and value > maximum:
            self.problem(
                "%s.%s" % (where, key), "must be <= %d, got %d" % (maximum, value)
            )
            return default
        return value

    def number(
        self, where: str, data: Mapping[str, Any], key: str, default: float,
        minimum: Optional[float] = None, positive: bool = False,
        maximum: Optional[float] = None,
    ) -> float:
        value = data.get(key, default)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            self.problem(
                "%s.%s" % (where, key),
                "must be a number, got %s" % _kind(value),
            )
            return default
        value = float(value)
        if positive and value <= 0:
            self.problem("%s.%s" % (where, key), "must be > 0, got %r" % value)
            return default
        if minimum is not None and value < minimum:
            self.problem(
                "%s.%s" % (where, key), "must be >= %r, got %r" % (minimum, value)
            )
            return default
        if maximum is not None and value > maximum:
            self.problem(
                "%s.%s" % (where, key), "must be <= %r, got %r" % (maximum, value)
            )
            return default
        return value

    def boolean(
        self, where: str, data: Mapping[str, Any], key: str, default: bool
    ) -> bool:
        value = data.get(key, default)
        if not isinstance(value, bool):
            self.problem(
                "%s.%s" % (where, key),
                "must be true or false, got %s" % _kind(value),
            )
            return default
        return value

    def string(
        self, where: str, data: Mapping[str, Any], key: str, default: str
    ) -> str:
        value = data.get(key, default)
        if not isinstance(value, str):
            self.problem(
                "%s.%s" % (where, key), "must be a string, got %s" % _kind(value)
            )
            return default
        return value


def _kind(value: Any) -> str:
    return type(value).__name__ if value is not None else "nothing"


def _is_power_of_two(value: int) -> bool:
    return value >= 2 and (value & (value - 1)) == 0


def _check_latency(checker: _Checker, data: Mapping[str, Any]) -> LatencySpec:
    checker.unknown_keys(
        "latency", data, ("kind", "value", "low", "high", "values", "weights", "mean")
    )
    kind = checker.choice("latency", data, "kind", LATENCY_KINDS, "constant")
    value = checker.number("latency", data, "value", 1.0, minimum=0.0)
    low = checker.number("latency", data, "low", 0.5, minimum=0.0)
    high = checker.number("latency", data, "high", 2.0, minimum=0.0)
    if kind == "uniform" and low > high:
        checker.problem("latency.low", "must be <= latency.high (%r > %r)" % (low, high))
    mean = checker.number("latency", data, "mean", 1.0, positive=True)
    values: Tuple[float, ...] = (0.5, 1.0, 2.0)
    raw_values = data.get("values")
    if raw_values is not None:
        if (
            not isinstance(raw_values, list)
            or not raw_values
            or not all(
                isinstance(v, (int, float)) and not isinstance(v, bool) and v >= 0
                for v in raw_values
            )
        ):
            checker.problem(
                "latency.values",
                "must be a non-empty array of nonnegative numbers",
            )
        else:
            values = tuple(float(v) for v in raw_values)
    weights: Optional[Tuple[float, ...]] = None
    raw_weights = data.get("weights")
    if raw_weights is not None:
        if (
            not isinstance(raw_weights, list)
            or len(raw_weights) != len(values)
            or not all(
                isinstance(w, (int, float)) and not isinstance(w, bool) and w >= 0
                for w in raw_weights
            )
            or not any(raw_weights)
        ):
            checker.problem(
                "latency.weights",
                "must be an array of nonnegative numbers matching "
                "latency.values one-to-one, not all zero",
            )
        else:
            weights = tuple(float(w) for w in raw_weights)
    return LatencySpec(
        kind=kind, value=value, low=low, high=high,
        values=values, weights=weights, mean=mean,
    )


def _check_wires(checker: _Checker, data: Mapping[str, Any], width: int) -> WireSpec:
    checker.unknown_keys("arrivals.wires", data, ("kind", "hot_wires", "hot_fraction"))
    kind = checker.choice("arrivals.wires", data, "kind", WIRE_KINDS, "round_robin")
    hot_wires = checker.integer(
        "arrivals.wires", data, "hot_wires", 1, minimum=1, maximum=width
    )
    hot_fraction = checker.number(
        "arrivals.wires", data, "hot_fraction", 0.9, minimum=0.0, maximum=1.0
    )
    return WireSpec(kind=kind, hot_wires=hot_wires, hot_fraction=hot_fraction)


def _check_arrivals(
    checker: _Checker, data: Mapping[str, Any], width: int
) -> ArrivalSpec:
    checker.unknown_keys(
        "arrivals",
        data,
        ("kind", "tokens", "duration", "rate", "bursts", "spacing",
         "phases", "cycles", "wires"),
    )
    if not data:
        checker.problem(
            "arrivals",
            "table is required (kinds: %s)" % ", ".join(ARRIVAL_KINDS),
        )
    kind = checker.choice("arrivals", data, "kind", ARRIVAL_KINDS, "uniform")
    tokens = checker.integer(
        "arrivals", data, "tokens", 100, minimum=1, maximum=MAX_TOKENS
    )
    if "tokens" not in data and data:
        checker.problem(
            "arrivals.tokens",
            "the injection budget is required (1..%d)" % MAX_TOKENS,
        )
    duration = checker.number("arrivals", data, "duration", 100.0, positive=True)
    rate = checker.number("arrivals", data, "rate", 1.0, positive=True)
    bursts = checker.integer("arrivals", data, "bursts", 1, minimum=1)
    spacing = checker.number("arrivals", data, "spacing", 1.0, positive=True)
    cycles = checker.integer("arrivals", data, "cycles", 1, minimum=1)
    phases: Tuple[Tuple[float, float], ...] = ()
    raw_phases = data.get("phases")
    if raw_phases is not None:
        ok = isinstance(raw_phases, list) and raw_phases
        parsed: List[Tuple[float, float]] = []
        if ok:
            for entry in raw_phases:
                if (
                    not isinstance(entry, (list, tuple))
                    or len(entry) != 2
                    or not all(
                        isinstance(v, (int, float)) and not isinstance(v, bool)
                        for v in entry
                    )
                    or entry[0] <= 0
                    or entry[1] < 0
                ):
                    ok = False
                    break
                parsed.append((float(entry[0]), float(entry[1])))
        if not ok:
            checker.problem(
                "arrivals.phases",
                "must be a non-empty array of [duration > 0, rate >= 0] pairs",
            )
        else:
            phases = tuple(parsed)
    if kind == "onoff" and not phases:
        checker.problem(
            "arrivals.phases",
            "required for kind 'onoff' (array of [duration, rate] pairs)",
        )
    wires = _check_wires(checker, checker.table(data, "wires"), width)
    return ArrivalSpec(
        kind=kind, tokens=tokens, duration=duration, rate=rate,
        bursts=bursts, spacing=spacing, phases=phases, cycles=cycles,
        wires=wires,
    )


def _check_churn(checker: _Checker, data: Mapping[str, Any]) -> ChurnSpec:
    checker.unknown_keys(
        "churn",
        data,
        ("kind", "duration", "join_rate", "leave_rate", "crash_rate",
         "rate", "batch", "at", "fraction", "heal_after", "period",
         "count", "first"),
    )
    kind = checker.choice("churn", data, "kind", CHURN_KINDS, "none")
    duration = checker.number("churn", data, "duration", 100.0, positive=True)
    join_rate = checker.number("churn", data, "join_rate", 0.0, minimum=0.0)
    leave_rate = checker.number("churn", data, "leave_rate", 0.0, minimum=0.0)
    crash_rate = checker.number("churn", data, "crash_rate", 0.0, minimum=0.0)
    rate = checker.number("churn", data, "rate", 0.02, positive=True)
    batch = checker.integer("churn", data, "batch", 2, minimum=1)
    at = checker.number("churn", data, "at", 50.0, positive=True)
    fraction = checker.number("churn", data, "fraction", 0.5, minimum=0.0, maximum=0.9)
    heal_after = checker.number("churn", data, "heal_after", 25.0, positive=True)
    period = checker.number("churn", data, "period", 5.0, positive=True)
    count = checker.integer("churn", data, "count", 10, minimum=0)
    first = checker.choice("churn", data, "first", ("join", "leave"), "join")
    if kind == "poisson" and not (join_rate or leave_rate or crash_rate):
        checker.problem(
            "churn",
            "kind 'poisson' needs at least one of join_rate / "
            "leave_rate / crash_rate > 0",
        )
    return ChurnSpec(
        kind=kind, duration=duration, join_rate=join_rate,
        leave_rate=leave_rate, crash_rate=crash_rate, rate=rate,
        batch=batch, at=at, fraction=fraction, heal_after=heal_after,
        period=period, count=count, first=first,
    )


def _check_app(checker: _Checker, data: Mapping[str, Any], width: int) -> AppSpec:
    checker.unknown_keys("app", data, ("kind", "servers"))
    kind = checker.choice("app", data, "kind", APP_KINDS, "tokens")
    servers = checker.integer("app", data, "servers", 0, minimum=0, maximum=width)
    return AppSpec(kind=kind, servers=servers)


def validate_spec_data(
    data: Mapping[str, Any], name: str
) -> Tuple[Optional[ScenarioSpec], List[str]]:
    """Validate a parsed spec document.

    Returns ``(spec, problems)``: on success ``problems`` is empty; on
    failure ``spec`` is ``None`` and every problem is listed. ``name``
    is the scenario's registry name (usually the file stem); a ``name``
    field inside the document must match it, so a copied spec file
    cannot silently shadow another scenario.
    """
    checker = _Checker()
    if not isinstance(data, Mapping):
        return None, ["spec: top level must be a table/object, got %s" % _kind(data)]
    checker.unknown_keys(
        "", data,
        ("name", "description", "network", "system", "latency",
         "arrivals", "churn", "app", "record"),
    )
    declared = data.get("name")
    if declared is not None and declared != name:
        checker.problem(
            "name",
            "declared name %r does not match the registry name %r "
            "(the file stem)" % (declared, name),
        )
    description = checker.string("spec", data, "description", "")

    network = checker.table(data, "network")
    checker.unknown_keys("network", network, ("width", "convention"))
    width = checker.integer("network", network, "width", 16, minimum=2, maximum=1024)
    if not _is_power_of_two(width):
        checker.problem("network.width", "must be a power of two >= 2, got %d" % width)
        width = 16
    convention = checker.choice("network", network, "convention", CONVENTIONS, "ahs94")

    system = checker.table(data, "system")
    checker.unknown_keys(
        "system", system,
        ("seed", "initial_nodes", "min_nodes", "step_multiplier",
         "hysteresis", "coalesce", "recycle_tokens"),
    )
    seed = checker.integer("system", system, "seed", 0, minimum=0)
    initial_nodes = checker.integer(
        "system", system, "initial_nodes", 8, minimum=1, maximum=4096
    )
    min_nodes = checker.integer("system", system, "min_nodes", 2, minimum=1)
    if min_nodes > initial_nodes:
        checker.problem(
            "system.min_nodes",
            "must be <= system.initial_nodes (%d > %d)" % (min_nodes, initial_nodes),
        )
        min_nodes = initial_nodes
    step_multiplier = checker.integer(
        "system", system, "step_multiplier", 4, minimum=1
    )
    hysteresis = checker.integer("system", system, "hysteresis", 0, minimum=0)
    coalesce = checker.boolean("system", system, "coalesce", False)
    recycle_tokens = checker.boolean("system", system, "recycle_tokens", False)

    latency = _check_latency(checker, checker.table(data, "latency"))
    arrivals = _check_arrivals(checker, checker.table(data, "arrivals"), width)
    churn = _check_churn(checker, checker.table(data, "churn"))
    app = _check_app(checker, checker.table(data, "app"), width)

    record_raw = data.get("record", ["tokens"])
    record: Tuple[str, ...] = ("tokens",)
    if (
        not isinstance(record_raw, list)
        or not all(isinstance(item, str) for item in record_raw)
    ):
        checker.problem("record", "must be an array of statistic-group names")
    else:
        bad = sorted(set(record_raw) - set(RECORD_GROUPS))
        if bad:
            checker.problem(
                "record",
                "unknown group(s) %s (valid: %s)"
                % (", ".join(repr(b) for b in bad), ", ".join(RECORD_GROUPS)),
            )
        # ``tokens`` (conservation accounting) is always recorded.
        record = tuple(
            group for group in RECORD_GROUPS
            if group == "tokens" or group in record_raw
        )

    if checker.problems:
        return None, checker.problems
    return (
        ScenarioSpec(
            name=name,
            description=description,
            width=width,
            convention=convention,
            seed=seed,
            initial_nodes=initial_nodes,
            min_nodes=min_nodes,
            step_multiplier=step_multiplier,
            hysteresis=hysteresis,
            coalesce=coalesce,
            recycle_tokens=recycle_tokens,
            latency=latency,
            arrivals=arrivals,
            churn=churn,
            app=app,
            record=record,
        ),
        [],
    )


def parse_spec(data: Mapping[str, Any], name: str) -> ScenarioSpec:
    """Validate and return a spec, raising :class:`ScenarioSpecError`
    with every problem on failure."""
    spec, problems = validate_spec_data(data, name)
    if spec is None:
        raise ScenarioSpecError(name, problems)
    return spec


def _read_spec_document(path: str) -> Tuple[Optional[Dict[str, Any]], List[str]]:
    """Parse a spec file into a plain dict; problems instead of raises."""
    suffix = os.path.splitext(path)[1].lower()
    if suffix not in SPEC_SUFFIXES:
        return None, [
            "file: unsupported suffix %r (use one of: %s)"
            % (suffix, ", ".join(SPEC_SUFFIXES))
        ]
    try:
        with open(path, "rb") as handle:
            raw = handle.read()
    except OSError as exc:
        return None, ["file: cannot read: %s" % exc]
    if suffix == ".json":
        try:
            document = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            return None, ["file: invalid JSON: %s" % exc]
    else:
        if tomllib is None:
            return None, [
                "file: TOML specs need Python >= 3.11 (tomllib); "
                "re-author as JSON for older interpreters"
            ]
        try:
            document = tomllib.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            return None, ["file: invalid TOML: %s" % exc]
    if not isinstance(document, dict):
        return None, ["file: top level must be a table/object"]
    return document, []


def spec_name_for_path(path: str) -> str:
    """The registry name a spec file binds: its stem."""
    return os.path.splitext(os.path.basename(path))[0]


def spec_file_problems(path: str) -> List[str]:
    """Every schema problem of one spec file (empty list = valid).

    The RSC308 lint entry point: parse errors, read errors, and schema
    violations all come back as the same actionable one-liners
    ``parse_spec`` would raise with.
    """
    document, problems = _read_spec_document(path)
    if document is None:
        return problems
    _, problems = validate_spec_data(document, spec_name_for_path(path))
    return problems


def load_spec(path: str) -> ScenarioSpec:
    """Load and validate one spec file (``.json`` or ``.toml``)."""
    name = spec_name_for_path(path)
    document, problems = _read_spec_document(path)
    if document is None:
        raise ScenarioSpecError(name, problems)
    return parse_spec(document, name)
