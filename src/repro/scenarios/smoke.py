"""The parallel smoke matrix: run the library, pin the fingerprints.

``repro smoke`` runs every library scenario in its own worker process
(spawn context — no inherited state), with a per-scenario CPU budget
enforced inside the child (``RLIMIT_CPU`` where the platform has it)
and a wall budget enforced by the parent. Each run executes under an
installed :class:`repro.obs.recorder.Recorder` and is digested into a
*trace-hash fingerprint*:

    sha256 over the canonical JSON of
    ``{"summary": <deterministic run summary>,
       "metrics": <digest of the metrics JSONL export bytes>,
       "version": FINGERPRINT_VERSION}``

Every input to the digest is a pure function of the spec (simulated
time only, seeded randomness only), so the committed
``SCENARIO_FINGERPRINTS.json`` must reproduce byte-identically on any
machine; a mismatch is behavioural drift in the token plane, not noise.

Outcomes are classified distinctly:

=========  =====================================================
status     meaning
=========  =====================================================
ok         ran, verified, fingerprint computed
verify     invariant violation (``verify()``/step-property/protocol)
crash      any other exception in the child
timeout    wall budget exceeded (parent killed it) or CPU budget
           exceeded (kernel killed it)
drift      ok, but the fingerprint differs from the committed pin
unpinned   ok, but the scenario has no committed pin
=========  =====================================================

``--update-fingerprints`` regenerates the committed file; it refuses
if any scenario failed, so a broken run can never be pinned.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import tempfile
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ProtocolError, ReproError, StepPropertyViolation, StructureError
from repro.obs.fingerprint import digest_metrics, digest_payload
from repro.obs.recorder import Recorder, recording
from repro.scenarios.registry import LIBRARY_DIR, library_paths
from repro.scenarios.spec import load_spec, spec_name_for_path

__all__ = [
    "FINGERPRINT_VERSION",
    "FINGERPRINTS_FILE",
    "SmokeOutcome",
    "SmokeReport",
    "execute_scenario",
    "load_fingerprints",
    "write_fingerprints",
    "run_smoke",
]

#: Bumped when the fingerprint's *input shape* changes (summary fields,
#: metrics encoding), so a pin mismatch always means behavioural drift,
#: never a silent format change.
FINGERPRINT_VERSION = 1

#: Default committed pin file, resolved against the current directory
#: (the repo root in CI and normal development).
FINGERPRINTS_FILE = "SCENARIO_FINGERPRINTS.json"

#: Exceptions that mean "the run completed but the system broke its
#: invariants" — reported as ``verify``, distinct from crashes.
_VERIFY_ERRORS = (ProtocolError, StepPropertyViolation, StructureError)


def execute_scenario(path: str) -> Dict[str, Any]:
    """Run one spec file under a recorder; never raises.

    Returns a plain JSON-ready dict: ``status`` (ok/verify/crash),
    ``fingerprint`` and ``summary`` on success, ``detail`` on failure.
    """
    name = spec_name_for_path(path)
    try:
        spec = load_spec(path)
        from repro.scenarios.compile import run_scenario

        with recording(Recorder()) as recorder:
            run = run_scenario(spec)
        fingerprint = digest_payload(
            {
                "version": FINGERPRINT_VERSION,
                "summary": run.summary,
                "metrics": digest_metrics(recorder.metrics),
            }
        )
        return {
            "scenario": name,
            "status": "ok",
            "fingerprint": fingerprint,
            "summary": run.summary,
        }
    except _VERIFY_ERRORS as exc:
        return {
            "scenario": name,
            "status": "verify",
            "detail": "%s: %s" % (type(exc).__name__, exc),
        }
    except BaseException as exc:  # a smoke child reports, never raises
        return {
            "scenario": name,
            "status": "crash",
            "detail": "%s: %s\n%s"
            % (type(exc).__name__, exc, traceback.format_exc()),
        }


def _child_main(path: str, cpu_budget: float, out_path: str) -> None:
    """Worker entry point (spawn): budget, run, write the result file."""
    try:
        import resource

        limit = max(1, int(cpu_budget))
        resource.setrlimit(resource.RLIMIT_CPU, (limit, limit + 5))
    except (ImportError, ValueError, OSError):  # pragma: no cover
        pass  # no CPU rlimit on this platform; the wall budget still holds
    result = execute_scenario(path)
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(result, handle, sort_keys=True)


@dataclass
class SmokeOutcome:
    """One scenario's smoke verdict."""

    name: str
    status: str
    elapsed: float
    fingerprint: Optional[str] = None
    expected: Optional[str] = None
    detail: str = ""
    summary: Optional[Dict[str, Any]] = None

    @property
    def failed(self) -> bool:
        return self.status != "ok"


@dataclass
class SmokeReport:
    """The whole matrix's verdict."""

    outcomes: List[SmokeOutcome] = field(default_factory=list)
    updated: bool = False

    @property
    def ok(self) -> bool:
        return all(not outcome.failed for outcome in self.outcomes)

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for outcome in self.outcomes:
            counts[outcome.status] = counts.get(outcome.status, 0) + 1
        return counts

    def format_lines(self) -> List[str]:
        lines = []
        for outcome in sorted(self.outcomes, key=lambda o: o.name):
            mark = "ok  " if not outcome.failed else outcome.status.upper()
            extra = ""
            if outcome.fingerprint:
                extra = " %s" % outcome.fingerprint[:23]
            if outcome.status == "drift" and outcome.expected:
                extra += " (pinned %s)" % outcome.expected[:23]
            if outcome.detail and outcome.failed:
                extra += "  %s" % outcome.detail.splitlines()[0][:100]
            lines.append(
                "%-30s %-8s %6.1fs%s" % (outcome.name, mark, outcome.elapsed, extra)
            )
        counts = self.counts()
        lines.append(
            "smoke: %d scenario(s): %s"
            % (
                len(self.outcomes),
                ", ".join("%d %s" % (counts[k], k) for k in sorted(counts)),
            )
        )
        return lines


def load_fingerprints(path: str) -> Dict[str, str]:
    """The committed pins; empty if the file does not exist."""
    if not os.path.exists(path):
        return {}
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if (
        not isinstance(document, dict)
        or document.get("schema") != 1
        or not isinstance(document.get("fingerprints"), dict)
    ):
        raise ReproError(
            "%s is not a schema-1 fingerprint document "
            '(expected {"schema": 1, "fingerprints": {...}})' % path
        )
    return dict(document["fingerprints"])


def write_fingerprints(path: str, fingerprints: Dict[str, str]) -> None:
    """Write the pin file (stable formatting: sorted, indented, LF)."""
    document = {"schema": 1, "fingerprints": dict(sorted(fingerprints.items()))}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _collect(
    proc: "multiprocessing.process.BaseProcess",
    name: str,
    out_path: str,
    elapsed: float,
    timed_out: bool,
) -> SmokeOutcome:
    if timed_out:
        return SmokeOutcome(
            name=name,
            status="timeout",
            elapsed=elapsed,
            detail="wall budget exceeded; worker terminated",
        )
    if not os.path.exists(out_path):
        detail = "worker died without a result (exit code %s)" % proc.exitcode
        status = "crash"
        if proc.exitcode is not None and proc.exitcode < 0:
            # Killed by a signal — SIGXCPU from the CPU rlimit lands here.
            status = "timeout"
            detail = (
                "worker killed by signal %d (CPU budget exceeded?)"
                % -proc.exitcode
            )
        return SmokeOutcome(name=name, status=status, elapsed=elapsed, detail=detail)
    with open(out_path, "r", encoding="utf-8") as handle:
        result = json.load(handle)
    return SmokeOutcome(
        name=name,
        status=result["status"],
        elapsed=elapsed,
        fingerprint=result.get("fingerprint"),
        detail=result.get("detail", ""),
        summary=result.get("summary"),
    )


def run_smoke(
    names: Optional[List[str]] = None,
    jobs: Optional[int] = None,
    wall_budget: float = 120.0,
    cpu_budget: float = 60.0,
    fingerprints_path: str = FINGERPRINTS_FILE,
    update: bool = False,
    artifacts_dir: Optional[str] = None,
    library_dir: Optional[str] = None,
) -> SmokeReport:
    """Run the matrix; compare (or regenerate) the committed pins.

    Raises :class:`ReproError` on usage errors (unknown scenario name,
    refusing to pin a failing run); every per-scenario failure is an
    outcome, not an exception.
    """
    paths = {
        spec_name_for_path(path): path
        for path in library_paths(library_dir or LIBRARY_DIR)
    }
    if not paths:
        raise ReproError(
            "no scenario specs found under %s" % (library_dir or LIBRARY_DIR)
        )
    if names:
        unknown = sorted(set(names) - set(paths))
        if unknown:
            raise ReproError(
                "unknown scenario(s) %s (library: %s)"
                % (", ".join(unknown), ", ".join(sorted(paths)))
            )
        selected = list(dict.fromkeys(names))
    else:
        selected = sorted(paths)
    if jobs is None:
        jobs = max(1, min(len(selected), (os.cpu_count() or 2) - 1))

    pinned = {} if update else load_fingerprints(fingerprints_path)

    context = multiprocessing.get_context("spawn")
    report = SmokeReport()
    pending = list(selected)
    running: List[Tuple[Any, str, str, float, float]] = []
    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as workdir:
        while pending or running:
            while pending and len(running) < jobs:
                name = pending.pop(0)
                out_path = os.path.join(workdir, "%s.json" % name)
                proc = context.Process(
                    target=_child_main,
                    args=(paths[name], cpu_budget, out_path),
                    name="smoke-%s" % name,
                )
                proc.start()
                start = time.monotonic()
                running.append((proc, name, out_path, start, start + wall_budget))
            time.sleep(0.05)
            still_running = []
            for proc, name, out_path, start, deadline in running:
                now = time.monotonic()
                if proc.is_alive() and now < deadline:
                    still_running.append((proc, name, out_path, start, deadline))
                    continue
                timed_out = proc.is_alive()
                if timed_out:
                    proc.terminate()
                proc.join(5.0)
                if proc.is_alive():  # pragma: no cover - stuck in a syscall
                    proc.kill()
                    proc.join(5.0)
                report.outcomes.append(
                    _collect(proc, name, out_path, now - start, timed_out)
                )
            running = still_running

    # Pin comparison happens in the parent so a drift never masks the
    # child's own verdict.
    if not update:
        for outcome in report.outcomes:
            if outcome.status != "ok":
                continue
            expected = pinned.get(outcome.name)
            if expected is None:
                outcome.status = "unpinned"
                outcome.detail = (
                    "no committed fingerprint in %s (run with "
                    "--update-fingerprints to pin)" % fingerprints_path
                )
            elif expected != outcome.fingerprint:
                outcome.status = "drift"
                outcome.expected = expected
                outcome.detail = "fingerprint differs from the committed pin"

    if artifacts_dir:
        os.makedirs(artifacts_dir, exist_ok=True)
        matrix = {
            "ok": report.ok,
            "outcomes": {
                outcome.name: {
                    "status": outcome.status,
                    "elapsed_sec": round(outcome.elapsed, 3),
                    "fingerprint": outcome.fingerprint,
                    "expected": outcome.expected,
                }
                for outcome in report.outcomes
            },
        }
        with open(
            os.path.join(artifacts_dir, "smoke_report.json"), "w", encoding="utf-8"
        ) as handle:
            json.dump(matrix, handle, indent=2, sort_keys=True)
            handle.write("\n")
        for outcome in report.outcomes:
            if not outcome.failed:
                continue
            payload = {
                "scenario": outcome.name,
                "status": outcome.status,
                "detail": outcome.detail,
                "fingerprint": outcome.fingerprint,
                "expected": outcome.expected,
                "summary": outcome.summary,
            }
            with open(
                os.path.join(artifacts_dir, "%s.json" % outcome.name),
                "w",
                encoding="utf-8",
            ) as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")

    if update:
        failed = sorted(o.name for o in report.outcomes if o.failed)
        if failed:
            raise ReproError(
                "refusing to update fingerprints: %s did not complete "
                "verify-green" % ", ".join(failed)
            )
        if names:
            # Partial update: keep existing pins for unselected scenarios.
            merged = load_fingerprints(fingerprints_path)
        else:
            merged = {}
        for outcome in report.outcomes:
            assert outcome.fingerprint is not None
            merged[outcome.name] = outcome.fingerprint
        write_fingerprints(fingerprints_path, merged)
        report.updated = True

    return report
