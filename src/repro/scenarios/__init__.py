"""`repro.scenarios` — the declarative scenario DSL and smoke matrix.

A scenario is data, not code: a TOML/JSON spec naming a topology, a
latency model, an arrival process, a churn trace, an application and
the statistics to record (:mod:`repro.scenarios.spec`). The compiler
(:mod:`repro.scenarios.compile`) lowers a validated spec onto the same
runtime/sim setup path the hand-coded benches use; the committed
library (``src/repro/scenarios/library/``, discovered by
:mod:`repro.scenarios.registry`) covers flash crowds, diurnal ramps,
hot-key skew, correlated crashes, partitions, adversarial oscillation
and more; and ``repro smoke`` (:mod:`repro.scenarios.smoke`) runs the
whole matrix in parallel worker processes, pinning each scenario to a
byte-deterministic trace-hash fingerprint in
``SCENARIO_FINGERPRINTS.json``.

This package sits *outside* ``repro.sim``/``repro.runtime``: specs and
the registry import nothing heavy, so lint (RSC308 validates every
committed spec) and CLI listing stay cheap; the compiler and the smoke
runner import the runtime only when a scenario actually runs.
"""

from repro.scenarios.registry import (
    LIBRARY_DIR,
    bench_callable,
    get_scenario,
    library_names,
    library_paths,
    load_library,
)
from repro.scenarios.spec import (
    APP_KINDS,
    ARRIVAL_KINDS,
    CHURN_KINDS,
    LATENCY_KINDS,
    RECORD_GROUPS,
    ScenarioSpec,
    ScenarioSpecError,
    load_spec,
    parse_spec,
    spec_file_problems,
    validate_spec_data,
)

__all__ = [
    "APP_KINDS",
    "ARRIVAL_KINDS",
    "CHURN_KINDS",
    "LATENCY_KINDS",
    "RECORD_GROUPS",
    "LIBRARY_DIR",
    "ScenarioSpec",
    "ScenarioSpecError",
    "bench_callable",
    "get_scenario",
    "library_names",
    "library_paths",
    "load_library",
    "load_spec",
    "parse_spec",
    "spec_file_problems",
    "validate_spec_data",
]
