"""Analysis helpers: graph metrics, the paper's predictions, statistics."""

from repro.analysis.graphs import max_vertex_disjoint_paths, longest_path_vertices
from repro.analysis.theory import TheoryModel
from repro.analysis.stats import summarize, Summary

__all__ = [
    "max_vertex_disjoint_paths",
    "longest_path_vertices",
    "TheoryModel",
    "summarize",
    "Summary",
]
