"""Statistics helpers for the experiment harness.

Pure-Python summaries (mean, stddev, quantiles, confidence intervals)
so benches can print compact tables without pulling numpy into the
library's dependency set (numpy is used in tests to cross-check these).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import ReproError


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ReproError("mean of an empty sequence")
    return sum(values) / len(values)


def variance(values: Sequence[float]) -> float:
    """Unbiased sample variance (zero for fewer than two samples)."""
    n = len(values)
    if n < 2:
        return 0.0
    m = mean(values)
    return sum((v - m) ** 2 for v in values) / (n - 1)


def stddev(values: Sequence[float]) -> float:
    return math.sqrt(variance(values))


def quantile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile, 0 <= q <= 1."""
    if not values:
        raise ReproError("quantile of an empty sequence")
    if not 0 <= q <= 1:
        raise ReproError("quantile level must be in [0, 1], got %r" % q)
    ordered = sorted(values)
    position = q * (len(ordered) - 1)
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high:
        return float(ordered[low])
    fraction = position - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


def median(values: Sequence[float]) -> float:
    return quantile(values, 0.5)


@dataclass(frozen=True)
class Summary:
    """A five-number-ish summary of one measured series."""

    n: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float

    def __str__(self):
        return "n=%d mean=%.3f std=%.3f min=%.3f med=%.3f max=%.3f" % (
            self.n,
            self.mean,
            self.std,
            self.minimum,
            self.median,
            self.maximum,
        )


def summarize(values: Sequence[float]) -> Summary:
    if not values:
        raise ReproError("summary of an empty sequence")
    return Summary(
        n=len(values),
        mean=mean(values),
        std=stddev(values),
        minimum=float(min(values)),
        median=median(values),
        maximum=float(max(values)),
    )


def confidence_interval_95(values: Sequence[float]) -> float:
    """Half-width of a normal-approximation 95% CI on the mean."""
    n = len(values)
    if n < 2:
        return 0.0
    return 1.96 * stddev(values) / math.sqrt(n)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (for speedup ratios); requires positive values."""
    if not values:
        raise ReproError("geometric mean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ReproError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> tuple:
    """Least-squares slope and intercept (for scaling-exponent checks:
    fit log measured vs log N and inspect the slope)."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ReproError("linear fit needs two equal-length series, >= 2 points")
    mx, my = mean(xs), mean(ys)
    sxx = sum((x - mx) ** 2 for x in xs)
    if sxx == 0:
        raise ReproError("degenerate x values in linear fit")
    slope = sum((x - mx) * (y - my) for x, y in zip(xs, ys)) / sxx
    return slope, my - slope * mx
