"""Graph algorithms for the effective width/depth metrics (Section 1.4).

* :func:`max_vertex_disjoint_paths` — the paper's *effective width*: the
  maximum number of vertex-disjoint paths from the input layer to the
  output layer. Computed as max-flow on the standard node-splitting
  transform with a hand-rolled Dinic implementation (cross-checked
  against ``networkx`` in the test suite).
* :func:`longest_path_vertices` — the paper's *effective depth*: the
  number of components on the longest input-to-output path, computed by
  dynamic programming over a topological order.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Mapping, Set

from repro.errors import StructureError

Node = Hashable


class _Dinic:
    """Dinic max-flow on an integer-capacity directed graph."""

    def __init__(self):
        self.adjacency: List[List[int]] = []
        self.to: List[int] = []
        self.cap: List[int] = []

    def add_node(self) -> int:
        self.adjacency.append([])
        return len(self.adjacency) - 1

    def add_edge(self, u: int, v: int, capacity: int) -> None:
        self.adjacency[u].append(len(self.to))
        self.to.append(v)
        self.cap.append(capacity)
        self.adjacency[v].append(len(self.to))
        self.to.append(u)
        self.cap.append(0)

    def max_flow(self, source: int, sink: int) -> int:
        flow = 0
        n = len(self.adjacency)
        while True:
            level = [-1] * n
            level[source] = 0
            queue = deque([source])
            while queue:
                u = queue.popleft()
                for edge in self.adjacency[u]:
                    v = self.to[edge]
                    if self.cap[edge] > 0 and level[v] < 0:
                        level[v] = level[u] + 1
                        queue.append(v)
            if level[sink] < 0:
                return flow
            iters = [0] * n

            def augment(u: int, pushed: int) -> int:
                if u == sink:
                    return pushed
                while iters[u] < len(self.adjacency[u]):
                    edge = self.adjacency[u][iters[u]]
                    v = self.to[edge]
                    if self.cap[edge] > 0 and level[v] == level[u] + 1:
                        got = augment(v, min(pushed, self.cap[edge]))
                        if got > 0:
                            self.cap[edge] -= got
                            self.cap[edge ^ 1] += got
                            return got
                    iters[u] += 1
                return 0

            while True:
                pushed = augment(source, 1 << 60)
                if pushed == 0:
                    break
                flow += pushed


def max_vertex_disjoint_paths(
    graph: Mapping[Node, Iterable[Node]],
    sources: Iterable[Node],
    sinks: Iterable[Node],
) -> int:
    """Maximum number of vertex-disjoint source-to-sink paths.

    ``graph`` maps each node to its successors (all nodes must appear as
    keys). A node that is both a source and a sink counts as a length-1
    path. Standard reduction: split every node ``v`` into ``v_in ->
    v_out`` with capacity 1; edges get capacity 1; a super-source feeds
    every source's ``v_in`` and every sink's ``v_out`` feeds a
    super-sink.
    """
    sources = set(sources)
    sinks = set(sinks)
    for node in sources | sinks:
        if node not in graph:
            raise StructureError("source/sink %r not a graph node" % (node,))
    dinic = _Dinic()
    node_in: Dict[Node, int] = {}
    node_out: Dict[Node, int] = {}
    for node in graph:
        node_in[node] = dinic.add_node()
        node_out[node] = dinic.add_node()
        dinic.add_edge(node_in[node], node_out[node], 1)
    super_source = dinic.add_node()
    super_sink = dinic.add_node()
    for node, successors in graph.items():
        for succ in successors:
            if succ not in node_in:
                raise StructureError("edge target %r not a graph node" % (succ,))
            dinic.add_edge(node_out[node], node_in[succ], 1)
    for node in sources:
        dinic.add_edge(super_source, node_in[node], 1)
    for node in sinks:
        dinic.add_edge(node_out[node], super_sink, 1)
    return dinic.max_flow(super_source, super_sink)


def topological_order(graph: Mapping[Node, Iterable[Node]]) -> List[Node]:
    """Kahn topological order; raises on cycles."""
    indegree: Dict[Node, int] = {node: 0 for node in graph}
    for successors in graph.values():
        for succ in successors:
            indegree[succ] += 1
    ready = [node for node, degree in indegree.items() if degree == 0]
    order: List[Node] = []
    while ready:
        node = ready.pop()
        order.append(node)
        for succ in graph[node]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
    if len(order) != len(graph):
        raise StructureError("graph has a cycle; expected a DAG")
    return order


def longest_path_vertices(
    graph: Mapping[Node, Iterable[Node]],
    sources: Iterable[Node],
    sinks: Iterable[Node],
) -> int:
    """Number of vertices on the longest source-to-sink path in a DAG.

    Returns 0 if no source can reach a sink.
    """
    sources = set(sources)
    sinks = set(sinks)
    best: Dict[Node, int] = {}
    for node in topological_order(graph):
        here = best.get(node, 1 if node in sources else 0)
        if here == 0:
            continue
        for succ in graph[node]:
            candidate = here + 1
            if candidate > best.get(succ, 0):
                best[succ] = candidate
        best[node] = here
    return max((best.get(node, 0) for node in sinks), default=0)


def reachable(graph: Mapping[Node, Iterable[Node]], start: Node) -> Set[Node]:
    """All nodes reachable from ``start`` (including it)."""
    seen = {start}
    stack = [start]
    while stack:
        node = stack.pop()
        for succ in graph[node]:
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return seen
