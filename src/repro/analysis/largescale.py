"""Large-scale sampling of the converged network (asymptotics at scale).

The discrete-event runtime comfortably handles hundreds of nodes; the
paper's claims, however, are asymptotic ("with high probability",
``Omega(N/log^2 N)``). This module evaluates the *converged state* of
the rules directly — no messages, no event queue — so the Lemma 3.2/3.3
/3.5 and Theorem 3.6 experiments can run at ``N ~ 10^5``:

1. sample ``N`` random identifiers (the ring);
2. compute every node's Section 3.1 size and level estimate against the
   sorted ring (exactly the estimator the runtime uses);
3. derive the converged cut by the splitting rule's fixpoint: starting
   from the root, a component splits while its *hash home*'s level
   estimate exceeds its level. (From a fresh start merges never fire,
   so the fixpoint is exactly what the runtime's ``converge`` reaches —
   asserted against the real runtime in the test suite.)

The result records the cut's level histogram, per-node load, and the
Lemma 2.2/2.3 effective-width/depth bounds, which for uniform-ish cuts
are exact (see the metrics tests).
"""

from __future__ import annotations

import bisect
import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.chord.hashing import name_to_point
from repro.chord.identifiers import IdentifierSpace
from repro.core.decomposition import DecompositionTree
from repro.errors import StructureError

Path = Tuple[int, ...]


@dataclass
class SampledSystem:
    """A sampled ring plus every node's local estimates."""

    space: IdentifierSpace
    ids: List[int]  # sorted node identifiers
    size_estimates: List[float]  # n_v per node (ids order)
    level_estimates: List[int]  # ell_v per node (ids order)

    @property
    def n(self) -> int:
        return len(self.ids)

    def node_index_for_point(self, point: int) -> int:
        """Index of ``successor(point)`` in the sorted id list."""
        index = bisect.bisect_left(self.ids, point)
        return index % len(self.ids)


def sample_system(
    n: int,
    tree: DecompositionTree,
    seed: int = 0,
    step_multiplier: int = 4,
    space: IdentifierSpace = None,
) -> SampledSystem:
    """Sample a ring of ``n`` nodes and compute all local estimates.

    Identical mathematics to :class:`repro.chord.estimation` but
    vector-style over a sorted array, so it scales to ``n ~ 10^5``.
    """
    if n < 1:
        raise StructureError("need at least one node")
    space = space or IdentifierSpace()
    rng = random.Random(seed)
    ids = sorted({space.random_id(rng) for _ in range(n)})
    while len(ids) < n:  # vanishingly unlikely collisions
        ids.append(space.random_id(rng))
        ids = sorted(set(ids))
    size_estimates: List[float] = []
    level_estimates: List[int] = []
    phi = [tree.phi(level) for level in range(tree.max_level + 1)]
    circumference = float(space.size)
    for index in range(n):
        gap = (ids[(index + 1) % n] - ids[index]) % space.size
        if n == 1 or gap == 0:
            estimate = 1.0
        else:
            log_estimate = math.log2(circumference / gap)
            steps = max(1, step_multiplier * math.ceil(log_estimate))
            if steps >= n:
                estimate = float(n)
            else:
                span = (ids[(index + steps) % n] - ids[index]) % space.size
                estimate = steps / (span / circumference)
        size_estimates.append(estimate)
        level = 0
        for candidate in range(len(phi)):
            if phi[candidate] < estimate:
                level = candidate
        level_estimates.append(level)
    return SampledSystem(space, ids, size_estimates, level_estimates)


@dataclass
class ConvergedCut:
    """The converged cut of the splitting rule, with derived statistics."""

    paths_by_level: Dict[int, int]  # level -> component count
    loads: Dict[int, int] = field(default_factory=dict)  # node index -> components

    @property
    def num_components(self) -> int:
        return sum(self.paths_by_level.values())

    @property
    def min_level(self) -> int:
        return min(self.paths_by_level)

    @property
    def max_level(self) -> int:
        return max(self.paths_by_level)

    def width_bound(self) -> int:
        """Lemma 2.3: effective width >= 2^min_level (exact for uniform
        cuts, a lower bound otherwise)."""
        return 2 ** self.min_level

    def depth_bound(self) -> int:
        """Lemma 2.2: effective depth <= (k+1)(k+2)/2 for k = max level."""
        k = self.max_level
        return (k + 1) * (k + 2) // 2

    def max_load(self) -> int:
        return max(self.loads.values()) if self.loads else 0

    def mean_load(self, n: int) -> float:
        return self.num_components / n


def converge_cut(system: SampledSystem, tree: DecompositionTree) -> ConvergedCut:
    """The splitting-rule fixpoint: split every component whose hash
    home's level estimate exceeds the component's level."""
    result = ConvergedCut({})
    stack: List[Path] = [()]
    loads: Dict[int, int] = {}
    while stack:
        path = stack.pop()
        spec = tree.node(path)
        name = "cn/%d/%d" % (tree.width, tree.preorder_index(spec))
        home = system.node_index_for_point(name_to_point(name, system.space))
        home_level = system.level_estimates[home]
        if spec.level < home_level and not spec.is_leaf:
            stack.extend(child.path for child in spec.children())
            continue
        result.paths_by_level[spec.level] = result.paths_by_level.get(spec.level, 0) + 1
        loads[home] = loads.get(home, 0) + 1
    result.loads = loads
    return result


@dataclass
class ScaleReport:
    """One row of the large-scale asymptotics table."""

    n: int
    ell_star: int
    level_spread: Tuple[int, int]  # min/max node level estimate
    estimate_window_fraction: float  # inside [N/10, 10N]
    components: int
    components_per_node: float
    max_load: int
    max_load_normalised: float  # / (ln N / ln ln N)
    width_bound: int
    width_scale_ratio: float  # width_bound / (N / log^2 N)
    depth_bound: int
    depth_scale_ratio: float  # depth_bound / log^2 N


def measure_scale(n: int, tree: DecompositionTree, seed: int = 0) -> ScaleReport:
    """The full Lemma/Theorem measurement battery at size ``n``."""
    system = sample_system(n, tree, seed=seed)
    cut = converge_cut(system, tree)
    inside = sum(
        1 for estimate in system.size_estimates if n / 10 <= estimate <= 10 * n
    )
    phi = [tree.phi(level) for level in range(tree.max_level + 1)]
    ell_star = 0
    for level in range(len(phi)):
        if phi[level] < n:
            ell_star = level
    log_sq = math.log2(max(n, 2)) ** 2
    log_scale = math.log(n) / math.log(math.log(n)) if n >= 3 else 1.0
    return ScaleReport(
        n=n,
        ell_star=ell_star,
        level_spread=(min(system.level_estimates), max(system.level_estimates)),
        estimate_window_fraction=inside / n,
        components=cut.num_components,
        components_per_node=cut.num_components / n,
        max_load=cut.max_load(),
        max_load_normalised=cut.max_load() / log_scale,
        width_bound=cut.width_bound(),
        width_scale_ratio=cut.width_bound() / (n / log_sq),
        depth_bound=cut.depth_bound(),
        depth_scale_ratio=cut.depth_bound() / log_sq,
    )
