"""The paper's analytical predictions, as executable formulas.

Collects every closed-form quantity the paper derives so experiments can
print *predicted vs measured* side by side:

* ``phi(level)`` and Fact 1 (Section 3);
* ``ell_star(N)`` — the ideal level for system size ``N``;
* Lemma 2.2 / 2.3 depth and width bounds;
* Lemma 3.3's level-estimate window ``[ell* - 4, ell* + 4]``;
* Lemma 3.5's component-count window ``[N/6^5, 6^4 N]`` and the
  balls-and-bins maximum-load scale ``log N / log log N``;
* Theorem 3.6's asymptotic shapes ``O(log^2 N)`` and ``Omega(N/log^2 N)``;
* the static bitonic balancer count ``w log w (log w + 1) / 4``
  (Section 2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.decomposition import DecompositionTree
from repro.errors import StructureError


def static_balancer_count(width: int) -> int:
    """Balancers in a static ``BITONIC[w]`` (Section 2):
    ``w * log w * (log w + 1) / 4``."""
    log_w = width.bit_length() - 1
    if 2 ** log_w != width:
        raise StructureError("width must be a power of two, got %d" % width)
    return width * log_w * (log_w + 1) // 4


def max_load_scale(n: int) -> float:
    """The balls-and-bins maximum-load scale ``ln n / ln ln n``.

    Lemma 3.5 bounds the maximum number of components per node by
    ``O(log N / log log N)`` w.h.p.; experiments report the measured
    maximum divided by this scale.
    """
    if n < 3:
        return 1.0
    return math.log(n) / math.log(math.log(n))


@dataclass
class TheoryModel:
    """Predictions of the paper, specialised to one network width."""

    width: int

    def __post_init__(self):
        self.tree = DecompositionTree(self.width)

    # ------------------------------------------------------------------
    # Section 3: phi and ell*
    # ------------------------------------------------------------------
    def phi(self, level: int) -> int:
        """Components at ``level`` of ``T_w``; 1, 6, 24, 108, ..."""
        return self.tree.phi(level)

    def check_fact1(self) -> bool:
        """Fact 1: ``2 phi(k) <= phi(k+1) <= 6 phi(k)`` for all levels."""
        for level in range(self.tree.max_level):
            lo, hi = 2 * self.phi(level), 6 * self.phi(level)
            if not lo <= self.phi(level + 1) <= hi:
                return False
        return True

    def ell_star(self, n: int) -> int:
        """The ideal level for system size ``n``: the largest ``k`` with
        ``phi(k) < n`` (clamped to the levels that exist in ``T_w``)."""
        if n < 1:
            raise StructureError("system size must be positive, got %d" % n)
        best = 0
        for level in range(self.tree.max_level + 1):
            if self.phi(level) < n:
                best = level
        return best

    def level_for_estimate(self, estimate: float) -> int:
        """A node's level estimate ``ell_v`` from its size estimate
        ``n_v`` (Section 3.1, 'Local Level Estimates')."""
        best = 0
        for level in range(self.tree.max_level + 1):
            if self.phi(level) < estimate:
                best = level
        return best

    # ------------------------------------------------------------------
    # Section 2.3: depth and width bounds
    # ------------------------------------------------------------------
    def depth_bound(self, max_level: int) -> int:
        """Lemma 2.2: effective depth ``<= (k+1)(k+2)/2`` when every cut
        leaf is at level at most ``k``."""
        return (max_level + 1) * (max_level + 2) // 2

    def width_bound(self, min_level: int) -> int:
        """Lemma 2.3: effective width ``>= 2**k`` when every cut leaf is
        at level at least ``k``."""
        return 2 ** min_level

    # ------------------------------------------------------------------
    # Section 3.3: network-shape predictions
    # ------------------------------------------------------------------
    def level_window(self, n: int) -> range:
        """Lemma 3.3: all level estimates fall in ``[ell*-4, ell*+4]``
        w.h.p. (clamped to existing levels)."""
        star = self.ell_star(n)
        low = max(0, star - 4)
        high = min(self.tree.max_level, star + 4)
        return range(low, high + 1)

    def component_count_window(self, n: int):
        """Lemma 3.5: the total component count lies in
        ``[N/6^5, 6^4 N]`` w.h.p."""
        return (n / 6 ** 5, 6 ** 4 * n)

    def predicted_depth_scale(self, n: int) -> float:
        """Theorem 3.6 part 1: effective depth is ``O(log^2 N)``."""
        return math.log2(max(n, 2)) ** 2

    def predicted_width_scale(self, n: int) -> float:
        """Theorem 3.6 part 2: effective width is ``Omega(N / log^2 N)``."""
        return max(n, 2) / math.log2(max(n, 2)) ** 2

    def lookup_bound(self) -> int:
        """Section 3.5: a client needs at most ``log w - 1`` name lookups
        to find a live input component."""
        return self.width.bit_length() - 2
