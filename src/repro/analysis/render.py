"""Text rendering of decomposition trees, cuts and networks.

Regenerates the paper's figures as ASCII: Figure 2's tree-with-cut view
and Figure 3's component-graph view. Used by the figure benches, the
CLI and the examples; handy when debugging a cut by eye.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.core.cut import Cut, CutNetwork

Path = Tuple[int, ...]


def render_tree(tree, cut: Optional[Cut] = None, max_depth: Optional[int] = None) -> str:
    """An indented view of ``T_w``; cut members are marked ``<== member``.

    Subtrees below cut members are elided (they do not exist in the
    deployment), matching how the paper draws its cuts in Figure 2.
    """
    members: Set[Path] = set(cut.paths) if cut is not None else set()
    lines: List[str] = []

    def visit(spec, prefix: str, is_last: bool) -> None:
        connector = "" if not spec.path else ("`-- " if is_last else "|-- ")
        marker = "  <== member" if spec.path in members else ""
        lines.append(prefix + connector + spec.label() + marker)
        if spec.path in members:
            return
        if max_depth is not None and spec.level >= max_depth:
            if not spec.is_leaf:
                lines.append(prefix + ("    " if is_last else "|   ") + "...")
            return
        children = spec.children() if not spec.is_leaf else []
        extension = "" if not spec.path else ("    " if is_last else "|   ")
        for index, child in enumerate(children):
            visit(child, prefix + extension, index == len(children) - 1)

    visit(tree.root, "", True)
    return "\n".join(lines)


def render_network(network: CutNetwork) -> str:
    """The component graph of a cut network, layer by layer.

    Components are grouped by their longest-path depth from the input
    layer (the quantity effective depth maximises), with each member's
    fan-out listed — an ASCII version of the paper's Figure 3.
    """
    graph = network.member_graph()
    order = network.topological_order()
    inputs = set(network.input_layer())
    depth = {}
    for path in order:
        base = 1 if path in inputs else 0
        depth[path] = max(
            [base]
            + [depth[p] + 1 for p, succs in graph.items() if path in succs and p in depth]
        )
    layers = {}
    for path, d in depth.items():
        layers.setdefault(d, []).append(path)
    lines = []
    for layer_index in sorted(layers):
        lines.append("layer %d:" % layer_index)
        for path in sorted(layers[layer_index]):
            spec = network.states[path].spec
            succs = sorted(graph[path])
            if succs:
                arrow = " -> " + ", ".join(network.states[s].spec.label() for s in succs)
            else:
                arrow = " -> OUTPUT"
            tags = []
            if path in inputs:
                tags.append("in")
            if network.wiring.is_output_boundary(spec):
                tags.append("out")
            tag = (" [" + ",".join(tags) + "]") if tags else ""
            lines.append("  " + spec.label() + tag + arrow)
    return "\n".join(lines)


def render_step_histogram(counts, width: int = 40) -> str:
    """A bar chart of per-wire output counts (eyeball the step property)."""
    peak = max(counts) if counts else 0
    scale = width / peak if peak else 0
    lines = []
    for wire, count in enumerate(counts):
        bar = "#" * int(round(count * scale))
        lines.append("wire %3d | %-*s %d" % (wire, width, bar, count))
    return "\n".join(lines)
