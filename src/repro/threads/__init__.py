"""Shared-memory execution backend: OS threads through real balancers.

Everything before this package ran inside the discrete-event simulator
— one Python frame driving every token. Here the tokens are OS
threads: each ``fetch_and_inc`` call walks the compiled flat routing
tables of :mod:`repro.core.network` through genuinely atomic balancer
toggles (:class:`repro.core.atomics.ThreadSafeToggle`) and retires on a
per-output locked counter. This is the paper's raison d'être made
measurable — a counting network exists to beat a centralized counter
under contention, and :mod:`repro.threads.bench` measures exactly that
against :class:`LockedCounterBaseline`.
"""

from repro.threads.bench import (
    THREADS_BENCH_ID,
    THREADS_PROFILES,
    format_threads_results,
    run_threads_bench,
)
from repro.threads.network import (
    LockedCounterBaseline,
    ThreadedCountingNetwork,
    VerifyReport,
    values_form_range,
)

__all__ = [
    "LockedCounterBaseline",
    "THREADS_BENCH_ID",
    "THREADS_PROFILES",
    "ThreadedCountingNetwork",
    "VerifyReport",
    "format_threads_results",
    "run_threads_bench",
    "values_form_range",
]
