"""An in-process counting network driven by OS threads.

:class:`ThreadedCountingNetwork` consumes the flat
``table[layer][wire] -> (balancer, next_top, next_bottom)`` layout
compiled by :func:`repro.core.network.compile_topology` — the cybozu
``CountingNetwork4/8`` shape — with one :class:`ThreadSafeToggle` per
balancer (a GIL-atomic fetch-and-add) and one independently locked
retirement counter per output wire.

The retirement counters follow the exemplar's numbering: output ``j``'s
counter starts at ``j`` and every retirement fetch-adds ``width``, so
output ``j`` hands out ``j, j + width, j + 2*width, ...`` and the union
across outputs is exactly ``{0, 1, ..., total - 1}`` — *iff* the
network balances. :meth:`ThreadedCountingNetwork.verify` checks that
at quiescence (zero lost tokens plus the step property).

Striping, as far as Python allows: C code aligns each output counter to
its own cache line; here every output gets its *own object and its own
lock* (a :class:`LockedAtomicCounter` each, never one lock over the
whole array), so two threads retiring on different outputs contend on
nothing — the same pressure-spreading the paper's width buys, applied
to the lock table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.core.atomics import LockedAtomicCounter, ThreadSafeToggle
from repro.core.network import CompiledTopology, RoutingTable
from repro.errors import StructureError


@dataclass(frozen=True)
class VerifyReport:
    """Quiescent-state verdict of a threaded run.

    ``lost_tokens`` is expected minus retired (0 when every thread's
    token came out somewhere); ``step_ok`` is the step property — with
    ``total`` tokens through a ``width``-wide network, output ``j``
    must have retired exactly ``ceil((total - j) / width)``.
    """

    total_expected: int
    total_retired: int
    per_output: Tuple[int, ...]
    step_ok: bool

    @property
    def lost_tokens(self) -> int:
        return self.total_expected - self.total_retired

    @property
    def ok(self) -> bool:
        return self.lost_tokens == 0 and self.step_ok


def _step_counts(total: int, width: int) -> List[int]:
    """Per-output retirement counts the step property demands."""
    return [(total + width - 1 - j) // width for j in range(width)]


def values_form_range(values: Iterable[int], total: int) -> bool:
    """Whether the handed-out values are exactly ``{0 .. total-1}`` —
    every rank issued once, none skipped, none duplicated."""
    seen = list(values)
    return len(seen) == total and set(seen) == set(range(total))


class ThreadedCountingNetwork:
    """A counting network whose tokens are the calling threads.

    ``fetch_and_inc(wire)`` is the whole client API: enter on ``wire``,
    traverse one atomic toggle per layer, retire on the reached
    output's striped counter, return a globally unique rank. Safe to
    call from any number of threads concurrently with no external
    locking.
    """

    # repro: thread-safe: routing tables and the position map are frozen
    # after __init__ (reads only); every mutable cell is an atomics
    # helper (ThreadSafeToggle per balancer, LockedAtomicCounter per
    # output) reached through its named atomic operations.

    def __init__(self, topology: CompiledTopology) -> None:
        self.width = topology.width
        self.topology = topology
        # Flat layout, global balancer indices — read-only after init.
        self._tables: List[RoutingTable] = topology.flat_tables()  # repro: owned-by: single-writer
        self._position: Dict[int, int] = topology.position()  # repro: owned-by: single-writer
        # One atomic toggle per balancer, one striped (independently
        # locked) retirement counter per output, initialised to the
        # output index so ranks interleave across outputs.
        self._balancers: List[ThreadSafeToggle] = [  # repro: owned-by: shared
            ThreadSafeToggle() for _ in range(topology.num_balancers)
        ]
        self._outputs: List[LockedAtomicCounter] = [  # repro: owned-by: shared
            LockedAtomicCounter(j) for j in range(topology.width)
        ]

    def fetch_and_inc(self, wire: int) -> int:
        """Drive this thread's token from input ``wire`` to retirement;
        return the unique rank the reached output hands out."""
        if not 0 <= wire < self.width:
            raise StructureError("input wire %d out of range" % wire)
        balancers = self._balancers
        current = wire
        for table in self._tables:
            entry = table[current]
            if entry is None:
                continue
            index, top, bottom = entry
            current = top if balancers[index].flip() == 0 else bottom
        return self._outputs[self._position[current]].fetch_increment(self.width)

    def counts(self) -> List[int]:
        """Tokens retired per output (counter value decoded back from
        the ``j + n * width`` numbering). Exact only at quiescence."""
        width = self.width
        return [
            (counter.get() - j) // width
            for j, counter in enumerate(self._outputs)
        ]

    def verify(self, total: int) -> VerifyReport:
        """Check conservation and the step property at quiescence —
        call only after every driving thread has been joined."""
        per_output = self.counts()
        return VerifyReport(
            total_expected=total,
            total_retired=sum(per_output),
            per_output=tuple(per_output),
            step_ok=per_output == _step_counts(total, self.width),
        )


class LockedCounterBaseline:
    """The centralized counter the network exists to beat.

    Same ``fetch_and_inc`` surface as the network (the ``wire``
    argument is accepted and ignored) so the bench drives both through
    one code path; every thread funnels through the one lock.
    """

    width = 1

    def __init__(self) -> None:
        self._ranks = LockedAtomicCounter(0)

    def fetch_and_inc(self, wire: int) -> int:
        return self._ranks.fetch_increment()

    def counts(self) -> List[int]:
        return [self._ranks.get()]

    def verify(self, total: int) -> VerifyReport:
        retired = self._ranks.get()
        return VerifyReport(
            total_expected=total,
            total_retired=retired,
            per_output=(retired,),
            step_ok=retired == total,
        )


__all__ = [
    "LockedCounterBaseline",
    "ThreadedCountingNetwork",
    "VerifyReport",
    "values_form_range",
]
