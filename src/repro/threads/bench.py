"""The contended fetch-and-inc benchmark (``repro bench --backend threads``).

Sweeps real OS threads across network widths and pits the threaded
counting network against :class:`LockedCounterBaseline` — the single
locked counter the paper's construction exists to beat. Each cell
drives ``threads x ops_per_thread`` tokens, then checks the two
invariants that make the numbers meaningful:

* **zero lost tokens** — every ``fetch_and_inc`` call retired on some
  output, and the handed-out ranks are exactly ``{0 .. total-1}``
  (no duplicate, no gap: the network really is a counter);
* **the step property at quiescence** — per-output retirement counts
  form the exact staircase ``ceil((total - j) / width)``.

A cell that fails either raises :class:`BenchmarkError`: this bench
never emits a payload for a run that miscounted.

Unlike the simulator bench, wall-clock throughput here is genuinely
nondeterministic (it *is* the measurement), so these scenarios live in
their own registry (:data:`THREADS_PROFILES`) and their own trajectory
id (:data:`THREADS_BENCH_ID`) rather than inside the seed-stable
``BENCH_5`` families — CI treats the threads sweep as a non-gating
smoke signal, not a regression gate.

Under the GIL only one thread interprets bytecode at a time, so do not
expect the network to *beat* the baseline wall-clock here — the sweep
measures how throughput degrades with contention (the single lock
serialises and convoys; the network's striped toggles and per-output
locks spread the pressure), and becomes a true parallel speedup
measurement on free-threaded builds. ``docs/architecture.md`` has the
full caveat.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Protocol, Sequence, Tuple

from repro.bench.result import ScenarioResult
from repro.core.bitonic import bitonic_network
from repro.errors import BenchmarkError
from repro.threads.network import (
    LockedCounterBaseline,
    ThreadedCountingNetwork,
    VerifyReport,
    values_form_range,
)

SCHEMA_VERSION = 2

#: The threads backend's own trajectory id — a separate family from the
#: simulator's ``BENCH_5`` because wall-clock contention numbers are
#: machine- and schedule-dependent.
THREADS_BENCH_ID = "BENCH_THREADS_1"

#: Per-profile sweep parameters: thread counts x network widths, each
#: driving ``ops_per_thread`` tokens per thread, plus one locked-counter
#: baseline cell per thread count.
THREADS_PROFILES: Dict[str, Dict[str, Tuple[int, ...]]] = {
    "smoke": {"threads": (1, 2, 4), "widths": (4, 8), "ops_per_thread": (2000,)},
    "small": {"threads": (1, 2, 4, 8), "widths": (4, 8, 16), "ops_per_thread": (5000,)},
    "large": {
        "threads": (1, 2, 4, 8, 16),
        "widths": (8, 16, 32),
        "ops_per_thread": (20000,),
    },
}


class _FetchAndInc(Protocol):
    """What the driver needs: the network and the baseline both hand
    out unique ranks and can report their quiescent state."""

    def fetch_and_inc(self, wire: int) -> int:
        ...  # pragma: no cover - protocol stub

    def verify(self, total: int) -> VerifyReport:
        ...  # pragma: no cover - protocol stub


@dataclass
class _DriveOutcome:
    elapsed: float
    values: List[int]


def _drive(
    target: _FetchAndInc,
    threads: int,
    ops_per_thread: int,
    entry_wires: Sequence[int],
) -> _DriveOutcome:
    """Hammer ``target.fetch_and_inc`` from ``threads`` OS threads.

    All workers block on a barrier so the clock starts with every
    thread ready; each records its ranks into its own private list
    (merged after the join — workers share nothing but the target).
    """
    per_thread: List[List[int]] = [[] for _ in range(threads)]
    start_gate = threading.Barrier(threads + 1)

    def work(tid: int) -> None:
        record = per_thread[tid].append
        fetch = target.fetch_and_inc
        wire = entry_wires[tid]
        start_gate.wait()
        for _ in range(ops_per_thread):
            record(fetch(wire))

    workers = [
        threading.Thread(target=work, args=(tid,), name="bench-worker-%d" % tid)
        for tid in range(threads)
    ]
    for worker in workers:
        worker.start()
    start_gate.wait()
    begin = perf_counter()
    for worker in workers:
        worker.join()
    elapsed = perf_counter() - begin
    values = [rank for ranks in per_thread for rank in ranks]
    return _DriveOutcome(elapsed=max(elapsed, 1e-9), values=values)


def _require_green(
    name: str, target: _FetchAndInc, outcome: _DriveOutcome, total: int
) -> None:
    """Fail the whole bench if a cell miscounted."""
    report = target.verify(total)
    if not report.ok:
        raise BenchmarkError(
            "%s failed verification: %d lost tokens, step property %s "
            "(per-output %s)"
            % (
                name,
                report.lost_tokens,
                "ok" if report.step_ok else "VIOLATED",
                list(report.per_output),
            )
        )
    if not values_form_range(outcome.values, total):
        raise BenchmarkError(
            "%s handed out %d ranks that do not form 0..%d — duplicate or "
            "skipped values under contention" % (name, len(outcome.values), total - 1)
        )


def run_threads_bench(profile: str = "smoke", seed: int = 0) -> List[ScenarioResult]:
    """Run the full threads x width sweep for ``profile``.

    ``seed`` only chooses the (fixed-per-thread) entry-wire
    assignment; wall-clock rates are inherently machine-dependent.
    Every cell is verified before its result is recorded.
    """
    try:
        params = THREADS_PROFILES[profile]
    except KeyError:
        raise BenchmarkError(
            "unknown threads profile %r (choose from %s)"
            % (profile, ", ".join(sorted(THREADS_PROFILES)))
        ) from None
    thread_counts = params["threads"]
    widths = params["widths"]
    ops_per_thread = params["ops_per_thread"][0]
    rng = random.Random(seed)

    results: List[ScenarioResult] = []
    baseline_rates: Dict[int, float] = {}
    for threads in thread_counts:
        baseline = LockedCounterBaseline()
        total = threads * ops_per_thread
        outcome = _drive(baseline, threads, ops_per_thread, [0] * threads)
        name = "locked_counter_t%d" % threads
        _require_green(name, baseline, outcome, total)
        rate = total / outcome.elapsed
        baseline_rates[threads] = rate
        results.append(
            ScenarioResult(
                name=name,
                ops_per_sec=rate,
                events=total,
                metrics={
                    "threads": threads,
                    "width": 1,
                    "lost_tokens": 0,
                    "step_ok": 1,
                    "unique_values": 1,
                },
            )
        )

    for width in widths:
        topology = bitonic_network(width).topology
        # One seeded permutation per width: threads enter on distinct
        # wires first, wrapping round-robin past ``width`` threads.
        permutation = rng.sample(range(width), width)
        for threads in thread_counts:
            network = ThreadedCountingNetwork(topology)
            total = threads * ops_per_thread
            entry_wires = [permutation[tid % width] for tid in range(threads)]
            outcome = _drive(network, threads, ops_per_thread, entry_wires)
            name = "network_w%d_t%d" % (width, threads)
            _require_green(name, network, outcome, total)
            rate = total / outcome.elapsed
            results.append(
                ScenarioResult(
                    name=name,
                    ops_per_sec=rate,
                    events=total,
                    metrics={
                        "threads": threads,
                        "width": width,
                        "depth": topology.depth,
                        "lost_tokens": 0,
                        "step_ok": 1,
                        "unique_values": 1,
                        "speedup_vs_locked_counter": rate / baseline_rates[threads],
                    },
                )
            )
    return results


def to_threads_json_payload(
    results: List[ScenarioResult], profile: str, seed: int
) -> Dict[str, object]:
    """Schema-2-shaped payload with the threads trajectory id. The
    extra ``backend`` key distinguishes it from simulator documents;
    ``verified`` records that every cell passed its quiescence check
    (a failed cell never reaches emission — the run raises)."""
    return {
        "schema": SCHEMA_VERSION,
        "bench_id": THREADS_BENCH_ID,
        "backend": "threads",
        "profile": profile,
        "seed": seed,
        "verified": True,
        "scenarios": {result.name: result.to_json() for result in results},
    }


def format_threads_results(results: List[ScenarioResult]) -> str:
    """Human-readable sweep table (same layout as the simulator bench)."""
    from repro.bench.harness import format_results

    return format_results(results)


__all__ = [
    "THREADS_BENCH_ID",
    "THREADS_PROFILES",
    "format_threads_results",
    "run_threads_bench",
    "to_threads_json_payload",
]
