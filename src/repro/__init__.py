"""repro — a reproduction of *Adaptive Counting Networks* (Tirthapura, ICDCS 2005).

The package implements the paper's adaptive bitonic counting network and
every substrate it depends on:

``repro.core``
    Counting-network theory: balancers, static networks (bitonic,
    periodic, diffracting tree), the recursive decomposition tree ``T_w``
    of Section 2, cuts, the single-counter component model, split/merge
    state transfer, and the effective width/depth metrics of Section 1.4.

``repro.chord``
    The Chord-style peer-to-peer substrate of Section 1.4/3: random
    identifiers on the unit ring, successor pointers, finger-table
    lookups, consistent hashing of component names, and the decentralised
    size-estimation scheme of Section 3.1.

``repro.sim``
    A seeded discrete-event message-passing simulator used to execute the
    distributed protocol.

``repro.runtime``
    The distributed runtime: component hosting, token routing, the
    split/merge protocols with token buffering (Section 2.2), the
    splitting/merging rules (Section 3.2), membership changes and crash
    recovery (Section 3.4), and input-component lookup (Section 3.5).

``repro.apps``
    The applications the paper motivates: a distributed counter, a load
    balancer, and a producer-consumer matcher built from two back-to-back
    counting networks.

``repro.analysis``
    Graph metrics (vertex-disjoint paths, longest paths), the paper's
    analytical predictions (phi, ell-star, depth/width bounds), and
    statistics helpers for the experiment harness.

Quickstart
----------

>>> from repro import AdaptiveCountingSystem
>>> system = AdaptiveCountingSystem(width=16, seed=7)
>>> for _ in range(10):
...     system.add_node()
>>> system.converge()
>>> values = [system.next_value() for _ in range(20)]
>>> sorted(values) == list(range(20))
True
"""

from repro.core.decomposition import (
    ComponentKind,
    ComponentSpec,
    DecompositionTree,
)
from repro.core.cut import Cut, CutNetwork
from repro.core.wiring import MergerConvention
from repro.core.verification import has_step_property, check_step_property
from repro.runtime.system import AdaptiveCountingSystem

__all__ = [
    "ComponentKind",
    "ComponentSpec",
    "DecompositionTree",
    "Cut",
    "CutNetwork",
    "MergerConvention",
    "has_step_property",
    "check_step_property",
    "AdaptiveCountingSystem",
    "__version__",
]

__version__ = "1.0.0"
