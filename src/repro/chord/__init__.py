"""Chord-style peer-to-peer substrate (Sections 1.4 and 3 of the paper).

The paper layers its adaptive counting network on an overlay providing
(a) random node identifiers on a unit ring, (b) a distributed hash
mapping object names to live nodes, and (c) efficient lookup. This
subpackage provides exactly that subset of Chord:

* :mod:`repro.chord.identifiers` — the identifier space and distances;
* :mod:`repro.chord.ring` — the ring membership structure with joins,
  graceful leaves and crashes;
* :mod:`repro.chord.hashing` — consistent hashing of component names;
* :mod:`repro.chord.fingers` — finger tables and O(log N) greedy lookup
  with hop counting;
* :mod:`repro.chord.estimation` — the two-step decentralised system-size
  estimator of Section 3.1 and the level estimates built on it;
* :mod:`repro.chord.protocol` — the *live* Chord maintenance protocol
  (stabilize/notify, fix_fingers, successor lists, failure detection) as
  messages over the simulator, discharging the substrate assumption.
"""

from repro.chord.identifiers import IdentifierSpace
from repro.chord.ring import ChordNode, ChordRing
from repro.chord.hashing import name_to_point
from repro.chord.estimation import SizeEstimator
from repro.chord.protocol import ChordProtocolNetwork

__all__ = [
    "IdentifierSpace",
    "ChordNode",
    "ChordRing",
    "name_to_point",
    "SizeEstimator",
    "ChordProtocolNetwork",
]
