"""Consistent hashing of object names onto the ring.

The paper maps the component named ``b`` to node ``h(b)`` where ``h`` is
the distributed hash provided by the underlying system: hash the name to
a ring point and take its successor. We use SHA-1 (Chord's choice)
truncated to the identifier space.
"""

from __future__ import annotations

import hashlib

from repro.chord.identifiers import IdentifierSpace
from repro.chord.ring import ChordNode, ChordRing


def name_to_point(name: str, space: IdentifierSpace) -> int:
    """Deterministically hash a name to a ring point."""
    digest = hashlib.sha1(name.encode("utf-8")).digest()
    return int.from_bytes(digest, "big") % space.size


def home_node(ring: ChordRing, name: str) -> ChordNode:
    """The live node responsible for ``name``: the successor of its point."""
    return ring.successor(name_to_point(name, ring.space))
