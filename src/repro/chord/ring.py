"""The Chord ring: membership and successor structure.

The ring is the ground truth of the overlay: a sorted set of node
identifiers. Joins insert a node at its random identifier; graceful
leaves and crashes remove it (the difference — whether hosted state is
handed off or lost — is handled by the runtime layer on top,
Section 3.4 of the paper). ``successor``/``succ_k`` provide the
primitives the size estimator (Section 3.1) and the consistent hash are
built from.
"""

from __future__ import annotations

import bisect
import random
from typing import Dict, Iterator, List, Optional

from repro.chord.identifiers import IdentifierSpace
from repro.core.atomics import AtomicCounter
from repro.errors import MembershipError, RingError


class ChordNode:
    """One physical node: an identifier plus a human-readable name."""

    __slots__ = ("node_id", "name")

    def __init__(self, node_id: int, name: str):
        self.node_id = node_id
        self.name = name

    def __repr__(self):
        return "ChordNode(%s, id=%#x)" % (self.name, self.node_id)


class ChordRing:
    """The ring membership structure.

    Maintains the sorted identifier list so ``successor`` is a binary
    search; join/leave are O(N) list edits, which is fine at the scales
    the experiments run (N up to tens of thousands).
    """

    def __init__(self, space: Optional[IdentifierSpace] = None, seed: int = 0):
        self.space = space or IdentifierSpace()
        self.rng = random.Random(seed)
        self._ids: List[int] = []
        self._nodes: Dict[int, ChordNode] = {}
        self._join_counter = AtomicCounter()  # repro: owned-by: shared
        #: Bumped on every membership change; derived structures (the
        #: finger-table cache below, external memos) key off it.
        self._version = 0
        self._finger_cache: Dict[int, List[ChordNode]] = {}
        self._scan_cache: Dict[int, List[ChordNode]] = {}

    @property
    def version(self) -> int:
        """Monotonic membership-change counter (joins and removals)."""
        return self._version

    def _membership_changed(self) -> None:
        self._version += 1
        self._finger_cache = {}
        self._scan_cache = {}

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ids)

    def __iter__(self) -> Iterator[ChordNode]:
        return (self._nodes[node_id] for node_id in self._ids)

    def nodes(self) -> List[ChordNode]:
        """All nodes in identifier order."""
        return [self._nodes[node_id] for node_id in self._ids]

    def has_node(self, node_id: int) -> bool:
        return node_id in self._nodes

    def node(self, node_id: int) -> ChordNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise MembershipError("no node with id %#x" % node_id) from None

    def join(self, name: Optional[str] = None, node_id: Optional[int] = None) -> ChordNode:
        """Add a node with a fresh random identifier (or a forced one)."""
        if node_id is None:
            node_id = self.space.random_id(self.rng)
            while node_id in self._nodes:  # vanishingly rare at 64 bits
                node_id = self.space.random_id(self.rng)
        else:
            self.space.check(node_id)
            if node_id in self._nodes:
                raise MembershipError("node id %#x already on the ring" % node_id)
        joined = self._join_counter.fetch_increment()
        if name is None:
            name = "node-%d" % joined
        node = ChordNode(node_id, name)
        bisect.insort(self._ids, node_id)
        self._nodes[node_id] = node
        self._membership_changed()
        return node

    def remove(self, node_id: int) -> ChordNode:
        """Remove a node (used for both graceful leaves and crashes)."""
        node = self.node(node_id)
        index = bisect.bisect_left(self._ids, node_id)
        del self._ids[index]
        del self._nodes[node_id]
        self._membership_changed()
        return node

    # ------------------------------------------------------------------
    # successor structure
    # ------------------------------------------------------------------
    def successor(self, point: int) -> ChordNode:
        """The first node at or clockwise-after ``point``."""
        if not self._ids:
            raise RingError("successor lookup on an empty ring")
        self.space.check(point)
        index = bisect.bisect_left(self._ids, point)
        if index == len(self._ids):
            index = 0
        return self._nodes[self._ids[index]]

    def finger_table(self, node_id: int) -> List[ChordNode]:
        """Chord fingers of a node: ``finger[i] = successor(n + 2^i)``.

        Memoised until the next membership change — greedy lookups ask
        for the same node's table O(log N) times per query, and the old
        rebuild-per-call behaviour dominated the token hot path (~190k
        ``successor`` bisects per 600 injections in the churn bench).
        """
        cached = self._finger_cache.get(node_id)
        if cached is None:
            if not self._ids:
                raise RingError("finger table on an empty ring")
            ids = self._ids
            nodes = self._nodes
            size = self.space.size
            length = len(ids)
            insert = bisect.bisect_left
            cached = []
            for i in range(self.space.bits):
                point = (node_id + (1 << i)) % size
                index = insert(ids, point)
                if index == length:
                    index = 0
                cached.append(nodes[ids[index]])
            self._finger_cache[node_id] = cached
        return cached

    def scan_fingers(self, node_id: int) -> List[ChordNode]:
        """The *distinct* fingers of a node, furthest offset first.

        Greedy lookup scans fingers from the largest power-of-two offset
        down for the closest preceding node; consecutive offsets often
        land on the same successor, so the full ``space.bits``-entry
        table collapses to ~log N candidates. Memoised until the next
        membership change, like :meth:`finger_table` (from which it is
        derived, preserving scan order exactly — duplicates in the full
        table form consecutive runs, so adjacent dedup is lossless).
        """
        cached = self._scan_cache.get(node_id)
        if cached is None:
            cached = []
            last = None
            for finger in reversed(self.finger_table(node_id)):
                finger_id = finger.node_id
                if finger_id != last:
                    cached.append(finger)
                    last = finger_id
            self._scan_cache[node_id] = cached
        return cached

    def succ_k(self, node_id: int, k: int) -> ChordNode:
        """The k-th clockwise successor of a node (``succ_1`` is the next
        node; ``k`` wraps modulo the ring size)."""
        if k < 1:
            raise RingError("succ_k requires k >= 1, got %d" % k)
        index = bisect.bisect_left(self._ids, node_id)
        if index >= len(self._ids) or self._ids[index] != node_id:
            raise MembershipError("no node with id %#x" % node_id)
        return self._nodes[self._ids[(index + k) % len(self._ids)]]

    def predecessor(self, node_id: int) -> ChordNode:
        """The node immediately counter-clockwise of ``node_id``."""
        index = bisect.bisect_left(self._ids, node_id)
        if index >= len(self._ids) or self._ids[index] != node_id:
            raise MembershipError("no node with id %#x" % node_id)
        return self._nodes[self._ids[(index - 1) % len(self._ids)]]

    def distance_fraction(self, from_id: int, to_id: int) -> float:
        """The paper's ``d(u, v)`` on the unit-circumference ring."""
        return self.space.distance_fraction(from_id, to_id)
