"""The Chord identifier space.

The paper works on a ring of circumference 1 with node identifiers drawn
uniformly at random. We use ``m``-bit integer identifiers (default
``m = 64``) and expose distances as exact fractions of the circumference
(converted to float only at the boundary), which keeps all ring
arithmetic integral and reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import RingError


@dataclass(frozen=True)
class IdentifierSpace:
    """An ``m``-bit circular identifier space."""

    bits: int = 64

    def __post_init__(self):
        if self.bits < 8:
            raise RingError("identifier space needs at least 8 bits")

    @property
    def size(self) -> int:
        """Number of points on the ring (the circumference, in points)."""
        return 1 << self.bits

    def check(self, point: int) -> int:
        if not 0 <= point < self.size:
            raise RingError("identifier %d outside the %d-bit space" % (point, self.bits))
        return point

    def random_id(self, rng: random.Random) -> int:
        """A uniformly random identifier (the paper's random-ids model)."""
        return rng.getrandbits(self.bits)

    def clockwise_distance(self, start: int, end: int) -> int:
        """Points traversed moving clockwise from ``start`` to ``end``.

        Zero iff ``start == end``; this is the paper's ``d(u, v)`` scaled
        by the circumference.
        """
        self.check(start)
        self.check(end)
        return (end - start) % self.size

    def fraction(self, distance: int) -> float:
        """A ring distance as a fraction of the unit circumference."""
        return distance / self.size

    def distance_fraction(self, start: int, end: int) -> float:
        """``d(u, v)`` on the paper's unit-circumference ring."""
        return self.fraction(self.clockwise_distance(start, end))
