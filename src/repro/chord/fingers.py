"""Finger tables and greedy Chord lookup, with hop counting.

The paper assumes "an underlying routing service which provides
efficient routing to an object given the object's name". We implement
Chord's finger-table routing so experiments can report realistic hop
counts (O(log N)) for token forwarding and component lookup. Finger
tables are computed from the ground-truth ring on demand — the paper
does not study stabilisation-protocol dynamics, so modelling stale
fingers would add noise without touching any claim.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.chord.hashing import name_to_point
from repro.chord.ring import ChordNode, ChordRing
from repro.errors import RingError


def finger_table(ring: ChordRing, node_id: int) -> List[ChordNode]:
    """Chord fingers of a node: ``finger[i] = successor(n + 2^i)``.

    Delegates to :meth:`ChordRing.finger_table`, which memoises tables
    until the next membership change; callers must not mutate the
    returned list.
    """
    return ring.finger_table(node_id)


def _in_open_interval(space_size: int, left: int, right: int, point: int) -> bool:
    """Whether ``point`` lies clockwise-strictly between ``left`` and ``right``."""
    return (point - left) % space_size < (right - left) % space_size and point != left


def lookup(ring: ChordRing, start_id: int, key_point: int) -> Tuple[ChordNode, int]:
    """Greedy finger routing from ``start_id`` to ``successor(key_point)``.

    Returns ``(owner, hops)`` where ``hops`` counts node-to-node
    forwardings (0 when the start node already owns the key).
    """
    if len(ring) == 0:
        raise RingError("lookup on an empty ring")
    current = ring.node(start_id)
    hops = 0
    # With a single node, that node owns everything.
    if len(ring) == 1:
        return current, hops
    size = ring.space.size
    scan_of = ring.scan_fingers
    succ_of = ring.succ_k
    while True:
        current_id = current.node_id
        # The successor comes from a plain bisect, not the finger
        # table: terminal hops must not pay for building a full table.
        # The interval checks are inlined — this loop dominates
        # injection-time hop accounting.
        succ = succ_of(current_id, 1)
        succ_id = succ.node_id
        key_offset = (key_point - current_id) % size
        # The key is owned by current's successor if it lies in (current, succ].
        if (
            key_offset < (succ_id - current_id) % size and key_point != current_id
        ) or key_point == succ_id:
            if succ_id != current_id:
                hops += 1
            return succ, hops
        if key_point == current_id:
            return current, hops
        # Forward to the closest preceding finger.
        next_node = succ
        for finger in scan_of(current_id):
            finger_id = finger.node_id
            if (finger_id - current_id) % size < key_offset and finger_id != current_id:
                next_node = finger
                break
        if next_node.node_id == current_id:
            return current, hops
        current = next_node
        hops += 1


def lookup_name(ring: ChordRing, start_id: int, name: str) -> Tuple[ChordNode, int]:
    """Route to the home node of ``name``; returns ``(owner, hops)``."""
    return lookup(ring, start_id, name_to_point(name, ring.space))
