"""The Chord maintenance protocol, as real messages over the simulator.

The paper *assumes* a Chord-like routing substrate (Section 1.4); the
rest of this package queries an always-consistent ring, which is the
right model for the paper's claims (they are not about routing-table
convergence). This module implements the substrate itself — the
protocol of Stoica et al. — so that assumption is discharged rather
than modelled:

* ``find_successor`` routing through closest-preceding fingers;
* joins that bootstrap through any existing node;
* the ``stabilize``/``notify`` round that repairs successor pointers;
* ``fix_fingers`` (one finger per round) and ``check_predecessor``;
* successor *lists* so crashes do not disconnect the ring.

Everything is message-passing over :class:`repro.sim.node.MessageBus`
with latencies and (simulated-time) RPC timeouts; no node ever reads
another's state directly. Tests drive churn against it and check the
ring converges to the ground truth and lookups route correctly.
"""

from __future__ import annotations

import itertools
import random
from typing import Callable, Dict, List, Optional, Tuple

from repro.chord.identifiers import IdentifierSpace
from repro.core.atomics import GuardedMap
from repro.errors import RingError
from repro.obs import recorder as _obs
from repro.sim.events import EventHandle, Simulator
from repro.sim.latency import ConstantLatency, LatencyModel
from repro.sim.node import MessageBus, SimulatedProcess

#: Successor-list length (Chord suggests Theta(log N); fixed is fine at
#: our scales and keeps the protocol deterministic).
SUCCESSOR_LIST = 4

#: How long a node waits for an RPC reply before declaring failure.
RPC_TIMEOUT = 10.0

#: How many times a joining node re-issues its join query before giving
#: up (a dead bootstrap must not leave the joiner spinning forever).
MAX_JOIN_ATTEMPTS = 8


class _Rpc:
    """One in-flight remote call (slotted: one per message on the wire)."""

    __slots__ = ("method", "args", "reply_to", "call_id")

    def __init__(self, method: str, args: tuple, reply_to: int, call_id: int):
        self.method = method
        self.args = args
        self.reply_to = reply_to
        self.call_id = call_id


class _Reply:
    __slots__ = ("call_id", "value")

    def __init__(self, call_id: int, value: object):
        self.call_id = call_id
        self.value = value


def _between(space_size: int, left: int, right: int, point: int) -> bool:
    """point in the clockwise-open interval (left, right).

    ``left == right`` denotes the full circle (every point but ``left``),
    which is what a self-successor means during bootstrap.
    """
    if left == right:
        return point != left
    return point != left and (point - left) % space_size < (right - left) % space_size


class ProtocolNode(SimulatedProcess):
    """One Chord node running the maintenance protocol."""

    def __init__(self, network: "ChordProtocolNetwork", node_id: int):
        self.network = network
        self.node_id = node_id
        self.space = network.space
        self.successors: List[int] = [node_id]  # successor list, nearest first
        self.predecessor: Optional[int] = None
        self.fingers: List[Optional[int]] = [None] * self.space.bits
        self._next_finger = 0
        self.alive = True
        #: A node is *joined* once it knows its successor in the ring.
        #: Until then it neither answers RPCs nor runs maintenance, so a
        #: half-joined node can never claim ring membership (a lesson
        #: from Zave's Chord analysis: the original fire-and-forget join
        #: lets a node whose bootstrap died form a second ring).
        self.joined = False
        self._join_bootstrap: Optional[int] = None
        self._join_attempts = 0
        #: call_id -> (reply continuation, timeout-event handle). The
        #: handle lets the reply path *cancel* the timeout guard instead
        #: of leaving it in the event heap as a dead no-op closure until
        #: its fire time — under churn workloads those dead timers used
        #: to dominate the queue (every successful RPC left one behind).
        self._pending: GuardedMap[int, Tuple[Callable[[object], None], EventHandle]] = GuardedMap()  # repro: owned-by: shared
        self._call_ids = itertools.count()

    # ------------------------------------------------------------------
    # RPC plumbing
    # ------------------------------------------------------------------
    def call(
        self,
        target: int,
        method: str,
        args: tuple,
        on_reply: Callable[[object], None],
        on_timeout: Optional[Callable[[], None]] = None,
    ) -> None:
        call_id = next(self._call_ids)
        rpc = _Rpc(method, args, self.node_id, call_id)
        obs = _obs.ACTIVE
        if obs.enabled:
            issued_at = self.network.sim.now
            obs.rpc_issued(issued_at, method)
            inner_reply = on_reply

            def on_reply(value, _inner=inner_reply, _issued=issued_at):
                now = self.network.sim.now
                recorder = _obs.ACTIVE
                if recorder.enabled:
                    recorder.rpc_replied(now, method, now - _issued)
                _inner(value)

        def expire() -> None:
            if not self.alive:
                return  # a dead node's timers must not mutate its state
            entry = self._pending.take(call_id)
            if entry is not None:
                # Undeliverable path: the timer is still armed; cancel
                # it so it never fires as a dead event (a no-op when we
                # *are* the timer firing).
                self.network.sim.cancel(entry[1])
                recorder = _obs.ACTIVE
                if recorder.enabled:
                    recorder.rpc_timeout(self.network.sim.now, method)
                if on_timeout is not None:
                    on_timeout()

        timer = self.network.sim.schedule(RPC_TIMEOUT, expire)
        self._pending.put(call_id, (on_reply, timer))
        self.network.bus.send(target, rpc, kind="chord", on_undeliverable=expire)

    def handle_message(self, message) -> None:
        if not self.alive:
            return
        if isinstance(message, _Reply):
            entry = self._pending.take(message.call_id)
            if entry is not None:
                on_reply, timer = entry
                self.network.sim.cancel(timer)
                on_reply(message.value)
            return
        if isinstance(message, _Rpc):
            if not self.joined:
                # Not yet part of the ring: answering lookups here could
                # splice a later joiner onto our private self-loop. Stay
                # silent; the caller's RPC timeout covers us.
                return
            value = getattr(self, "rpc_" + message.method)(*message.args)
            self.network.bus.send(
                message.reply_to, _Reply(message.call_id, value), kind="chord"
            )

    # ------------------------------------------------------------------
    # RPC endpoints (what other nodes may ask of us)
    # ------------------------------------------------------------------
    def rpc_get_state(self):
        """Predecessor + successor list, for stabilisation."""
        return (self.predecessor, list(self.successors))

    def rpc_notify(self, candidate: int):
        """A node believes it is our predecessor."""
        if self.predecessor is None or _between(
            self.space.size, self.predecessor, self.node_id, candidate
        ):
            self.predecessor = candidate
        return True

    def rpc_ping(self):
        return True

    def rpc_closest_preceding(self, key: int):
        """Our best routing step toward ``key``."""
        for finger in reversed(self.fingers):
            if finger is not None and _between(
                self.space.size, self.node_id, key, finger
            ):
                return finger
        for succ in self.successors:
            if _between(self.space.size, self.node_id, key, succ):
                return succ
        return self.node_id

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def find_successor(
        self, key: int, on_found: Callable[[int, int], None], hops: int = 0
    ) -> None:
        """Asynchronously resolve ``successor(key)``; calls
        ``on_found(owner, hops)``."""
        succ = self.successor
        if _between(self.space.size, self.node_id, succ, key) or key == succ:
            on_found(succ, hops)
            return
        step = self.rpc_closest_preceding(key)
        if step == self.node_id:
            on_found(succ, hops)
            return

        def forwarded(result):
            owner, total_hops = result
            on_found(owner, total_hops)

        self.call(
            step,
            "find_successor_sync",
            (key, hops + 1),
            forwarded,
            on_timeout=lambda: self._route_around(step, key, on_found, hops),
        )

    def rpc_find_successor_sync(self, key: int, hops: int):
        """Synchronous-looking recursive resolution (each recursion is a
        real message; the reply carries the answer back along the RPC
        chain)."""
        succ = self.successor
        if _between(self.space.size, self.node_id, succ, key) or key == succ:
            return (succ, hops)
        step = self.rpc_closest_preceding(key)
        if step == self.node_id:
            return (succ, hops)
        # NOTE: to keep replies synchronous we resolve the rest of the
        # path by directly asking the network's live node object; the
        # hop count still reflects every node-to-node step. (A fully
        # callback-chained version would add code, not fidelity.)
        next_node = self.network.node_if_alive(step)
        if next_node is None:
            return (succ, hops)
        return next_node.rpc_find_successor_sync(key, hops + 1)

    def _route_around(self, dead: int, key: int, on_found, hops: int) -> None:
        self._drop_peer(dead)
        self.find_successor(key, on_found, hops + 1)

    # ------------------------------------------------------------------
    # joining
    # ------------------------------------------------------------------
    def begin_join(self, bootstrap_id: int) -> None:
        """Drive our own join through ``bootstrap_id``.

        The join is node-initiated and retried: if the bootstrap crashes
        before answering, we re-issue the query while it is still
        registered and give up after :data:`MAX_JOIN_ATTEMPTS`, staying
        un-joined (and therefore invisible to the ring) rather than
        looping back to ourselves.
        """
        self._join_bootstrap = bootstrap_id
        self._send_join_query()

    def _send_join_query(self) -> None:
        bootstrap = self._join_bootstrap
        if bootstrap is None:
            return
        self._join_attempts += 1

        def admitted(result) -> None:
            if self.joined:
                return  # a duplicate reply from a retried query
            owner, _hops = result
            self.successors = [owner]
            self.joined = True
            # Stabilize immediately rather than waiting for the next
            # maintenance round: this splices the successor's list into
            # ours and announces us via notify. Until that happens our
            # list has a single entry, and a crash of that one node
            # would strand us in a permanent self-loop — a second ring
            # (found by the Pass-5 model checker at n = 3).
            self.stabilize()

        self.call(
            bootstrap,
            "find_successor_sync",
            (self.node_id, 0),
            admitted,
            on_timeout=self._retry_join,
        )

    def _retry_join(self) -> None:
        if self.joined or self._join_attempts >= MAX_JOIN_ATTEMPTS:
            return
        self._send_join_query()

    # ------------------------------------------------------------------
    # maintenance rounds
    # ------------------------------------------------------------------
    @property
    def successor(self) -> int:
        return self.successors[0] if self.successors else self.node_id

    def _drop_peer(self, peer: int) -> None:
        self.successors = [s for s in self.successors if s != peer] or [self.node_id]
        if self.predecessor == peer:
            self.predecessor = None
        self.fingers = [None if f == peer else f for f in self.fingers]

    def stabilize(self) -> None:
        """Ask our successor for its predecessor; adopt a closer one;
        refresh the successor list; notify. A lone node asks itself,
        which is how the two-node bootstrap closes the ring."""
        if not self.joined:
            return
        succ = self.successor

        def got_state(state) -> None:
            if succ != self.successor:
                return  # stale reply: our successor changed mid-flight
            pred, succ_list = state
            if (
                pred is not None
                and pred != self.node_id
                and _between(self.space.size, self.node_id, succ, pred)
            ):
                self.successors.insert(0, pred)
                self.successors = list(dict.fromkeys(self.successors))[:SUCCESSOR_LIST]
            else:
                # Splice our successor's list after it (fault tolerance).
                merged = [succ] + [s for s in succ_list if s != self.node_id]
                self.successors = list(dict.fromkeys(merged))[:SUCCESSOR_LIST]
            new_succ = self.successor
            if new_succ != self.node_id:
                self.call(
                    new_succ,
                    "notify",
                    (self.node_id,),
                    lambda _ok: None,
                    on_timeout=lambda: self._drop_peer(new_succ),
                )
            elif self.predecessor not in (None, self.node_id):
                self.rpc_notify(self.predecessor)

        self.call(
            succ, "get_state", (), got_state, on_timeout=lambda: self._drop_peer(succ)
        )

    def fix_one_finger(self) -> None:
        if not self.joined:
            return
        index = self._next_finger
        self._next_finger = (self._next_finger + 1) % self.space.bits
        key = (self.node_id + (1 << index)) % self.space.size

        def found(owner: int, _hops: int) -> None:
            if not self.alive:
                return  # resolved after we crashed: nothing to install
            self.fingers[index] = owner

        self.find_successor(key, found)

    def check_predecessor(self) -> None:
        if not self.joined:
            return
        pred = self.predecessor
        if pred is None:
            return

        def dead() -> None:
            if self.predecessor == pred:
                self.predecessor = None

        self.call(pred, "ping", (), lambda _ok: None, on_timeout=dead)


class ChordProtocolNetwork:
    """A set of protocol nodes on one simulator, plus drive helpers."""

    def __init__(
        self,
        seed: int = 0,
        latency: Optional[LatencyModel] = None,
        space: Optional[IdentifierSpace] = None,
    ):
        self.space = space or IdentifierSpace()
        self.sim = Simulator()
        self.bus = MessageBus(self.sim, latency or ConstantLatency(1.0))
        self.rng = random.Random(seed)
        self.nodes: Dict[int, ProtocolNode] = {}

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def node_if_alive(self, node_id: int) -> Optional[ProtocolNode]:
        node = self.nodes.get(node_id)
        return node if node is not None and node.alive else None

    def create_first(self, node_id: Optional[int] = None) -> ProtocolNode:
        if self.nodes:
            raise RingError("network already bootstrapped")
        node = self._spawn(node_id)
        node.predecessor = node.node_id
        node.joined = True
        return node

    def _spawn(self, node_id: Optional[int]) -> ProtocolNode:
        if node_id is None:
            node_id = self.space.random_id(self.rng)
            while node_id in self.nodes:
                node_id = self.space.random_id(self.rng)
        node = ProtocolNode(self, node_id)
        self.nodes[node_id] = node
        self.bus.register(node_id, node)
        return node

    def join(self, bootstrap_id: int, node_id: Optional[int] = None) -> ProtocolNode:
        """A new node joins through any live node.

        The join query is issued (and retried) by the *joining* node;
        until the answer arrives it is not part of the ring — it runs no
        maintenance, answers no RPCs, and ``joined`` stays False, so a
        bootstrap crash mid-join leaves a cleanly un-joined node rather
        than a second one-node ring.
        """
        bootstrap = self.node_if_alive(bootstrap_id)
        if bootstrap is None:
            raise RingError("bootstrap node %#x is not alive" % bootstrap_id)
        node = self._spawn(node_id)
        node.begin_join(bootstrap_id)
        return node

    def crash(self, node_id: int) -> None:
        node = self.nodes.pop(node_id, None)
        if node is None:
            raise RingError("no such node %#x" % node_id)
        node.alive = False
        # A dead node's timeout guards can never act (the alive check
        # above would no-op them anyway); cancel them so they leave the
        # event heap immediately instead of firing as dead events.
        for _handler, timer in node._pending.values():
            self.sim.cancel(timer)
        node._pending.reset()
        self.bus.unregister(node_id)

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------
    def run_rounds(self, rounds: int, spacing: float = 20.0) -> None:
        """Run ``rounds`` maintenance rounds on every node."""
        for round_index in range(rounds):
            for node in list(self.nodes.values()):
                if not node.alive:
                    continue
                self.sim.schedule(0.0, node.stabilize)
                self.sim.schedule(1.0, node.fix_one_finger)
                self.sim.schedule(2.0, node.check_predecessor)
            self.sim.run_until(self.sim.now + spacing)
        self.sim.run_until_idle()

    def lookup(self, start_id: int, key: int):
        """Resolve ``successor(key)`` via the live protocol; returns
        ``(owner, hops)`` after running the simulator to completion."""
        start = self.node_if_alive(start_id)
        if start is None:
            raise RingError("start node %#x is not alive" % start_id)
        result: List = []
        start.find_successor(key, lambda owner, hops: result.append((owner, hops)))
        self.sim.run_until_idle()
        if not result:
            raise RingError("lookup of %#x produced no answer" % key)
        return result[0]

    # ------------------------------------------------------------------
    # verification helpers
    # ------------------------------------------------------------------
    def true_ring(self) -> List[int]:
        return sorted(self.nodes)

    def true_successor(self, node_id: int) -> int:
        ring = self.true_ring()
        index = ring.index(node_id)
        return ring[(index + 1) % len(ring)]

    def is_converged(self) -> bool:
        """Every live node's first successor matches the true ring."""
        return all(
            node.successor == self.true_successor(node.node_id)
            for node in self.nodes.values()
        )

    def converged_predecessors(self) -> bool:
        ring = self.true_ring()
        for node in self.nodes.values():
            index = ring.index(node.node_id)
            if node.predecessor != ring[(index - 1) % len(ring)]:
                return False
        return True
