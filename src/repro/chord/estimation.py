"""Decentralised system-size estimation (Section 3.1 of the paper).

Each node ``v`` estimates the system size ``N`` locally, in two steps:

* **Step 1** — a coarse estimate of ``log N`` from the gap to the next
  node: ``e_v = log2(1 / d(v, succ_1(v)))``.
* **Step 2** — walk ``k = 4 * ceil(e_v)`` successors and estimate
  ``n_v = k / d(v, succ_k(v))``.

Lemma 3.1/3.2: with high probability every node's ``n_v`` lies within
``[N/10, 10N]``. The node then derives its *level estimate*
``ell_v`` — the largest level ``k`` of the decomposition tree with
``phi(k) < n_v`` — which Lemma 3.3 pins to ``[ell* - 4, ell* + 4]``.

The step-count multiplier (the paper's constant 4) is a parameter so the
ablation experiment can sweep it.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass
from typing import Optional

from repro.analysis.theory import TheoryModel
from repro.chord.ring import ChordRing
from repro.errors import RingError


@dataclass
class SizeEstimate:
    """The intermediate and final quantities of one node's estimate."""

    node_id: int
    log_estimate: float  # e_v, the step-1 estimate of log2 N
    steps: int  # k, the number of successors walked in step 2
    size_estimate: float  # n_v


class SizeEstimator:
    """Runs the paper's two-step estimate against a ring."""

    def __init__(self, ring: ChordRing, step_multiplier: int = 4):
        if step_multiplier < 1:
            raise RingError("step multiplier must be >= 1, got %d" % step_multiplier)
        self.ring = ring
        self.step_multiplier = step_multiplier

    def estimate(self, node_id: int) -> SizeEstimate:
        """The estimate ``n_v`` computed by node ``node_id``.

        A node that walks all the way around the ring (fewer nodes than
        ``k``) simply counts the nodes it saw — it then knows ``N``
        exactly, which only sharpens the estimate on tiny systems.
        """
        ring = self.ring
        n = len(ring)
        if n == 0:
            raise RingError("cannot estimate the size of an empty ring")
        if n == 1:
            return SizeEstimate(node_id, 0.0, 0, 1.0)
        # Step 1: coarse log-size estimate from the successor gap.
        gap = ring.distance_fraction(node_id, ring.succ_k(node_id, 1).node_id)
        log_estimate = math.log2(1.0 / gap)
        # Step 2: walk k successors. Walking k >= n steps would lap the
        # ring; a real node stops upon seeing itself, knowing N exactly.
        steps = max(1, self.step_multiplier * math.ceil(log_estimate))
        if steps >= n:
            return SizeEstimate(node_id, log_estimate, n - 1, float(n))
        span = ring.distance_fraction(node_id, ring.succ_k(node_id, steps).node_id)
        return SizeEstimate(node_id, log_estimate, steps, steps / span)

    def size_estimate(self, node_id: int) -> float:
        """Just ``n_v``."""
        return self.estimate(node_id).size_estimate


class LevelEstimator:
    """Derives level estimates ``ell_v`` from size estimates.

    ``ell_v`` is the largest tree level with ``phi(level) < n_v``,
    clamped to the levels that exist in ``T_w`` (a finite-width artefact
    the asymptotic paper does not need to handle). By default the
    bitonic ``phi`` is used; pass any ``tree`` exposing ``phi(level)``
    and ``max_level`` (e.g. a :class:`repro.ext.recursive.GenericTree`)
    to drive the rules for another recursive structure.
    """

    def __init__(
        self, width: int, ring: ChordRing, step_multiplier: int = 4, tree=None
    ):
        self.tree = tree if tree is not None else TheoryModel(width).tree
        self.sizes = SizeEstimator(ring, step_multiplier)
        # phi is strictly increasing for T_w (Fact 1: phi(k+1) >= 2
        # phi(k)), so the level lookup — called once per node per rules
        # round — is a bisect over this table instead of a full-level
        # phi scan. Generic trees (repro.ext) may have non-monotone
        # level censuses; those keep the scan.
        self._phi_table = [
            self.tree.phi(level) for level in range(self.tree.max_level + 1)
        ]
        self._phi_monotone = all(
            earlier < later
            for earlier, later in zip(self._phi_table, self._phi_table[1:])
        )

    def level_for_estimate(self, estimate: float) -> int:
        """The largest level with ``phi(level) < estimate``."""
        if self._phi_monotone:
            return max(0, bisect_left(self._phi_table, estimate) - 1)
        best = 0
        for level, phi in enumerate(self._phi_table):
            if phi < estimate:
                best = level
        return best

    def level_estimate(self, node_id: int) -> int:
        """The node's ``ell_v``."""
        return self.level_for_estimate(self.sizes.size_estimate(node_id))

    def ideal_level(self, n: Optional[int] = None) -> int:
        """``ell*`` for the true system size (or a given ``n``)."""
        if n is None:
            n = len(self.sizes.ring)
        return self.level_for_estimate(float(n))
