"""C2 — Section 3.4: crashes and self-stabilising recovery.

Two scenarios: crashes at quiescent instants (recovery reconstructs the
exact state from in-neighbours, nothing lost) and crashes with tokens in
flight (queued tokens are lost; the output imbalance afterwards is
bounded by the loss, the stabilisation guarantee).
"""

from repro.runtime.system import AdaptiveCountingSystem


def test_crash_stabilization(report, benchmark):
    # Scenario A: quiescent crashes.
    rows = []
    system = AdaptiveCountingSystem(width=64, seed=3402, initial_nodes=30)
    system.converge()
    for round_index in range(4):
        for _ in range(25):
            system.inject_token()
        system.run_until_quiescent()
        report_obj = system.crash_node()
        system.run_until_quiescent()
        rows.append(
            (
                round_index,
                len(report_obj.lost_components),
                system.stats.recoveries,
                system.token_stats.issued,
                system.token_stats.retired,
                max(system.output_counts) - min(system.output_counts),
            )
        )
    report(
        "Section 3.4 - quiescent crashes: exact recovery",
        [
            "round",
            "components lost",
            "recoveries (cum)",
            "issued",
            "retired",
            "output imbalance",
        ],
        rows,
        notes="With no tokens in flight, reconstruction from in-neighbour counters is "
        "exact: zero token loss, imbalance stays <= 1.",
    )
    assert system.token_stats.retired == system.token_stats.issued
    assert max(system.output_counts) - min(system.output_counts) <= 1

    # Scenario B: crashes mid-traffic.
    rows_b = []
    system_b = AdaptiveCountingSystem(width=64, seed=3403, initial_nodes=30)
    system_b.converge()
    for round_index in range(4):
        for _ in range(25):
            system_b.inject_token()
        crash_report = system_b.membership.crash(
            next(
                nid
                for nid, host in sorted(system_b.hosts.items())
                if host.component_count() > 0
            )
        )
        system_b.lost_components.update(crash_report.lost_components)
        system_b.stabilize()
        system_b.run_until_quiescent()
        lost = system_b.token_stats.issued - system_b.token_stats.retired
        imbalance = max(system_b.output_counts) - min(system_b.output_counts)
        rows_b.append(
            (
                round_index,
                len(crash_report.lost_components),
                crash_report.lost_buffered_tokens,
                crash_report.disturbed_tokens,
                lost,
                imbalance,
            )
        )
        assert imbalance <= lost + system_b.stats.disturbed_tokens + 1
    report(
        "Section 3.4 - mid-traffic crashes: bounded damage",
        [
            "round",
            "components lost",
            "buffered tokens lost",
            "tokens disturbed",
            "tokens lost (cum)",
            "output imbalance",
        ],
        rows_b,
        notes="Self-stabilisation restores a legal state: the residual output imbalance "
        "never exceeds lost + disturbed tokens (+1) - disturbed tokens were in flight "
        "toward the crashed components and each can displace one output slot.",
    )

    def crash_and_recover():
        sys_small = AdaptiveCountingSystem(width=32, seed=3404, initial_nodes=15)
        sys_small.converge()
        sys_small.crash_node()
        sys_small.run_until_quiescent()
        return sys_small.stats.recoveries

    benchmark(crash_and_recover)
