"""C3 — Section 3.4 / [HT03]: self-stabilisation from *state corruption*.

Complements C2 (crash-loss recovery): here no state is lost, but
transient faults scramble component counters ([Dij74]'s model). The
audit recomputes each component's expected state from its in-neighbours
in one topological pass and repairs mismatches locally. The bench
reports detection completeness, repair exactness, and the post-repair
health of the network across corruption severities.
"""

import random

from repro.runtime.audit import corrupt_components
from repro.runtime.system import AdaptiveCountingSystem


def test_audit_stabilization(report, benchmark):
    rows = []
    for severity in (1, 3, 6, 12):
        system = AdaptiveCountingSystem(width=64, seed=500 + severity, initial_nodes=30)
        system.converge()
        for _ in range(100):
            system.inject_token()
        system.run_until_quiescent()
        reference = {
            path: system.hosts[system.directory.owner(path)].components[path].copy()
            for path in system.directory.live_paths()
        }
        rng = random.Random(severity)
        victims = corrupt_components(system, rng, severity)
        changed = [
            path
            for path in victims
            if system.hosts[system.directory.owner(path)].components[path].total
            != reference[path].total
            or system.hosts[system.directory.owner(path)].components[path].arrivals
            != reference[path].arrivals
        ]
        audit_report = system.auditor.audit()
        exact = all(
            system.hosts[system.directory.owner(path)].components[path].total
            == reference[path].total
            and system.hosts[system.directory.owner(path)].components[path].arrivals
            == reference[path].arrivals
            for path in system.directory.live_paths()
        )
        # post-repair traffic must be flawless
        tokens = [system.inject_token() for _ in range(60)]
        system.run_until_quiescent()
        values = sorted(t.value for t in tokens)
        gap_free = values == list(range(100, 160))
        rows.append(
            (
                severity,
                len(changed),
                len(audit_report.repaired),
                "yes" if exact else "no",
                "yes" if system.auditor.audit().clean else "no",
                "yes" if gap_free else "no",
            )
        )
        assert set(audit_report.repaired) == set(changed)
        assert exact and gap_free
    report(
        "Section 3.4 / HT03 - state-corruption audit and repair",
        [
            "components corrupted",
            "actually changed",
            "repaired",
            "exact restore",
            "2nd pass clean",
            "post-repair values gap-free",
        ],
        rows,
        notes="One topological audit pass detects exactly the corrupted components, "
        "restores their pre-fault states from in-neighbour counters, and the network "
        "counts flawlessly afterwards.",
    )

    system = AdaptiveCountingSystem(width=32, seed=501, initial_nodes=20)
    system.converge()
    benchmark(lambda: system.auditor.audit().components_checked)
