"""T21 — Theorem 2.1: the network formed by any cut of ``T_w`` counts.

Sweeps widths, random cuts, random workloads, and random split/merge
histories, and reports the number of step-property violations (the
theorem predicts zero). Also times the batch-propagation operation.
"""

import random

from repro.core.cut import Cut, CutNetwork
from repro.core.decomposition import DecompositionTree
from repro.core.verification import has_step_property


def test_thm21_every_cut_counts(report, benchmark):
    rng = random.Random(2005)
    rows = []
    for width in (4, 8, 16, 32, 64):
        tree = DecompositionTree(width)
        static_trials = violations = 0
        for _ in range(60):
            net = CutNetwork(Cut.random(tree, rng, 0.5))
            for _batch in range(3):
                net.feed_counts([rng.randint(0, 4) for _ in range(width)])
                static_trials += 1
                if not has_step_property(net.output_counts):
                    violations += 1
        reconfig_trials = reconfig_violations = 0
        for _ in range(20):
            net = CutNetwork(Cut.singleton(tree))
            for _step in range(10):
                net.feed_counts([rng.randint(0, 3) for _ in range(width)])
                paths = sorted(net.states)
                path = paths[rng.randrange(len(paths))]
                if rng.random() < 0.55 and not net.states[path].spec.is_leaf:
                    net.split_member(path)
                elif path:
                    try:
                        net.merge_member(path[:-1])
                    except Exception:
                        pass
                reconfig_trials += 1
                if not has_step_property(net.output_counts):
                    reconfig_violations += 1
        rows.append(
            (width, static_trials, violations, reconfig_trials, reconfig_violations)
        )
    report(
        "Theorem 2.1 - step-property violations over random cuts/workloads",
        ["w", "static checks", "violations", "reconfig checks", "violations"],
        rows,
        notes="The theorem predicts zero violations in every row.",
    )
    for _w, _s, violation_count, _r, reconfig_violation_count in rows:
        assert violation_count == 0
        assert reconfig_violation_count == 0

    tree = DecompositionTree(32)
    cut = Cut.random(tree, random.Random(1), 0.5)
    workload = [3] * 32

    def run_batch():
        net = CutNetwork(cut)
        net.feed_counts(workload)
        return net.output_counts

    benchmark(run_batch)
