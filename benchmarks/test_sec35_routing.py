"""R35 — Section 3.5: routing efficiency.

Three claims: (1) the expected number of out-neighbours a node tracks
is O(1); (2) out-neighbour addresses are cached so tokens route without
per-token lookups (cache hit rates near 1 under steady traffic); (3) a
client finds a live input component within log w - 1 name lookups.
"""

import random

from repro.analysis.stats import summarize
from repro.runtime.system import AdaptiveCountingSystem


def out_neighbour_counts(system):
    """Distinct successor components per node, via edge resolution."""
    per_node = []
    for host in system.hosts.values():
        neighbours = set()
        for path, state in host.components.items():
            for port in range(state.width):
                dest = system.resolve_edge(state.spec, port)
                if dest[0] == "member":
                    neighbours.add(dest[1])
        per_node.append(len(neighbours))
    return per_node


def test_sec35_routing_efficiency(report, benchmark):
    rows = []
    for n in (10, 20, 40, 80):
        system = AdaptiveCountingSystem(width=1 << 10, seed=350 + n, initial_nodes=n)
        system.converge()
        counts = out_neighbour_counts(system)
        summary = summarize(counts)
        rows.append((n, len(system.directory), "%.2f" % summary.mean, int(summary.maximum)))
    report(
        "Section 3.5 - out-neighbours tracked per node (expected O(1))",
        ["N", "components", "mean out-neighbours/node", "max"],
        rows,
    )

    # Cache effectiveness under steady traffic.
    system = AdaptiveCountingSystem(width=64, seed=352, initial_nodes=40)
    system.converge()
    for _ in range(2000):
        system.inject_token()
    system.run_until_quiescent()
    hits = sum(h.cache_hits for h in system.hosts.values())
    misses = sum(h.cache_misses for h in system.hosts.values())
    total_ports = sum(
        s.width for h in system.hosts.values() for s in h.components.values()
    )
    report(
        "Section 3.5 - out-neighbour cache effectiveness (2000 tokens, N=40)",
        ["cache hits", "cache misses", "total out-ports", "hit rate"],
        [(hits, misses, total_ports, "%.4f" % (hits / max(1, hits + misses)))],
        notes="Misses are one-time per (component, out-port) and bounded by the port "
        "count; hits scale with traffic, so per-token lookups vanish.",
    )
    assert misses <= total_ports
    assert hits / max(1, hits + misses) > 0.8

    # Input-component lookup cost.
    lookup_rows = []
    rng = random.Random(353)
    for width in (16, 64, 256, 1024):
        system = AdaptiveCountingSystem(width=width, seed=354, initial_nodes=30)
        system.converge()
        tries = []
        for _ in range(100):
            tries.append(system.find_input(rng.randrange(width)).tries)
        bound = max(1, width.bit_length() - 2)  # log w - 1
        lookup_rows.append(
            (width, bound, "%.2f" % (sum(tries) / len(tries)), max(tries))
        )
        assert max(tries) <= bound + 1
    report(
        "Section 3.5 - input-component lookup tries (bound: log w - 1 names)",
        ["w", "paper bound", "mean tries", "max tries"],
        lookup_rows,
        notes="max <= bound (+1 for the root boundary case on small systems).",
    )

    def lookup_once():
        return system.lookup.find(0)

    benchmark(lookup_once)
