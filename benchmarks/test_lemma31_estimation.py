"""L31 — Lemmas 3.1/3.2: every node's size estimate is in [N/10, 10N].

Sweeps the system size over powers of two, many seeds each, and reports
the fraction of estimates inside the paper's window, plus the observed
worst-case ratios (which should be far inside the 10x window).
"""

from repro.chord.estimation import SizeEstimator
from repro.chord.ring import ChordRing


def build_ring(n, seed):
    ring = ChordRing(seed=seed)
    for _ in range(n):
        ring.join()
    return ring


def test_lemma31_size_estimation(report, benchmark):
    rows = []
    for exponent in range(6, 13):
        n = 1 << exponent
        inside = total = 0
        worst_low = worst_high = 1.0
        seeds = 3 if n <= 1024 else 1
        for seed in range(seeds):
            ring = build_ring(n, seed=10 * exponent + seed)
            estimator = SizeEstimator(ring)
            for node in ring.nodes():
                estimate = estimator.size_estimate(node.node_id)
                total += 1
                if n / 10 <= estimate <= 10 * n:
                    inside += 1
                worst_low = min(worst_low, estimate / n)
                worst_high = max(worst_high, estimate / n)
        rows.append(
            (
                n,
                total,
                "%.4f" % (inside / total),
                "%.3f" % worst_low,
                "%.3f" % worst_high,
            )
        )
        assert inside / total >= 0.999
    report(
        "Lemmas 3.1/3.2 - size estimates within [N/10, 10N] (paper: w.h.p.)",
        ["N", "estimates", "fraction inside", "min est/N", "max est/N"],
        rows,
        notes="Paper proves the window holds w.h.p.; observed ratios are well inside 10x.",
    )

    ring = build_ring(1024, seed=99)
    estimator = SizeEstimator(ring)
    node_id = ring.nodes()[0].node_id
    benchmark(lambda: estimator.size_estimate(node_id))
