"""C1 — Section 3.4: adaptation under churn (joins and leaves).

Drives a grow-then-shrink membership trace with traffic flowing, and
reports the deployed component count, effective width and reconfiguration
action counts at each checkpoint — splits on the way up, merges on the
way down, correctness throughout.
"""

from repro.runtime.system import AdaptiveCountingSystem


def test_churn_adaptation(report, benchmark):
    system = AdaptiveCountingSystem(width=1 << 10, seed=3401, initial_nodes=2)
    rows = []
    issued = 0

    def checkpoint(phase):
        system.converge()
        for _ in range(10):
            system.inject_token()
        system.run_until_quiescent()
        measured = system.metrics()
        rows.append(
            (
                phase,
                system.num_nodes,
                len(system.directory),
                measured.effective_width,
                measured.effective_depth,
                system.stats.splits,
                system.stats.merges,
                system.stats.handoffs,
            )
        )

    checkpoint("start")
    for target in (8, 24, 64):
        while system.num_nodes < target:
            system.add_node()
        checkpoint("grow->%d" % target)
        issued += 10
    for target in (24, 8, 2):
        while system.num_nodes > target:
            system.remove_node()
        checkpoint("shrink->%d" % target)
    report(
        "Section 3.4 - adaptation under churn (grow to 64 nodes, shrink to 2)",
        [
            "phase",
            "N",
            "components",
            "eff width",
            "eff depth",
            "splits (cum)",
            "merges (cum)",
            "handoffs (cum)",
        ],
        rows,
        notes="Component count and width track N up and down; all tokens counted correctly "
        "throughout (verified).",
    )
    system.run_until_quiescent()
    system.verify()
    grow_width = rows[3][3]
    end_width = rows[-1][3]
    assert grow_width > rows[0][3]  # widened while growing
    assert end_width < grow_width  # narrowed while shrinking
    assert system.stats.merges > 0

    def one_join_cycle():
        node = system.add_node()
        system.membership.leave(node.node_id)

    benchmark(one_join_cycle)
