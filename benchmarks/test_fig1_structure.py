"""F1 — Figure 1: the recursive structure of BITONIC[w].

Regenerates the figure's content as a table: for each width, the
component census per level of ``T_w`` (so the 6/4/2-way recursion of
Section 2.1 is visible), plus the balancer count of the fully-split
network against the closed form ``w log w (log w + 1) / 4``.
"""

from repro.analysis.theory import static_balancer_count
from repro.core.cut import Cut
from repro.core.decomposition import DecompositionTree


def test_fig1_recursive_structure(report, benchmark):
    rows = []
    for width in (4, 8, 16, 32, 64):
        tree = DecompositionTree(width)
        for level in range(tree.max_level + 1):
            bitonic, merger, mix = tree.level_census(level)
            rows.append(
                (
                    width,
                    level,
                    width >> level,
                    bitonic,
                    merger,
                    mix,
                    tree.phi(level),
                )
            )
    report(
        "Figure 1 - recursive structure of BITONIC[w] (component census per level)",
        ["w", "level", "comp width", "#BITONIC", "#MERGER", "#MIX", "phi(level)"],
        rows,
        notes="phi(0..2) = 1, 6, 24 as in Section 3 of the paper.",
    )
    balancer_rows = []
    for width in (4, 8, 16, 32, 64):
        tree = DecompositionTree(width)
        full = Cut.full(tree)
        balancer_rows.append((width, len(full), static_balancer_count(width)))
    report(
        "Figure 1 - balancer counts (full-leaf cut vs closed form)",
        ["w", "leaves of T_w", "w*log w*(log w+1)/4"],
        balancer_rows,
    )
    for width, leaves, formula in balancer_rows:
        assert leaves == formula

    benchmark(lambda: DecompositionTree(64).size())
