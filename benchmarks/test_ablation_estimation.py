"""A2 — Ablation: the size-estimation step multiplier.

The paper walks k = 4*ceil(e_v) successors in step 2. This bench sweeps
the multiplier c in k = c*ceil(e_v), trading estimation accuracy
(estimate spread, window failures) against probe cost (successor steps
per estimate). c = 4 sits at the knee: the window failure rate is
already zero and doubling c again only buys marginal tightening.
"""

from repro.analysis.stats import summarize
from repro.chord.estimation import SizeEstimator
from repro.chord.ring import ChordRing


def test_ablation_step_multiplier(report, benchmark):
    n = 1024
    rows = []
    for multiplier in (1, 2, 4, 8, 16):
        ring = ChordRing(seed=42)
        for _ in range(n):
            ring.join()
        estimator = SizeEstimator(ring, step_multiplier=multiplier)
        ratios = []
        outside = 0
        steps_total = 0
        for node in ring.nodes():
            estimate = estimator.estimate(node.node_id)
            ratios.append(estimate.size_estimate / n)
            steps_total += estimate.steps
            if not (n / 10 <= estimate.size_estimate <= 10 * n):
                outside += 1
        summary = summarize(ratios)
        rows.append(
            (
                multiplier,
                "%.1f" % (steps_total / n),
                "%.3f" % summary.minimum,
                "%.3f" % summary.maximum,
                "%.3f" % summary.std,
                outside,
            )
        )
    report(
        "Ablation A2 - step multiplier c in k = c*ceil(e_v), N = %d" % n,
        [
            "c",
            "mean probe steps",
            "min est/N",
            "max est/N",
            "std est/N",
            "outside [N/10,10N]",
        ],
        rows,
        notes="Larger c costs proportionally more successor probes and tightens the "
        "estimate; the paper's c = 4 already achieves zero window failures.",
    )
    by_c = {int(row[0]): row for row in rows}
    assert by_c[4][5] == 0  # paper's choice: no failures
    assert float(by_c[16][4]) <= float(by_c[1][4])  # tighter with more steps

    ring = ChordRing(seed=43)
    for _ in range(256):
        ring.join()
    estimator = SizeEstimator(ring)
    node_id = ring.nodes()[0].node_id
    benchmark(lambda: estimator.size_estimate(node_id))
