"""A1 — Ablation: merger wiring conventions (DESIGN.md D1).

Section 2.1's prose sends the even outputs of *both* BITONIC halves to
the top MERGER; the AHS94 construction sends even-of-top and odd-of-
bottom. This bench measures step-property violation rates under both
conventions, demonstrating the prose wording is a typo and the AHS94
convention is what the paper's Theorem 2.1 needs.
"""

import random

from repro.core.cut import Cut, CutNetwork
from repro.core.decomposition import DecompositionTree
from repro.core.verification import has_step_property
from repro.core.wiring import MergerConvention


def violation_rate(width, convention, trials, rng):
    tree = DecompositionTree(width)
    violations = 0
    for _ in range(trials):
        net = CutNetwork(Cut.random(tree, rng, 0.6), convention)
        net.feed_counts([rng.randint(0, 5) for _ in range(width)])
        if not has_step_property(net.output_counts):
            violations += 1
    return violations


def test_ablation_merger_wiring(report, benchmark):
    trials = 200
    rows = []
    for width in (4, 8, 16, 32):
        rng = random.Random(width)
        good = violation_rate(width, MergerConvention.AHS94, trials, rng)
        rng = random.Random(width)
        bad = violation_rate(width, MergerConvention.PAPER_PROSE, trials, rng)
        rows.append(
            (
                width,
                trials,
                good,
                bad,
                "%.0f%%" % (100.0 * bad / trials),
            )
        )
        assert good == 0
        assert bad > 0
    report(
        "Ablation A1 - step-property violations by merger convention "
        "(%d random cut+workload trials per width)" % trials,
        ["w", "trials", "AHS94 violations", "paper-prose violations", "prose rate"],
        rows,
        notes="The literal Section 2.1 wording (even/even) breaks counting; the AHS94 "
        "wiring (even/odd) never does. See DESIGN.md D1 for the 4-wire counterexample.",
    )

    tree = DecompositionTree(16)
    cut = Cut.level(tree, 1)

    def run_good():
        net = CutNetwork(cut, MergerConvention.AHS94)
        net.feed_counts([2] * 16)
        return net.output_counts

    benchmark(run_good)
