"""L22 — Lemma 2.2: effective depth <= (k+1)(k+2)/2 for max leaf level k.

Uniform level-k cuts achieve the bound exactly; random cuts stay below
it. Reports measured depth against the bound across widths and levels.
"""

import random

from repro.core import metrics
from repro.core.cut import Cut, CutNetwork
from repro.core.decomposition import DecompositionTree


def test_lemma22_depth_bound(report, benchmark):
    rows = []
    for width in (8, 16, 32, 64):
        tree = DecompositionTree(width)
        for level in range(tree.max_level + 1):
            net = CutNetwork(Cut.level(tree, level))
            depth = metrics.effective_depth(net)
            bound = metrics.lemma22_bound(level)
            rows.append((width, level, depth, bound, "=" if depth == bound else "<"))
            assert depth <= bound
    report(
        "Lemma 2.2 - effective depth of uniform level-k cuts vs (k+1)(k+2)/2",
        ["w", "k (level)", "measured depth", "bound", "tight?"],
        rows,
        notes="Uniform cuts meet the bound with equality, as the recurrences in the proof predict.",
    )

    rng = random.Random(22)
    random_rows = []
    for width in (16, 32):
        tree = DecompositionTree(width)
        worst_gap = None
        for _ in range(40):
            cut = Cut.random(tree, rng, 0.5)
            depth = metrics.effective_depth(CutNetwork(cut))
            bound = metrics.lemma22_bound(max(cut.levels()))
            assert depth <= bound
            gap = bound - depth
            worst_gap = gap if worst_gap is None else min(worst_gap, gap)
        random_rows.append((width, 40, worst_gap))
    report(
        "Lemma 2.2 - random cuts respect the bound",
        ["w", "random cuts checked", "smallest bound-depth gap"],
        random_rows,
    )

    tree = DecompositionTree(32)
    cut = Cut.level(tree, 2)
    benchmark(lambda: metrics.effective_depth(CutNetwork(cut)))
