"""T36 — Theorem 3.6: effective depth O(log^2 N), width Omega(N/log^2 N).

Sweeps the system size, converges the rules, and reports the measured
effective width/depth against the theorem's scales. Also fits the
log-log slope of width vs N (the theorem predicts slope ~1 up to
polylog corrections) as the quantitative shape check.
"""

import math

from repro.analysis.stats import linear_fit
from repro.runtime.system import AdaptiveCountingSystem


def test_thm36_width_and_depth_scaling(report, benchmark):
    rows = []
    widths = []
    sizes = (4, 8, 16, 32, 64, 128)
    for n in sizes:
        system = AdaptiveCountingSystem(width=1 << 12, seed=360 + n, initial_nodes=n)
        system.converge()
        measured = system.metrics()
        log_sq = math.log2(max(n, 2)) ** 2
        rows.append(
            (
                n,
                measured.effective_width,
                "%.2f" % (n / log_sq),
                "%.2f" % (measured.effective_width / (n / log_sq)),
                measured.effective_depth,
                "%.1f" % log_sq,
                "%.2f" % (measured.effective_depth / log_sq),
            )
        )
        widths.append(measured.effective_width)
        # depth never exceeds a small multiple of log^2 N
        assert measured.effective_depth <= 3 * log_sq + 3
    report(
        "Theorem 3.6 - effective width ~ Omega(N/log^2 N), depth ~ O(log^2 N)",
        [
            "N",
            "eff width",
            "N/log^2 N",
            "width / (N/log^2 N)",
            "eff depth",
            "log^2 N",
            "depth / log^2 N",
        ],
        rows,
        notes="The width ratio stays bounded away from 0 and the depth ratio stays "
        "bounded above: both asymptotic shapes of the theorem.",
    )

    # Quantitative shape: width must grow at least as fast as the
    # theoretical lower-bound scale N/log^2 N. At these finite sizes the
    # polylog correction dominates the scale's own local slope (~0.4
    # over N = 8..128), so we compare the fitted slopes directly.
    log_n = [math.log2(n) for n in sizes[1:]]
    log_w = [math.log2(max(w, 1)) for w in widths[1:]]
    log_scale = [math.log2(n / math.log2(n) ** 2) for n in sizes[1:]]
    slope, _ = linear_fit(log_n, log_w)
    scale_slope, _ = linear_fit(log_n, log_scale)
    report(
        "Theorem 3.6 - log-log growth of effective width vs N",
        ["fit", "value"],
        [
            ("slope of log2(width) vs log2(N)", "%.2f" % slope),
            ("slope of log2(N/log^2 N) vs log2(N)", "%.2f" % scale_slope),
        ],
        notes="The measured slope must dominate the lower-bound scale's local slope "
        "(and approaches 1 asymptotically).",
    )
    assert scale_slope - 0.1 <= slope <= 1.4

    def converge_and_measure():
        system = AdaptiveCountingSystem(width=256, seed=361, initial_nodes=16)
        system.converge()
        return system.metrics()

    benchmark(converge_and_measure)
