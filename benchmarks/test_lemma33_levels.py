"""L33 — Lemma 3.3: all level estimates lie in [ell* - 4, ell* + 4].

Reports, per system size, the ideal level ell*, the range of node level
estimates, and the worst deviation (the paper's window is +/-4; in
practice the estimates hug ell* much tighter).
"""

from collections import Counter

from repro.chord.estimation import LevelEstimator
from repro.chord.ring import ChordRing


def test_lemma33_level_estimates(report, benchmark):
    width = 1 << 14
    rows = []
    for n in (64, 128, 256, 512, 1024, 2048, 4096):
        ring = ChordRing(seed=n)
        for _ in range(n):
            ring.join()
        estimator = LevelEstimator(width, ring)
        star = estimator.ideal_level()
        levels = [estimator.level_estimate(v.node_id) for v in ring.nodes()]
        histogram = Counter(levels)
        deviation = max(abs(level - star) for level in levels)
        rows.append(
            (
                n,
                star,
                min(levels),
                max(levels),
                deviation,
                dict(sorted(histogram.items())),
            )
        )
        assert deviation <= 4
    report(
        "Lemma 3.3 - node level estimates vs ell* (window is +/-4)",
        ["N", "ell*", "min ell_v", "max ell_v", "worst |ell_v - ell*|", "histogram"],
        rows,
    )

    ring = ChordRing(seed=512)
    for _ in range(512):
        ring.join()
    estimator = LevelEstimator(width, ring)
    node_id = ring.nodes()[0].node_id
    benchmark(lambda: estimator.level_estimate(node_id))
