"""L23 — Lemma 2.3: effective width >= 2^k for min leaf level k.

Uniform level-k cuts have width exactly 2^k (the network is isomorphic
to BITONIC[2^(k+1)]); splits never decrease the width (the proof's
monotonicity argument).
"""

import random

from repro.core import metrics
from repro.core.cut import Cut, CutNetwork
from repro.core.decomposition import DecompositionTree


def test_lemma23_width_bound(report, benchmark):
    rows = []
    for width in (8, 16, 32, 64):
        tree = DecompositionTree(width)
        for level in range(tree.max_level + 1):
            measured = metrics.effective_width(CutNetwork(Cut.level(tree, level)))
            bound = metrics.lemma23_bound(level)
            rows.append((width, level, measured, bound))
            assert measured >= bound
            assert measured == 2 ** level  # exact for uniform cuts
    report(
        "Lemma 2.3 - effective width of uniform level-k cuts vs 2^k",
        ["w", "k (level)", "measured width", "bound 2^k"],
        rows,
    )

    rng = random.Random(23)
    monotone_rows = []
    for width in (16, 32):
        tree = DecompositionTree(width)
        checked = decreases = 0
        for _ in range(30):
            net = CutNetwork(Cut.random(tree, rng, 0.4))
            before = metrics.effective_width(net)
            splittable = [
                p for p in net.states if not net.states[p].spec.is_leaf
            ]
            if not splittable:
                continue
            net.split_member(splittable[rng.randrange(len(splittable))])
            after = metrics.effective_width(net)
            checked += 1
            if after < before:
                decreases += 1
        monotone_rows.append((width, checked, decreases))
        assert decreases == 0
    report(
        "Lemma 2.3 - splits never decrease effective width",
        ["w", "random splits checked", "width decreases observed"],
        monotone_rows,
    )

    tree = DecompositionTree(32)
    cut = Cut.level(tree, 2)
    benchmark(lambda: metrics.effective_width(CutNetwork(cut)))
