"""L35 — Lemma 3.5: O(N) components; O(1) expected and
O(log N / log log N) max components per node.

Reports, per system size: total components (and the ratio to N, which
the lemma bounds inside [1/6^5, 6^4]), the mean per node, and the max
per node scaled by log N / log log N.
"""

from repro.analysis.theory import max_load_scale
from repro.runtime.system import AdaptiveCountingSystem


def test_lemma35_component_counts(report, benchmark):
    rows = []
    for n in (10, 20, 40, 80, 160):
        system = AdaptiveCountingSystem(width=1 << 12, seed=350 + n, initial_nodes=n)
        system.converge()
        per_node = system.components_per_node()
        total = sum(per_node)
        mean = total / n
        peak = max(per_node)
        scale = max_load_scale(n)
        rows.append(
            (
                n,
                total,
                "%.2f" % (total / n),
                "%.2f" % mean,
                peak,
                "%.2f" % (peak / scale),
            )
        )
        low, high = n / 6 ** 5, 6 ** 4 * n
        assert low <= total <= high
    report(
        "Lemma 3.5 - component counts (total ~ Theta(N), mean per node ~ O(1), "
        "max per node ~ O(log N/log log N))",
        ["N", "components", "components/N", "mean/node", "max/node", "max / (ln N/ln ln N)"],
        rows,
        notes="components/N staying near a constant and max/(ln N/ln ln N) staying bounded "
        "are the lemma's two claims.",
    )

    system = AdaptiveCountingSystem(width=1 << 10, seed=351, initial_nodes=40)
    system.converge()
    benchmark(system.components_per_node)
