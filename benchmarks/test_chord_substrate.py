"""SUB — the Section 1.4 substrate assumption, discharged.

The paper assumes "an underlying routing service which provides
efficient routing to an object given the object's name" (Chord). We run
the actual Chord maintenance protocol (joins, stabilize/notify,
fix_fingers, successor lists, failure detection) as messages over the
simulator and measure: convergence after growth, O(log N) lookup hops,
and ring healing after crashes — the properties the rest of the
reproduction takes as given.
"""

import math
import random

from repro.chord.protocol import ChordProtocolNetwork


def grow(network, n):
    for _ in range(n - len(network.nodes)):
        bootstrap = network.rng.choice(sorted(network.nodes))
        network.join(bootstrap)
        network.run_rounds(2)


def test_chord_substrate(report, benchmark):
    rows = []
    for n in (8, 16, 32, 64):
        network = ChordProtocolNetwork(seed=n)
        network.create_first()
        grow(network, n)
        rounds = 0
        while not (network.is_converged() and network.converged_predecessors()):
            network.run_rounds(1)
            rounds += 1
            assert rounds < 100, "ring failed to converge"
        network.run_rounds(3 * network.space.bits // n + 40)  # warm fingers
        rng = random.Random(n + 1)
        ring = network.true_ring()
        import bisect

        hops_seen = []
        correct = 0
        for _ in range(60):
            key = network.space.random_id(rng)
            owner, hops = network.lookup(rng.choice(ring), key)
            hops_seen.append(hops)
            expected = ring[bisect.bisect_left(ring, key) % len(ring)]
            if owner == expected:
                correct += 1
        rows.append(
            (
                n,
                rounds,
                "%d/60" % correct,
                "%.2f" % (sum(hops_seen) / len(hops_seen)),
                max(hops_seen),
                "%.2f" % math.log2(n),
            )
        )
        assert correct == 60
    report(
        "Substrate - live Chord protocol: convergence, lookup hops vs log N",
        [
            "N",
            "extra rounds to converge",
            "correct lookups",
            "mean hops",
            "max hops",
            "log2 N",
        ],
        rows,
        notes="Mean lookup hops track ~(1/2..1) log2 N, the Chord guarantee the paper "
        "builds on; every lookup resolves to the true successor.",
    )

    # Healing: crash a batch of nodes, count rounds until re-converged.
    healing_rows = []
    for crash_count in (1, 2, 4):
        network = ChordProtocolNetwork(seed=99 + crash_count)
        network.create_first()
        grow(network, 24)
        network.run_rounds(10)
        rng = random.Random(crash_count)
        for _ in range(crash_count):
            network.crash(rng.choice(network.true_ring()))
        rounds = 0
        while not network.is_converged():
            network.run_rounds(1)
            rounds += 1
            assert rounds < 100, "ring failed to heal"
        healing_rows.append((24, crash_count, rounds))
    report(
        "Substrate - ring healing after simultaneous crashes (N = 24)",
        ["N", "crashed", "rounds to re-converge"],
        healing_rows,
        notes="Successor lists bridge crashed nodes; stabilisation repairs pointers in "
        "a handful of rounds.",
    )

    def converge_small():
        network = ChordProtocolNetwork(seed=7)
        network.create_first()
        grow(network, 8)
        network.run_rounds(4)
        return network.is_converged()

    benchmark(converge_small)
