"""B2 — saturation throughput: offered load vs delivered throughput.

The paper's purpose for width is *throughput*: a width-w network can
retire up to w tokens per balancer-service-time, while a central
counter caps at 1. This bench drives each structure open-loop (tokens
injected at a fixed rate for a fixed duration) and reports delivered
throughput and latency across offered loads — the saturation curves.
Shapes to reproduce: the central counter saturates at 1/service; the
adaptive network's knee scales with its effective width; below
saturation all structures deliver the offered load.
"""

from repro.core.bitonic import bitonic_network
from repro.runtime.static_deploy import (
    CentralCounterDeployment,
    StaticBitonicDeployment,
)
from repro.runtime.system import AdaptiveCountingSystem

SERVICE = 0.5  # per-message service time -> central caps at 2 tokens/time
DURATION = 400.0
NODES = 60
WIDTH = 64


def drive_open_loop(system_like, inject, rate, duration):
    """Schedule Poisson-free (deterministic-spacing) injections."""
    sim = system_like.sim
    spacing = 1.0 / rate
    count = int(duration * rate)
    for index in range(count):
        sim.schedule_at(sim.now + index * spacing, inject)
    sim.run_until_idle()
    return count


def measure_adaptive(rate):
    system = AdaptiveCountingSystem(
        width=WIDTH, seed=700, initial_nodes=NODES, service_time=SERVICE
    )
    system.converge()
    start = system.sim.now
    drive_open_loop(system, lambda: system.inject_token(), rate, DURATION)
    elapsed = system.sim.now - start
    return (
        system.token_stats.retired / elapsed,
        system.token_stats.mean_latency,
    )


def measure_central(rate):
    deployment = CentralCounterDeployment(NODES, seed=701, service_time=SERVICE)
    start = deployment.sim.now
    drive_open_loop(deployment, lambda: deployment.inject_token(), rate, DURATION)
    elapsed = deployment.sim.now - start
    return (
        deployment.token_stats.retired / elapsed,
        deployment.token_stats.mean_latency,
    )


def measure_static(rate):
    deployment = StaticBitonicDeployment(
        bitonic_network(WIDTH), NODES, seed=702, service_time=SERVICE
    )
    counter = {"wire": 0}

    def inject():
        deployment.inject_token(counter["wire"])
        counter["wire"] = (counter["wire"] + 1) % WIDTH

    start = deployment.sim.now
    drive_open_loop(deployment, inject, rate, DURATION)
    elapsed = deployment.sim.now - start
    return (
        deployment.token_stats.retired / elapsed,
        deployment.token_stats.mean_latency,
    )


def test_throughput_saturation(report, benchmark):
    rows = []
    central_cap = 1.0 / SERVICE
    for rate in (0.5, 1.0, 2.0, 4.0, 8.0):
        adaptive_tp, adaptive_lat = measure_adaptive(rate)
        central_tp, central_lat = measure_central(rate)
        static_tp, static_lat = measure_static(rate)
        rows.append(
            (
                rate,
                "%.2f / %.0f" % (adaptive_tp, adaptive_lat),
                "%.2f / %.0f" % (central_tp, central_lat),
                "%.2f / %.0f" % (static_tp, static_lat),
            )
        )
    report(
        "Saturation - delivered throughput / mean latency vs offered load "
        "(service %.1f, central cap = %.1f tokens/time, N = %d)"
        % (SERVICE, central_cap, NODES),
        [
            "offered rate",
            "adaptive tp/lat",
            "central tp/lat",
            "static bitonic tp/lat",
        ],
        rows,
        notes="Below the cap every structure delivers the offered load; past it the "
        "central counter's throughput pins at 1/service while its latency explodes; "
        "the parallel structures keep absorbing the load.",
    )
    # Quantitative shape checks at the extremes.
    low = rows[0]
    high = rows[-1]
    assert abs(float(low[1].split(" / ")[0]) - 0.5) < 0.1  # all deliver 0.5
    assert abs(float(low[2].split(" / ")[0]) - 0.5) < 0.1
    central_high_tp = float(high[2].split(" / ")[0])
    adaptive_high_tp = float(high[1].split(" / ")[0])
    assert central_high_tp <= central_cap * 1.1  # saturated at the cap
    assert adaptive_high_tp > central_high_tp * 1.5  # parallelism pays
    central_low_lat = float(low[2].split(" / ")[1])
    central_high_lat = float(high[2].split(" / ")[1])
    assert central_high_lat > 10 * max(central_low_lat, 1.0)  # queueing blow-up

    benchmark(lambda: measure_central(4.0)[0])
