"""F2 — Figure 2: the decomposition tree ``T_8`` and two example cuts.

The paper's figure shows ``T_8`` with two cuts. The figure images are
not in the text, but the accompanying Figure 3 pins cut1 down exactly:
it must yield effective width 2 and effective depth 5, which is the cut
{children of the root, with the top BITONIC[4] split one level further}.
cut2 is chosen as another representative mixed-level cut (the bottom
MERGER[4] split instead). The bench regenerates the tree listing and
both cuts' member tables.
"""

from repro.core.cut import Cut, CutNetwork
from repro.core.decomposition import DecompositionTree


def figure2_cut1(tree):
    return Cut.singleton(tree).split(()).split((0,))


def figure2_cut2(tree):
    return Cut.singleton(tree).split(()).split((3,))


def test_fig2_tree_and_cuts(report, benchmark):
    tree = DecompositionTree(8)
    rows = [
        (
            tree.preorder_index(spec),
            spec.label(),
            spec.level,
            "balancer" if spec.is_leaf else "%d children" % spec.num_children(),
        )
        for spec in tree.iter_preorder()
    ]
    report(
        "Figure 2 - T_8: all %d components in pre-order (the naming scheme)" % tree.size(),
        ["name (pre-order)", "component", "level", "kind"],
        rows,
    )

    for cut_name, cut in (("cut1", figure2_cut1(tree)), ("cut2", figure2_cut2(tree))):
        members = [
            (tree.preorder_index(m), m.label(), m.level) for m in cut.members()
        ]
        report(
            "Figure 2 - %s members (%d components)" % (cut_name, len(cut)),
            ["name", "component", "level"],
            members,
        )

    # Both cuts must be valid implementations of BITONIC[8] (Thm 2.1).
    for cut in (figure2_cut1(tree), figure2_cut2(tree)):
        net = CutNetwork(cut)
        net.feed_counts([3, 1, 4, 1, 5, 9, 2, 6])
        net.verify_step_property()

    benchmark(lambda: figure2_cut1(DecompositionTree(8)))
