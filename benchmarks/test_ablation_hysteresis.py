"""A3 — Ablation: merge hysteresis (DESIGN.md, rules engine).

The paper merges a split component as soon as its level is no longer
below the node's estimate. Around a phi threshold, membership noise can
make estimates oscillate and the network split/merge repeatedly. The
``hysteresis`` parameter requires the level to exceed the estimate by a
margin before merging. This bench oscillates the membership around a
threshold and counts reconfiguration actions per hysteresis setting.
"""

from repro.runtime.system import AdaptiveCountingSystem


def run_oscillation(hysteresis):
    system = AdaptiveCountingSystem(
        width=256, seed=777, initial_nodes=4, hysteresis=hysteresis
    )
    system.converge()
    # Oscillate across the phi(1)=6 / phi(2)=24 thresholds.
    for _cycle in range(4):
        while system.num_nodes < 30:
            system.add_node()
        system.converge()
        while system.num_nodes > 8:
            system.remove_node()
        system.converge()
        for _ in range(5):
            system.inject_token()
        system.run_until_quiescent()
    system.verify()
    return system


def test_ablation_merge_hysteresis(report, benchmark):
    rows = []
    actions = {}
    for hysteresis in (0, 1, 2):
        system = run_oscillation(hysteresis)
        total = system.stats.splits + system.stats.merges
        actions[hysteresis] = total
        rows.append(
            (
                hysteresis,
                system.stats.splits,
                system.stats.merges,
                total,
                len(system.directory),
            )
        )
    report(
        "Ablation A3 - merge hysteresis under oscillating membership "
        "(4 grow/shrink cycles, 8 <-> 30 nodes)",
        ["hysteresis", "splits", "merges", "total actions", "final components"],
        rows,
        notes="Hysteresis suppresses merge churn at the cost of a temporarily "
        "coarser-than-ideal network after shrinking.",
    )
    assert actions[2] <= actions[0]

    benchmark(lambda: run_oscillation(1).stats.merges)
