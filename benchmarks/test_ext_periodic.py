"""EXT — the paper's closing generalisation claim, tested.

"Though we discuss the bitonic network, our technique could be applied
to build an adaptive implementation of any distributed data structure
which can be decomposed in a recursive way." We instantiate the
framework for the *periodic* counting network (reflection layers + half
blocks, non-uniform leaf depths, non-halving child widths) and measure
whether the Theorem 2.1 analogue holds: does every cut count?
"""

import itertools
import random

from repro.core.cut import Cut, CutNetwork
from repro.core.verification import has_step_property
from repro.ext.periodic_adaptive import (
    PeriodicWiring,
    block_level_cut_paths,
    periodic_tree,
)


def all_cuts(tree):
    def expand(spec):
        options = [frozenset([spec.path])]
        if not spec.is_leaf:
            combos = [frozenset()]
            for child in spec.children():
                combos = [c | o for c in combos for o in expand(child)]
            options.extend(combos)
        return options

    return expand(tree.root)


def test_ext_periodic_generalisation(report, benchmark):
    rows = []

    # Width 4: exhaustive over all cuts and workloads.
    tree4 = periodic_tree(4)
    wiring4 = PeriodicWiring(tree4)
    cuts4 = all_cuts(tree4)
    checks = violations = 0
    for paths in cuts4:
        cut = Cut(tree4, paths)
        for counts in itertools.product(range(3), repeat=4):
            net = CutNetwork(cut, wiring=wiring4)
            net.feed_counts(list(counts))
            checks += 1
            if not has_step_property(net.output_counts):
                violations += 1
    rows.append((4, "exhaustive: %d cuts" % len(cuts4), checks, violations))

    # Widths 8-32: random cuts, random workloads, reconfig histories.
    for width in (8, 16, 32):
        tree = periodic_tree(width)
        wiring = PeriodicWiring(tree)
        rng = random.Random(width)
        checks = violations = 0
        for _ in range(80):
            net = CutNetwork(Cut.random(tree, rng, 0.5), wiring=wiring)
            for _batch in range(2):
                net.feed_counts([rng.randint(0, 4) for _ in range(width)])
                checks += 1
                if not has_step_property(net.output_counts):
                    violations += 1
        for _ in range(10):
            net = CutNetwork(Cut(tree, [()]), wiring=wiring)
            for _step in range(8):
                net.feed_counts([rng.randint(0, 3) for _ in range(width)])
                paths = sorted(net.states)
                path = paths[rng.randrange(len(paths))]
                if rng.random() < 0.55 and not net.states[path].spec.is_leaf:
                    net.split_member(path)
                elif path:
                    try:
                        net.merge_member(path[:-1])
                    except Exception:
                        pass
                checks += 1
                if not has_step_property(net.output_counts):
                    violations += 1
        rows.append((width, "random cuts + reconfig", checks, violations))

    report(
        "Extension - adaptive PERIODIC network: does every cut count?",
        ["w", "regime", "checks", "step violations"],
        rows,
        notes="Zero violations everywhere: the Theorem 2.1 analogue holds empirically "
        "for the periodic decomposition, supporting the paper's generalisation claim "
        "(a per-structure proof would still be needed).",
    )
    for _w, _regime, _checks, violation_count in rows:
        assert violation_count == 0

    # Deployment-shape comparison: block-level vs fully split.
    tree = periodic_tree(32)
    wiring = PeriodicWiring(tree)
    from repro.core import metrics

    shape_rows = []
    for name, paths in (
        ("singleton", [()]),
        ("block-level", block_level_cut_paths(tree)),
        ("fully split", sorted(Cut.leaves(tree).paths)),
    ):
        net = CutNetwork(Cut(tree, paths), wiring=wiring)
        measured = metrics.measure(net)
        shape_rows.append(
            (name, measured.num_components, measured.effective_width, measured.effective_depth)
        )
    report(
        "Extension - periodic cut granularities (w = 32)",
        ["cut", "components", "eff width", "eff depth"],
        shape_rows,
        notes="Blocks compose in series, so the periodic tree trades depth rather than "
        "width at coarse granularities - a structural contrast with the bitonic tree.",
    )

    # Full-runtime deployment of the adaptive periodic network: the
    # generalisation claim end to end (rules, protocols, recovery).
    from repro.runtime.system import AdaptiveCountingSystem

    runtime_rows = []
    for n in (1, 10, 30):
        runtime_tree = periodic_tree(32)
        system = AdaptiveCountingSystem(
            width=32,
            seed=600 + n,
            initial_nodes=n,
            tree=runtime_tree,
            wiring=PeriodicWiring(runtime_tree),
        )
        system.converge()
        tokens = [system.inject_token() for _ in range(50)]
        system.run_until_quiescent()
        assert sorted(t.value for t in tokens) == list(range(50))
        system.verify()
        measured = __import__("repro.core.metrics", fromlist=["measure"]).measure(
            system.snapshot_network()
        )
        runtime_rows.append(
            (
                n,
                len(system.directory),
                system.stats.splits,
                measured.effective_width,
                measured.effective_depth,
            )
        )
    report(
        "Extension - adaptive periodic network on the full runtime (50 tokens each)",
        ["N", "components", "splits", "eff width", "eff depth"],
        runtime_rows,
        notes="The unchanged distributed runtime (estimation, rules, protocols, "
        "verification) deploys the periodic structure end to end; all tokens counted "
        "correctly at every size.",
    )

    cut = Cut(tree, block_level_cut_paths(tree))

    def run_block_cut():
        net = CutNetwork(cut, wiring=wiring)
        net.feed_counts([2] * 32)
        return net.output_counts

    benchmark(run_block_cut)
