"""Shared fixtures for the experiment harness.

Every bench regenerates one of the paper's figures/claims (see the
experiment index in DESIGN.md) and both prints its table and appends it
to ``benchmarks/results/<bench>.txt``, so results survive pytest's
output capturing and can be pasted into EXPERIMENTS.md.
"""

import os
import random
import zlib

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture
def rng(request):
    """Per-bench deterministic RNG, seeded from the test's node id.

    Benches that need randomness should take this fixture (or seed
    their own ``random.Random`` explicitly) — the RSC301 lint rule
    rejects module-level ``random.*`` calls repo-wide.
    """
    return random.Random(zlib.crc32(request.node.nodeid.encode("utf-8")))


def format_table(title, headers, rows, notes=""):
    columns = len(headers)
    widths = [len(str(h)) for h in headers]
    text_rows = [[str(cell) for cell in row] for row in rows]
    for row in text_rows:
        for i in range(columns):
            widths[i] = max(widths[i], len(row[i]))
    lines = ["", "=== %s ===" % title]
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(columns)))
    for row in text_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(columns)))
    if notes:
        lines.append(notes)
    return "\n".join(lines) + "\n"


@pytest.fixture
def report(request):
    """Print a result table and persist it under benchmarks/results/."""

    def _report(title, headers, rows, notes=""):
        text = format_table(title, headers, rows, notes)
        print(text)
        os.makedirs(RESULTS_DIR, exist_ok=True)
        filename = os.path.join(
            RESULTS_DIR, request.node.name.replace("/", "_") + ".txt"
        )
        with open(filename, "a") as handle:
            handle.write(text)

    return _report
