"""A4 — Ablation: token combining window.

Sweeps the combining window and reports the message/latency trade-off:
tokens to the same component share a message (the counter is batchable,
so correctness is untouched), cutting the per-token message cost by the
batching factor at the price of up to one window of extra latency per
hop.
"""

from repro.runtime.combining import CombiningConfig
from repro.runtime.system import AdaptiveCountingSystem

TOKENS = 400


def run(window):
    config = CombiningConfig(window=window) if window else None
    system = AdaptiveCountingSystem(
        width=64, seed=44, initial_nodes=30, combining=config, service_time=0.05
    )
    system.converge()
    before = system.bus.messages_sent
    tokens = [system.inject_token() for _ in range(TOKENS)]
    system.run_until_quiescent()
    assert sorted(t.value for t in tokens) == list(range(TOKENS))
    system.verify()
    messages = system.bus.messages_sent - before
    mean_batch = system.combiner.stats.mean_batch if system.combiner else 1.0
    return messages, system.token_stats.mean_latency, mean_batch


def test_ablation_combining_window(report, benchmark):
    rows = []
    baseline_messages = None
    for window in (0.0, 0.5, 2.0, 8.0):
        messages, latency, mean_batch = run(window)
        if baseline_messages is None:
            baseline_messages = messages
        rows.append(
            (
                window,
                messages,
                "%.2f" % (messages / TOKENS),
                "%.2f" % mean_batch,
                "%.1f" % latency,
                "%.2f" % (baseline_messages / messages),
            )
        )
    report(
        "Ablation A4 - combining window (%d tokens, N=30, w=64)" % TOKENS,
        [
            "window",
            "token messages",
            "messages/token",
            "mean batch",
            "mean latency",
            "message reduction x",
        ],
        rows,
        notes="Counters are batchable, so combining preserves correctness exactly; "
        "the window trades per-hop latency for message count.",
    )
    assert int(rows[-1][1]) < int(rows[0][1])
    assert float(rows[-1][4]) > float(rows[0][4])

    benchmark(lambda: run(2.0)[0])
