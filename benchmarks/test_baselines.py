"""B1 — Baseline shoot-out: adaptive network vs every static structure.

Runs the same token workload through (a) the adaptive counting network,
(b) the static balancer-per-object bitonic deployment, (c) the periodic
network (structural comparison), (d) a distributed counting tree, and
(e) the centralised counter, on the same simulated substrate (latency 1,
service time 0.1 per message). Reports objects deployed, per-token hops,
mean latency, and makespan (simulated time to drain the workload) —
the throughput proxy. The paper's qualitative prediction: the central
counter serialises (makespan ~ tokens x service), static networks pay
full depth regardless of N, and the adaptive network interpolates.
"""

from repro.core.bitonic import bitonic_network
from repro.core.periodic import periodic_depth, periodic_network
from repro.runtime.static_deploy import (
    CentralCounterDeployment,
    CountingTreeDeployment,
    StaticBitonicDeployment,
)
from repro.runtime.system import AdaptiveCountingSystem

TOKENS = 1500
NODES = 100
WIDTH = 64
SERVICE = 0.1


def drain(deployment, tokens):
    start = deployment.sim.now
    for i in range(tokens):
        deployment.inject_token(i % WIDTH if hasattr(deployment, "width") else None)
    deployment.run_until_quiescent()
    return deployment.sim.now - start


def test_baseline_shootout(report, benchmark):
    rows = []

    adaptive = AdaptiveCountingSystem(
        width=WIDTH, seed=4001, initial_nodes=NODES, service_time=SERVICE
    )
    adaptive.converge()
    start = adaptive.sim.now
    for _ in range(TOKENS):
        adaptive.inject_token()
    adaptive.run_until_quiescent()
    rows.append(
        (
            "adaptive (this paper)",
            len(adaptive.directory),
            "%.1f" % adaptive.token_stats.mean_hops,
            "%.1f" % adaptive.token_stats.mean_latency,
            "%.0f" % (adaptive.sim.now - start),
        )
    )

    static = StaticBitonicDeployment(
        bitonic_network(WIDTH), NODES, seed=4002, service_time=SERVICE
    )
    makespan = drain(static, TOKENS)
    rows.append(
        (
            "static bitonic (one object/balancer)",
            static.num_objects,
            "%.1f" % static.token_stats.mean_hops,
            "%.1f" % static.token_stats.mean_latency,
            "%.0f" % makespan,
        )
    )

    static_periodic = StaticBitonicDeployment(
        periodic_network(WIDTH), NODES, seed=4003, service_time=SERVICE
    )
    makespan = drain(static_periodic, TOKENS)
    rows.append(
        (
            "static periodic (depth log^2 w = %d)" % periodic_depth(WIDTH),
            static_periodic.num_objects,
            "%.1f" % static_periodic.token_stats.mean_hops,
            "%.1f" % static_periodic.token_stats.mean_latency,
            "%.0f" % makespan,
        )
    )

    tree = CountingTreeDeployment(5, NODES, seed=4004, service_time=SERVICE)
    makespan = drain(tree, TOKENS)
    rows.append(
        (
            "counting tree (depth 5)",
            tree.num_objects,
            "%.1f" % tree.token_stats.mean_hops,
            "%.1f" % tree.token_stats.mean_latency,
            "%.0f" % makespan,
        )
    )

    central = CentralCounterDeployment(NODES, seed=4005, service_time=SERVICE)
    makespan = drain(central, TOKENS)
    rows.append(
        (
            "central counter",
            central.num_objects,
            "%.1f" % central.token_stats.mean_hops,
            "%.1f" % central.token_stats.mean_latency,
            "%.0f" % makespan,
        )
    )

    report(
        "Baselines - %d tokens, N = %d nodes, width %d, service %.1f/msg"
        % (TOKENS, NODES, WIDTH, SERVICE),
        ["structure", "objects", "hops/token", "mean latency", "makespan"],
        rows,
        notes="Central counter serialises at one node (highest makespan per token "
        "throughput); static networks pay full depth in hops; the adaptive network "
        "uses ~N components and intermediate hops.",
    )

    # Qualitative shape assertions.
    by_name = {row[0].split(" (")[0]: row for row in rows}
    adaptive_row = by_name["adaptive"]
    static_row = by_name["static bitonic"]
    central_row = by_name["central counter"]
    assert int(adaptive_row[1]) < int(static_row[1])  # fewer objects
    assert float(adaptive_row[2]) < float(static_row[2])  # fewer hops
    # The root-bottleneck effect: the central counter serialises every
    # token at one node, so at this load its makespan is at least
    # TOKENS * SERVICE and exceeds the parallel structures'.
    assert float(central_row[4]) >= TOKENS * SERVICE
    assert float(central_row[4]) > float(adaptive_row[4])
    # Section 1.3's observation about tree structures: every token
    # crosses the root toggle, so the counting tree serialises there and
    # cannot beat the central counter's makespan at saturating load —
    # while the counting network, which "does not have a single root
    # node", does.
    assert float(by_name["counting tree"][4]) >= TOKENS * SERVICE
    assert float(adaptive_row[4]) < float(by_name["counting tree"][4])

    # The crossover: the central counter's makespan is flat in N while
    # the adaptive network's drops as the system (and hence its width)
    # grows — the thesis of the paper.
    crossover_rows = []
    for n in (10, 40, 100):
        system = AdaptiveCountingSystem(
            width=WIDTH, seed=4010 + n, initial_nodes=n, service_time=SERVICE
        )
        system.converge()
        start = system.sim.now
        for _ in range(TOKENS):
            system.inject_token()
        system.run_until_quiescent()
        central_n = CentralCounterDeployment(n, seed=4020 + n, service_time=SERVICE)
        central_makespan = drain(central_n, TOKENS)
        crossover_rows.append(
            (
                n,
                len(system.directory),
                "%.0f" % (system.sim.now - start),
                "%.0f" % central_makespan,
            )
        )
    report(
        "Baselines - adaptive vs central counter across system sizes (%d tokens)"
        % TOKENS,
        ["N", "adaptive components", "adaptive makespan", "central makespan"],
        crossover_rows,
        notes="Central is flat in N (one node serialises everything); the adaptive "
        "makespan falls as the network widens with N — crossover as N grows.",
    )
    assert float(crossover_rows[-1][2]) < float(crossover_rows[-1][3])
    assert float(crossover_rows[-1][2]) < float(crossover_rows[0][2])

    def run_central():
        deployment = CentralCounterDeployment(10, seed=4006, service_time=SERVICE)
        return drain(deployment, 50)

    benchmark(run_central)
