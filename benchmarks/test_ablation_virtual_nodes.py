"""A5 — Ablation: virtual identifiers per physical node.

Lemma 3.5's max load, O(log N / log log N) components on the hottest
node, is a consistent-hashing artefact, and the classic remedy is
virtual nodes: each physical node holds ``v`` random identifiers.
Because the paper's size estimator measures *identifier* density, a
system with v virtual ids per node estimates ``v*N`` and deploys a
correspondingly deeper (finer) network — so virtual nodes buy load
smoothness at the price of more, smaller components. This ablation
quantifies both sides at N = 4096 physical nodes.
"""

import random
from collections import defaultdict

from repro.analysis.largescale import converge_cut, sample_system
from repro.analysis.stats import summarize
from repro.core.decomposition import DecompositionTree


def measure(v, n_physical, tree, seed):
    """Converged-cut load statistics with ``v`` virtual ids per node."""
    system = sample_system(n_physical * v, tree, seed=seed)
    # iid uniform ids: a random partition into groups of v is
    # distributionally identical to each physical node drawing v ids.
    rng = random.Random(seed + 1)
    assignment = list(range(n_physical)) * v
    rng.shuffle(assignment)
    cut = converge_cut(system, tree)
    physical_loads = defaultdict(int)
    for virtual_index, load in cut.loads.items():
        physical_loads[assignment[virtual_index]] += load
    loads = [physical_loads.get(p, 0) for p in range(n_physical)]
    return cut, summarize([float(x) for x in loads]), max(loads)


def test_ablation_virtual_nodes(report, benchmark):
    n_physical = 4096
    tree = DecompositionTree(1 << 22)
    rows = []
    max_loads = {}
    for v in (1, 2, 4, 8):
        cut, load_summary, max_load = measure(v, n_physical, tree, seed=50 + v)
        max_loads[v] = max_load
        rows.append(
            (
                v,
                cut.num_components,
                "%.2f" % (cut.num_components / n_physical),
                "%.2f" % load_summary.mean,
                max_load,
                "%.2f" % (max_load / max(load_summary.mean, 1e-9)),
            )
        )
    report(
        "Ablation A5 - virtual ids per physical node (N = %d physical)" % n_physical,
        [
            "virtual ids v",
            "components",
            "components/N",
            "mean load",
            "max load",
            "max/mean",
        ],
        rows,
        notes="More virtual ids smooth the per-node maximum (max/mean falls toward 1) "
        "but inflate the estimated system size v*N, deepening the network and "
        "multiplying the component count - the trade-off a deployer would tune.",
    )
    # Smoothing must actually happen: relative imbalance falls with v.
    first = rows[0]
    last = rows[-1]
    assert float(last[5]) < float(first[5])
    # And the network gets finer, roughly proportionally to v.
    assert int(last[1]) > int(first[1])

    benchmark(lambda: measure(2, 512, tree, seed=99)[2])
