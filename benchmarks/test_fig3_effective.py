"""F3 — Figure 3: the network formed by cut1, and its effective metrics.

The paper's caption states: "effective width = number of vertex disjoint
paths from input to output = 2; effective depth = longest path from
input to output = 5". This bench regenerates the network's wiring table
and checks both numbers exactly.
"""

from repro.core import metrics
from repro.core.cut import Cut, CutNetwork
from repro.core.decomposition import DecompositionTree


def test_fig3_cut1_network(report, benchmark):
    tree = DecompositionTree(8)
    cut1 = Cut.singleton(tree).split(()).split((0,))
    net = CutNetwork(cut1)

    edges = []
    for path in sorted(net.states):
        spec = net.states[path].spec
        for port in range(spec.width):
            dest = net._edge(path, port)
            if dest[0] == "member":
                edges.append((spec.label(), port, tree.node(dest[1]).label(), dest[2]))
            else:
                edges.append((spec.label(), port, "OUTPUT", dest[1]))
    report(
        "Figure 3 - wiring of the cut1 network (component out-port -> destination)",
        ["from", "out port", "to", "in port/wire"],
        edges,
    )

    measured = metrics.measure(net)
    report(
        "Figure 3 - effective metrics of cut1",
        ["metric", "paper", "measured"],
        [
            ("effective width", 2, measured.effective_width),
            ("effective depth", 5, measured.effective_depth),
            ("components", "-", measured.num_components),
        ],
    )
    assert measured.effective_width == 2
    assert measured.effective_depth == 5

    benchmark(lambda: metrics.measure(CutNetwork(cut1)))
