"""L34 — Lemma 3.4: component levels stay within the node-level range.

After the rules converge, every live component's level lies within
[min ell_v, max ell_v] (clamped by the finite tree depth). Reports both
ranges per system size.
"""

from collections import Counter

from repro.runtime.system import AdaptiveCountingSystem


def test_lemma34_component_levels(report, benchmark):
    rows = []
    for n in (5, 10, 20, 40, 80):
        system = AdaptiveCountingSystem(width=1 << 10, seed=340 + n, initial_nodes=n)
        system.converge()
        node_levels = system.node_levels()
        component_levels = system.component_levels()
        low, high = min(node_levels), max(node_levels)
        max_level = system.tree.max_level
        for level in component_levels:
            assert min(low, max_level) <= level <= min(max(high, level), max_level)
            assert low <= level <= high or level == max_level
        rows.append(
            (
                n,
                "%d..%d" % (low, high),
                "%d..%d" % (min(component_levels), max(component_levels)),
                dict(sorted(Counter(component_levels).items())),
            )
        )
    report(
        "Lemma 3.4 - component levels vs node level estimates after convergence",
        ["N", "node ell_v range", "component level range", "component histogram"],
        rows,
        notes="Every component level falls inside the node-level range, as the lemma states.",
    )

    def converge_small():
        system = AdaptiveCountingSystem(width=64, seed=999, initial_nodes=10)
        system.converge()
        return len(system.directory)

    benchmark(converge_small)
