"""M1 — Section 2's motivating example: static deployment vs adaptive.

The paper: "Suppose we had set the width w = 100, expecting the system
to grow to up to 500 nodes. There would be about 1000 balancer objects
implementing this network. If the actual number of nodes currently in
the system is 50, then a centralized low parallelism implementation
might be the best choice."

We use w = 128 (the nearest power of two). The bench deploys (a) the
static balancer-per-object network and (b) the adaptive network on the
same system sizes, and compares object counts, per-token message costs
and end-to-end latency. The adaptive network should use dramatically
fewer objects and messages at small N and converge toward the static
shape as N approaches the width.
"""

from repro.core.bitonic import bitonic_network
from repro.runtime.static_deploy import StaticBitonicDeployment
from repro.runtime.system import AdaptiveCountingSystem

WIDTH = 128
TOKENS = 200


def run_static(n):
    deployment = StaticBitonicDeployment(
        bitonic_network(WIDTH), n, seed=1000 + n, service_time=0.1
    )
    for i in range(TOKENS):
        deployment.inject_token(i % WIDTH)
    deployment.run_until_quiescent()
    return deployment


def run_adaptive(n):
    system = AdaptiveCountingSystem(
        width=WIDTH, seed=2000 + n, initial_nodes=n, service_time=0.1
    )
    system.converge()
    for _ in range(TOKENS):
        system.inject_token()
    system.run_until_quiescent()
    return system


def test_motivation_static_vs_adaptive(report, benchmark):
    rows = []
    for n in (5, 20, 50, 100):
        static = run_static(n)
        adaptive = run_adaptive(n)
        rows.append(
            (
                n,
                static.num_objects,
                len(adaptive.directory),
                "%.1f" % static.token_stats.mean_hops,
                "%.1f" % adaptive.token_stats.mean_hops,
                "%.1f" % static.token_stats.mean_latency,
                "%.1f" % adaptive.token_stats.mean_latency,
            )
        )
    report(
        "Section 2 motivation - static BITONIC[%d] vs adaptive, %d tokens"
        % (WIDTH, TOKENS),
        [
            "N",
            "static objects",
            "adaptive components",
            "static hops/token",
            "adaptive hops/token",
            "static latency",
            "adaptive latency",
        ],
        rows,
        notes="The static network always uses %d objects and %d hops/token; the adaptive "
        "network matches the system size, with fewer objects and hops at small N."
        % (bitonic_network(WIDTH).num_balancers, bitonic_network(WIDTH).depth),
    )
    # The paper's qualitative claims:
    static_objects = bitonic_network(WIDTH).num_balancers
    for n, s_obj, a_comp, s_hops, a_hops, _sl, _al in rows:
        assert s_obj == static_objects  # size-independent overhead
        assert a_comp <= s_obj  # adaptive never uses more objects
    small_n_row = rows[0]
    assert small_n_row[2] <= 6  # near-centralised at N=5
    assert float(small_n_row[4]) < float(small_n_row[3])  # fewer hops too

    benchmark(lambda: run_adaptive(20).token_stats.retired)
