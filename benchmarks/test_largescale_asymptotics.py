"""T36+ — the asymptotic claims at N up to ~10^5.

The message-level runtime validates the system at N ~ 10^2; the paper's
claims are "with high probability" statements whose constants only show
at scale. This bench evaluates the converged state analytically (the
sampler is asserted equal to the real runtime's convergence in the test
suite) and sweeps N over three decades:

* Lemma 3.2 — fraction of size estimates inside [N/10, 10N];
* Lemma 3.3 — node level spread around ell*;
* Lemma 3.5 — components/N and normalised max load;
* Theorem 3.6 — width/depth bounds against N/log^2 N and log^2 N.
"""

import math

from repro.analysis.largescale import measure_scale
from repro.analysis.stats import linear_fit
from repro.core.decomposition import DecompositionTree

SIZES = (256, 1024, 4096, 16384, 65536, 131072)


def test_largescale_asymptotics(report, benchmark):
    tree = DecompositionTree(1 << 22)  # wide enough that levels never clamp
    rows = []
    width_bounds = []
    for n in SIZES:
        scale = measure_scale(n, tree, seed=n)
        low, high = scale.level_spread
        rows.append(
            (
                n,
                "%.4f" % scale.estimate_window_fraction,
                scale.ell_star,
                "%d..%d" % (low, high),
                "%.2f" % scale.components_per_node,
                scale.max_load,
                "%.2f" % scale.max_load_normalised,
                scale.width_bound,
                "%.2f" % scale.width_scale_ratio,
                "%.2f" % scale.depth_scale_ratio,
            )
        )
        width_bounds.append(scale.width_bound)
        assert scale.estimate_window_fraction == 1.0  # Lemma 3.2
        assert scale.ell_star - 4 <= low <= high <= scale.ell_star + 4  # Lemma 3.3
        assert 1 / 6 ** 5 <= scale.components_per_node <= 6 ** 4  # Lemma 3.5
        assert scale.depth_scale_ratio < 3.0  # Theorem 3.6 (O)
        assert scale.width_scale_ratio > 0.05  # Theorem 3.6 (Omega)
    report(
        "Large-scale asymptotics (analytic converged state, N to 1.3e5)",
        [
            "N",
            "est. in window",
            "ell*",
            "ell_v spread",
            "comp/N",
            "max load",
            "max/(lnN/lnlnN)",
            "eff width (>=)",
            "width/(N/log^2 N)",
            "depth/log^2 N",
        ],
        rows,
        notes="All four w.h.p. claims hold across three decades with stable constants: "
        "estimates always inside the 10x window, levels within +/-1 of ell*, "
        "components/N bounded, max load tracking log N/log log N, and the width/depth "
        "ratios pinned — the Theorem 3.6 shapes at scale.",
    )

    # Width grows with slope -> 1 on log-log at these sizes.
    log_n = [math.log2(n) for n in SIZES]
    log_w = [math.log2(w) for w in width_bounds]
    slope, _ = linear_fit(log_n, log_w)
    report(
        "Large-scale width growth",
        ["fit", "value"],
        [("slope of log2(width bound) vs log2(N)", "%.2f" % slope)],
        notes="Theorem 3.6 predicts slope 1 up to polylog; at N ~ 10^5 the polylog "
        "correction is already small.",
    )
    assert 0.7 <= slope <= 1.3

    benchmark(lambda: measure_scale(4096, tree, seed=1).components)
