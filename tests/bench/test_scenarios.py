"""Scenario-level bench tests: the large_churn workload.

The heavier scenarios are exercised through the harness elsewhere;
``large_churn`` gets its own file because its contract is stronger —
everything it reports except the wall-clock rate must be a pure
function of the seed, and the run must end verify-green.
"""

import json
import os

from repro.bench import run_bench
from repro.bench.result import WALL_CLOCK_METRIC_KEYS
from repro.bench.scenarios import bench_huge_churn, bench_large_churn

TINY = {
    "width": 8,
    "nodes": 12,
    "tokens": 120,
    "duration": 60.0,
    "join_rate": 0.1,
    "crash_rate": 0.1,
    "min_nodes": 4,
}


def strip_wall_clock(result):
    """Everything in a ScenarioResult except the timing-derived rate
    and the wall-clock metrics (schema 3 adds events_per_sec and
    peak_rss_kb to the end-to-end scenarios)."""
    metrics = {
        key: value
        for key, value in result.metrics.items()
        if key not in WALL_CLOCK_METRIC_KEYS
    }
    return (result.name, result.events, metrics)


class TestLargeChurn:
    def test_reports_churn_and_full_token_accounting(self):
        result = bench_large_churn(dict(TINY), seed=7)
        assert result.name == "large_churn"
        assert result.ops_per_sec > 0
        metrics = result.metrics
        assert metrics["joins"] + metrics["crashes"] > 0  # trace applied
        assert metrics["retired"] + metrics["dropped"] == TINY["tokens"]
        assert metrics["sim_time"] >= TINY["duration"]

    def test_same_seed_runs_are_identical(self):
        """Two same-seed runs must emit identical ``events`` and
        ``metrics`` — only ``ops_per_sec`` is wall-clock."""
        first = bench_large_churn(dict(TINY), seed=0)
        second = bench_large_churn(dict(TINY), seed=0)
        assert strip_wall_clock(first) == strip_wall_clock(second)

    def test_smoke_profile_deterministic_through_harness(self):
        """The determinism contract holds for the committed profile
        parameters, end to end through ``run_bench``."""
        first, = run_bench("smoke", seed=0, only=["large_churn"])
        second, = run_bench("smoke", seed=0, only=["large_churn"])
        assert strip_wall_clock(first) == strip_wall_clock(second)

    def test_different_seeds_diverge(self):
        # Guards against the scenario quietly ignoring its seed, which
        # would make the determinism test vacuous.
        a = bench_large_churn(dict(TINY), seed=1)
        b = bench_large_churn(dict(TINY), seed=2)
        assert strip_wall_clock(a) != strip_wall_clock(b)


TINY_HUGE = {
    "width": 8,
    "nodes": 12,
    "tokens": 120,
    "burst": 4,
    "duration": 60.0,
    "join_rate": 0.05,
    "crash_rate": 0.05,
    "min_nodes": 6,
}


class TestHugeChurnLatencyPercentiles:
    """``huge_churn`` must report simulated-latency percentiles as
    seed-pure metrics (the schema-3 contract this suite pins)."""

    def test_percentiles_reported_and_ordered(self):
        result = bench_huge_churn(dict(TINY_HUGE), seed=5)
        metrics = result.metrics
        assert metrics["latency_p50"] > 0
        assert metrics["latency_p99"] >= metrics["latency_p50"]

    def test_percentiles_are_pure_functions_of_the_seed(self):
        first = bench_huge_churn(dict(TINY_HUGE), seed=3)
        second = bench_huge_churn(dict(TINY_HUGE), seed=3)
        assert strip_wall_clock(first) == strip_wall_clock(second)
        assert (
            first.metrics["latency_p50"] == second.metrics["latency_p50"]
        )
        assert (
            first.metrics["latency_p99"] == second.metrics["latency_p99"]
        )

    def test_percentiles_are_not_wall_clock_metrics(self):
        # Fingerprint safety: the percentiles are sim-time values, so
        # they must NOT be excluded from determinism comparisons.
        assert "latency_p50" not in WALL_CLOCK_METRIC_KEYS
        assert "latency_p99" not in WALL_CLOCK_METRIC_KEYS

    def test_committed_baseline_carries_the_percentiles(self):
        repo_root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        with open(os.path.join(repo_root, "BENCH_6.json")) as handle:
            committed = json.load(handle)
        metrics = committed["scenarios"]["huge_churn"]["metrics"]
        assert metrics["latency_p50"] > 0
        assert metrics["latency_p99"] >= metrics["latency_p50"]
