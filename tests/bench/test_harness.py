"""Tests for the ``repro.bench`` harness: scenario selection, the JSON
schema, and the baseline regression gate."""

import pytest

from repro.bench import (
    BENCH_ID,
    PROFILES,
    SCHEMA_VERSION,
    ScenarioResult,
    compare_to_baseline,
    run_bench,
    to_json_payload,
)
from repro.bench.scenarios import SCENARIOS, bench_token_routing
from repro.errors import BenchmarkError


def tiny_routing_result(seed=0):
    return bench_token_routing({"width": 64, "tokens": 200, "repeats": 1}, seed)


class TestRunner:
    def test_unknown_profile_rejected(self):
        with pytest.raises(BenchmarkError, match="unknown profile"):
            run_bench(profile="gigantic")

    def test_unknown_scenario_rejected(self):
        with pytest.raises(BenchmarkError, match="unknown scenario"):
            run_bench(profile="smoke", only=["warp_drive"])

    def test_every_profile_parameterises_every_scenario(self):
        # The standard tiers run the full sweep; the scale profiles
        # (``huge``/``huge_smoke``) are deliberately single-scenario.
        for profile in ("smoke", "small", "large"):
            assert set(PROFILES[profile]) == set(SCENARIOS), profile
        for profile, params in PROFILES.items():
            assert set(params) <= set(SCENARIOS), profile

    def test_scale_profiles_run_the_wheel_heavy_scenario(self):
        for profile in ("huge", "huge_smoke"):
            assert set(PROFILES[profile]) == {"huge_churn"}
        # The ISSUE 9 scale floor: >= 2k nodes, >= 1M tokens.
        params = PROFILES["huge"]["huge_churn"]
        assert params["nodes"] >= 2000
        assert params["tokens"] >= 1_000_000

    def test_token_routing_scenario(self):
        result = tiny_routing_result()
        assert result.name == "token_routing"
        assert result.ops_per_sec > 0
        assert result.events == 200
        assert result.metrics["speedup_vs_scan"] > 0
        assert result.metrics["width"] == 64

    def test_token_routing_fast_path_beats_scan_at_width_64(self):
        """The acceptance bar for the routing tables: >= 5x over the
        linear scan at width 64 (measured, not assumed)."""
        result = bench_token_routing(
            {"width": 64, "tokens": 5000, "repeats": 3}, seed=0
        )
        assert result.metrics["speedup_vs_scan"] >= 5.0


class TestJsonPayload:
    def test_schema_shape(self):
        result = tiny_routing_result()
        payload = to_json_payload([result], profile="smoke", seed=0)
        assert payload["schema"] == SCHEMA_VERSION
        assert payload["bench_id"] == BENCH_ID
        assert payload["profile"] == "smoke"
        assert payload["seed"] == 0
        entry = payload["scenarios"]["token_routing"]
        assert set(entry) == {"ops_per_sec", "events", "metrics"}


class TestBaselineGate:
    def make_baseline(self, name, rate, schema=SCHEMA_VERSION):
        return {
            "schema": schema,
            "bench_id": BENCH_ID,
            "profile": "smoke",
            "seed": 0,
            "scenarios": {name: {"ops_per_sec": rate, "events": 1, "metrics": {}}},
        }

    def result(self, name, rate):
        return ScenarioResult(name=name, ops_per_sec=rate, events=1)

    def test_within_threshold_passes(self):
        ok, lines, missing = compare_to_baseline(
            [self.result("a", 80.0)], self.make_baseline("a", 100.0), 0.30
        )
        assert ok
        assert "ok" in lines[0]
        assert missing == []

    def test_regression_beyond_threshold_fails(self):
        ok, lines, _missing = compare_to_baseline(
            [self.result("a", 60.0)], self.make_baseline("a", 100.0), 0.30
        )
        assert not ok
        assert "FAIL" in lines[0]

    def test_improvement_passes(self):
        ok, _, _ = compare_to_baseline(
            [self.result("a", 500.0)], self.make_baseline("a", 100.0), 0.30
        )
        assert ok

    def test_new_scenario_never_fails(self):
        ok, lines, missing = compare_to_baseline(
            [self.result("b", 1.0)], self.make_baseline("a", 100.0), 0.30
        )
        assert ok
        assert any("NEW" in line for line in lines)
        assert any("MISSING" in line for line in lines)
        assert missing == ["a"]

    def test_missing_scenarios_listed_sorted(self):
        baseline = self.make_baseline("zeta", 100.0)
        baseline["scenarios"]["alpha"] = {
            "ops_per_sec": 50.0,
            "events": 1,
            "metrics": {},
        }
        ok, _, missing = compare_to_baseline(
            [self.result("other", 1.0)], baseline, 0.30
        )
        assert ok  # missing is the caller's decision, not a gate failure
        assert missing == ["alpha", "zeta"]

    def test_schema_1_baseline_still_comparable(self):
        """BENCH_4 (schema 1) stays usable as the CI overhead-gate
        baseline across the schema 2 bump."""
        ok, lines, missing = compare_to_baseline(
            [self.result("a", 100.0)], self.make_baseline("a", 100.0, schema=1), 0.30
        )
        assert ok
        assert missing == []
        assert "ok" in lines[0]

    def test_schema_mismatch_rejected(self):
        baseline = self.make_baseline("a", 100.0)
        baseline["schema"] = 999
        with pytest.raises(BenchmarkError, match="schema"):
            compare_to_baseline([self.result("a", 100.0)], baseline)

    def test_malformed_baseline_rejected(self):
        with pytest.raises(BenchmarkError, match="scenarios"):
            compare_to_baseline([self.result("a", 100.0)], {"oops": 1})
