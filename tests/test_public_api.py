"""Sanity tests of the package's public surface."""

import importlib

import pytest

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.core.decomposition",
            "repro.core.wiring",
            "repro.core.components",
            "repro.core.cut",
            "repro.core.splitmerge",
            "repro.core.metrics",
            "repro.core.verification",
            "repro.core.network",
            "repro.core.bitonic",
            "repro.core.periodic",
            "repro.core.diffracting",
            "repro.chord",
            "repro.chord.protocol",
            "repro.sim",
            "repro.runtime",
            "repro.runtime.combining",
            "repro.runtime.audit",
            "repro.runtime.static_deploy",
            "repro.apps",
            "repro.analysis",
            "repro.analysis.largescale",
            "repro.analysis.render",
            "repro.ext",
            "repro.scenarios",
            "repro.scenarios.spec",
            "repro.scenarios.compile",
            "repro.scenarios.registry",
            "repro.scenarios.smoke",
            "repro.cli",
            "repro.errors",
        ],
    )
    def test_module_imports_and_documents(self, module):
        imported = importlib.import_module(module)
        assert imported.__doc__, "%s lacks a module docstring" % module

    def test_subpackage_all_exports_resolve(self):
        for name in ("repro.core", "repro.chord", "repro.sim", "repro.runtime",
                     "repro.apps", "repro.analysis", "repro.ext",
                     "repro.scenarios"):
            module = importlib.import_module(name)
            for export in getattr(module, "__all__", []):
                assert hasattr(module, export), (name, export)

    def test_error_hierarchy(self):
        from repro import errors

        for name in (
            "StructureError",
            "InvalidCutError",
            "StepPropertyViolation",
            "RingError",
            "MembershipError",
            "ProtocolError",
            "ComponentNotFound",
            "SimulationError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_quickstart_docstring_example(self):
        """The example in the package docstring actually works."""
        from repro import AdaptiveCountingSystem

        system = AdaptiveCountingSystem(width=16, seed=7)
        for _ in range(10):
            system.add_node()
        system.converge()
        values = [system.next_value() for _ in range(20)]
        assert sorted(values) == list(range(20))
