"""Tests for the counting-tree baseline (paper Section 1.3)."""

import pytest

from repro.core.diffracting import CentralCounter, CountingTree
from repro.core.verification import counting_values_ok, has_step_property
from repro.errors import StructureError


class TestCountingTree:
    def test_depth_zero_is_a_counter(self):
        tree = CountingTree(0)
        assert tree.width == 1
        assert [tree.next_value() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_values_gap_free(self):
        tree = CountingTree(3)
        values = [tree.next_value() for _ in range(100)]
        assert counting_values_ok(values)

    def test_leaf_counts_step_property(self):
        tree = CountingTree(4)
        for _ in range(77):
            tree.next_value()
        assert has_step_property(tree.leaf_counts)
        assert sum(tree.leaf_counts) == 77

    def test_tokens_balanced_across_leaves(self):
        tree = CountingTree(2)
        for _ in range(8):
            tree.next_value()
        assert tree.leaf_counts == [2, 2, 2, 2]

    def test_negative_depth_rejected(self):
        with pytest.raises(StructureError):
            CountingTree(-1)


class TestCentralCounter:
    def test_sequential_values(self):
        counter = CentralCounter()
        assert [counter.next_value() for _ in range(4)] == [0, 1, 2, 3]
        assert counter.width == 1
